//! Property-based tests for the reliability math and analytic models.

use proptest::prelude::*;
use sudoku_reliability::analytic::{
    ecc_fit, line_pmf, line_sf, p_multibit, x_cache_fail, x_fit, y_cache_fail, y_group_breakdown,
    z_fit, z_fit_paper_style, Params,
};
use sudoku_reliability::math::{binom_pmf, binom_sf, ln_choose, p_any, wilson_ci};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pascal's rule, checked in log space (the raw coefficients overflow
    /// f64 long before n = 2000): ln C(n,k) = logsumexp(ln C(n-1,k-1),
    /// ln C(n-1,k)).
    #[test]
    fn pascal_rule(n in 2u64..2000, frac in 0.0f64..1.0) {
        let k = 1 + ((n - 2) as f64 * frac) as u64;
        let lhs = ln_choose(n, k);
        let a = ln_choose(n - 1, k - 1);
        let b = ln_choose(n - 1, k);
        let m = a.max(b);
        let rhs = m + ((a - m).exp() + (b - m).exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8, "n={n} k={k}: {lhs} vs {rhs}");
    }

    /// Survival function is monotone decreasing in k and bounded by pmf sums.
    #[test]
    fn sf_monotone(n in 10u64..5000, p in 1e-9f64..0.01, k in 1u64..8) {
        let a = binom_sf(n, k, p);
        let b = binom_sf(n, k + 1, p);
        prop_assert!(b <= a);
        prop_assert!(a <= 1.0 && b >= 0.0);
        // sf(k) - sf(k+1) == pmf(k)
        let pmf = binom_pmf(n, k, p);
        prop_assert!(((a - b) - pmf).abs() <= 1e-12 + 1e-9 * pmf);
    }

    /// p_any bounds: max single ≤ p_any ≤ n·p (union bound).
    #[test]
    fn p_any_bounds(n in 1u64..10_000_000, p in 1e-15f64..1e-3) {
        let v = p_any(n, p);
        prop_assert!(v >= p * 0.999_999);
        prop_assert!(v <= (n as f64 * p).min(1.0) * 1.000_001);
    }

    /// Wilson interval always contains the point estimate.
    #[test]
    fn wilson_contains_estimate(s in 0u64..1000, extra in 1u64..1000) {
        let t = s + extra;
        let (lo, hi) = wilson_ci(s, t, 1.96);
        let phat = s as f64 / t as f64;
        prop_assert!(lo <= phat + 1e-12 && phat <= hi + 1e-12);
    }

    /// Scheme ladder X ≥ Y ≥ Z(paper-style) ≥ Z(ours) across the whole
    /// relevant BER range.
    #[test]
    fn scheme_ladder_all_bers(log_ber in -8.0f64..-4.5) {
        let params = Params::paper_default().with_ber(10f64.powf(log_ber));
        let x = x_fit(&params);
        let ypp = y_cache_fail(&params);
        let xpp = x_cache_fail(&params);
        prop_assert!(xpp >= ypp, "x {xpp} vs y {ypp}");
        prop_assert!(z_fit_paper_style(&params) >= z_fit(&params) * 0.99);
        prop_assert!(x >= z_fit_paper_style(&params));
    }

    /// All FIT models are monotone in BER.
    #[test]
    fn fits_monotone_in_ber(log_ber in -8.0f64..-5.0, bump in 1.05f64..3.0) {
        let lo = Params::paper_default().with_ber(10f64.powf(log_ber));
        let hi = lo.with_ber(lo.ber * bump);
        prop_assert!(ecc_fit(&hi, 6) >= ecc_fit(&lo, 6));
        prop_assert!(x_fit(&hi) >= x_fit(&lo));
        prop_assert!(z_fit_paper_style(&hi) >= z_fit_paper_style(&lo));
    }

    /// Stronger per-line ECC under SuDoku only helps.
    #[test]
    fn line_ecc2_never_hurts(log_ber in -7.0f64..-3.0) {
        let p1 = Params::paper_default().with_ber(10f64.powf(log_ber));
        let p2 = p1.with_line_ecc(2);
        prop_assert!(p_multibit(&p2) <= p_multibit(&p1));
        prop_assert!(z_fit_paper_style(&p2) <= z_fit_paper_style(&p1) * 1.000_001);
    }

    /// The Y breakdown terms are all non-negative and the pmf identities
    /// they build on hold: Σ_k pmf(k) over a generous range ≈ 1.
    #[test]
    fn breakdown_sane(log_ber in -8.0f64..-4.0) {
        let params = Params::paper_default().with_ber(10f64.powf(log_ber));
        let b = y_group_breakdown(&params);
        for term in [b.overlap22, b.contained2k, b.pair33, b.abort223, b.abort4] {
            prop_assert!(term >= 0.0 && term.is_finite());
        }
        let total: f64 = (0..=20).map(|k| line_pmf(&params, k)).sum::<f64>()
            + line_sf(&params, 21);
        prop_assert!((total - 1.0).abs() < 1e-9, "{total}");
    }
}
