//! Cross-checks between the recovery event log and the cache's counters,
//! and the zero-perturbation guarantee of campaign telemetry.

use proptest::prelude::*;
use sudoku_core::{Dim, Mechanism, Outcome, Scheme};
use sudoku_fault::ScrubSchedule;
use sudoku_obs::forensics;
use sudoku_reliability::montecarlo::{
    run_group_campaign_observed, run_interval_campaign_observed, GroupScenario, McConfig, Observe,
};

fn small_cfg(scheme: Scheme, trials: u64) -> McConfig {
    McConfig {
        scheme,
        lines: 1 << 12,
        group: 64,
        ber: 2e-4, // elevated so every mechanism fires
        trials,
        seed: 7,
        threads: 2,
        scrub: ScrubSchedule::paper_default(),
    }
}

/// Summing recovery events by mechanism must exactly reproduce the engine's
/// own `CacheStats`-derived campaign counters: the event log is a faithful
/// decomposition, not a parallel estimate.
#[test]
fn event_counts_reproduce_campaign_counters() {
    for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
        let cfg = small_cfg(scheme, 40);
        let (summary, _, telemetry) = run_interval_campaign_observed(&cfg, Observe::Unbounded);
        let events = &telemetry.events;

        let count = |m: Mechanism, o: Outcome| -> u64 {
            events
                .iter()
                .filter(|e| e.mechanism == m && e.outcome == o)
                .count() as u64
        };

        // Per-interval DUE lines: every unresolved line emits one Due event.
        let due_events = count(Mechanism::Due, Outcome::Failed);
        let due_intervals_from_events = {
            let mut intervals: Vec<u64> = events
                .iter()
                .filter(|e| e.mechanism == Mechanism::Due)
                .map(|e| e.interval)
                .collect();
            intervals.sort_unstable();
            intervals.dedup();
            intervals.len() as u64
        };
        assert_eq!(
            due_intervals_from_events, summary.due_intervals,
            "{scheme:?}"
        );
        assert!(due_events >= summary.due_intervals, "{scheme:?}");

        // Repair mechanisms, line for line.
        assert_eq!(
            count(Mechanism::Raid4, Outcome::Repaired),
            summary.raid4_repairs,
            "{scheme:?}"
        );
        assert_eq!(
            count(Mechanism::Sdr, Outcome::Repaired),
            summary.sdr_repairs,
            "{scheme:?}"
        );
        let hash2_repaired = events
            .iter()
            .filter(|e| e.outcome == Outcome::Repaired && e.hash_dim == Some(Dim::H2))
            .count() as u64;
        assert_eq!(hash2_repaired, summary.hash2_repairs, "{scheme:?}");

        // Injection records decompose the faulty-bit total.
        let injected_bits: u64 = events
            .iter()
            .filter(|e| e.mechanism == Mechanism::Inject)
            .map(|e| e.trials as u64)
            .sum();
        assert_eq!(injected_bits, summary.faulty_bits, "{scheme:?}");

        // Histograms agree with the event stream.
        assert_eq!(
            telemetry.hists.faults_per_line.count(),
            count(Mechanism::Inject, Outcome::Injected),
            "{scheme:?}"
        );
        assert_eq!(
            telemetry.hists.sdr_trials_per_resurrection.count(),
            summary.sdr_repairs,
            "{scheme:?}"
        );
    }
}

/// The multibit-detection counter equals the CrcDetect event count, and
/// ECC-1/ECC-field repairs match their events — checked against the raw
/// `CacheStats` of a single-arena observed campaign.
#[test]
fn event_counts_reproduce_cache_stats_single_arena() {
    use sudoku_core::{Recorder, SudokuCache};
    use sudoku_fault::FaultInjector;
    use sudoku_reliability::montecarlo::run_interval_in;

    let cfg = McConfig {
        threads: 1,
        ..small_cfg(Scheme::Z, 30)
    };
    let mut cache = SudokuCache::new_sparse(SudokuConfigFor::config(&cfg)).unwrap();
    let _ = cache.set_recorder(Recorder::unbounded());
    let mut injector = FaultInjector::new(cfg.ber, cfg.seed);
    let mut events = Vec::new();
    for i in 0..cfg.trials {
        cache.recorder_mut().set_interval(i);
        let _ = run_interval_in(&mut cache, &mut injector, &cfg, cfg.seed.wrapping_add(i));
        events.extend(cache.drain_events());
        cache.reset_to_golden_zero();
    }
    let stats = *cache.stats();

    let count = |m: Mechanism, o: Outcome| -> u64 {
        events
            .iter()
            .filter(|e| e.mechanism == m && e.outcome == o)
            .count() as u64
    };
    assert_eq!(
        count(Mechanism::Ecc1, Outcome::Repaired),
        stats.ecc1_repairs
    );
    assert_eq!(
        count(Mechanism::EccField, Outcome::Repaired),
        stats.meta_repairs
    );
    assert_eq!(
        count(Mechanism::CrcDetect, Outcome::Detected),
        stats.multibit_detections
    );
    assert_eq!(
        count(Mechanism::Raid4, Outcome::Repaired),
        stats.raid4_repairs
    );
    assert_eq!(count(Mechanism::Sdr, Outcome::Repaired), stats.sdr_repairs);
    assert_eq!(count(Mechanism::Due, Outcome::Failed), stats.due_lines);
    let hash2: u64 = events
        .iter()
        .filter(|e| e.outcome == Outcome::Repaired && e.hash_dim == Some(Dim::H2))
        .count() as u64;
    assert_eq!(hash2, stats.hash2_repairs);
    // SDR trial accounting decomposes exactly across Repaired/Failed events.
    let sdr_trials: u64 = events
        .iter()
        .filter(|e| e.mechanism == Mechanism::Sdr)
        .map(|e| e.trials as u64)
        .sum();
    assert_eq!(sdr_trials, stats.sdr_trials);
}

/// `McConfig::sudoku_config` is private; rebuild the equivalent here.
struct SudokuConfigFor;
impl SudokuConfigFor {
    fn config(cfg: &McConfig) -> sudoku_core::SudokuConfig {
        sudoku_core::SudokuConfig {
            geometry: sudoku_core::CacheGeometry::with_lines(cfg.lines),
            scheme: cfg.scheme,
            group_lines: cfg.group,
            max_sdr_mismatches: 6,
            sdr_pair_trials: false,
            defer_hash2: false,
            scrub: cfg.scrub,
        }
    }
}

/// A forensic reconstruction of an observed campaign's event log contains
/// complete escalation chains for SDR resurrections and (under Z) repairs
/// that crossed into the Hash-2 dimension.
#[test]
fn campaign_event_log_reconstructs_chains() {
    let cfg = small_cfg(Scheme::Z, 60);
    let (summary, _, telemetry) = run_interval_campaign_observed(&cfg, Observe::Unbounded);
    assert!(
        summary.sdr_repairs > 0,
        "premise: SDR must fire ({summary:?})"
    );
    let chains = forensics::chains(&telemetry.events);
    let sdr_chain = chains
        .iter()
        .find(|c| c.resolved_by_sdr() && c.is_complete());
    assert!(sdr_chain.is_some(), "no complete SDR chain reconstructed");
    if summary.hash2_repairs > 0 {
        assert!(
            chains.iter().any(|c| c.resolved_via_hash2()),
            "hash2 repairs happened but no chain shows them"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Telemetry must be purely observational: enabled and disabled
    /// campaigns over the same seed produce identical summaries.
    #[test]
    fn observed_campaign_matches_unobserved(seed in 0u64..1000, trials in 5u64..20) {
        let cfg = McConfig { seed, ..small_cfg(Scheme::Z, trials) };
        let (on, _, telemetry) = run_interval_campaign_observed(&cfg, Observe::Unbounded);
        let (off, _, no_telemetry) = run_interval_campaign_observed(&cfg, Observe::Off);
        prop_assert_eq!(on, off);
        prop_assert!(no_telemetry.events.is_empty());
        prop_assert!(no_telemetry.hists.is_empty());
        prop_assert!(no_telemetry.phases.is_empty());
        // Interval stamps stay within range and sorted.
        prop_assert!(telemetry.events.iter().all(|e| e.interval < trials));
        prop_assert!(telemetry.events.windows(2).all(|w| w[0].interval <= w[1].interval));
    }

    /// The same guarantee for conditional group campaigns.
    #[test]
    fn observed_group_campaign_matches_unobserved(seed in 0u64..1000) {
        let scenario = GroupScenario::two_by_two(Scheme::Y, 64);
        let (on, _, telemetry) = run_group_campaign_observed(&scenario, 12, seed, 2, Observe::Unbounded);
        let (off, _, _) = run_group_campaign_observed(&scenario, 12, seed, 2, Observe::Off);
        prop_assert_eq!(on, off);
        // Every trial injected two 2-fault lines; the injection records
        // must say exactly that.
        let injects: Vec<_> = telemetry
            .events
            .iter()
            .filter(|e| e.mechanism == Mechanism::Inject)
            .collect();
        prop_assert_eq!(injects.len() as u64, 2 * on.trials);
        prop_assert!(injects.iter().all(|e| e.trials == 2));
    }
}
