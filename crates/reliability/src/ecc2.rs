//! Functional validation of the ECC-2 SuDoku variant (paper §VII-G).
//!
//! The paper notes that at very low ∆ "SuDoku can be enhanced even further
//! by replacing ECC-1 with ECC-2". Analytically that is
//! [`crate::analytic::Params::with_line_ecc`]; this module exercises the
//! claim *functionally*: a RAID-Group of [`ProtectedLine2`] lines (CRC-31 +
//! BCH t=2) is injected with a chosen fault pattern and repaired with the
//! same algorithm ladder as the ECC-1 engine — fix-locally, SDR
//! (flip-one-mismatch + ECC + CRC), final RAID-4. With ECC-2, SDR
//! resurrects lines with *three* faults, the very pattern that forces the
//! ECC-1 design to fall back on its second hash.

use crate::math::wilson_ci;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sudoku_codes::{Line2Codec, ProtectedLine2, ReadCheck2, TOTAL2_BITS};
use sudoku_fault::choose_distinct;

/// A conditional ECC-2 group scenario (single hash dimension).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecc2Scenario {
    /// Lines per RAID-Group.
    pub group: u32,
    /// Faults per affected line.
    pub fault_counts: Vec<u32>,
    /// SDR mismatch budget (6 in the paper).
    pub max_mismatches: u32,
}

impl Ecc2Scenario {
    /// The §VII-G stress case: two 3-fault lines in one group.
    pub fn three_by_three(group: u32) -> Self {
        Ecc2Scenario {
            group,
            fault_counts: vec![3, 3],
            max_mismatches: 6,
        }
    }
}

/// Outcome of one ECC-2 group trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ecc2Outcome {
    /// Every line restored to golden.
    Repaired,
    /// At least one line left detectably uncorrectable.
    Due,
    /// A line passed validation with wrong data (never observed; counted
    /// for completeness).
    Sdc,
}

/// Runs one trial: inject `scenario.fault_counts` into distinct random
/// lines of a zero-data group and run the ECC-2 recovery ladder.
pub fn run_ecc2_group_trial(scenario: &Ecc2Scenario, seed: u64) -> Ecc2Outcome {
    let codec = Line2Codec::shared();
    let mut rng = StdRng::seed_from_u64(seed);
    let g = scenario.group as usize;
    // Golden state: all-zero codewords; the stored parity is therefore
    // zero as well (linearity, as in the main Monte-Carlo engine).
    let mut lines = vec![ProtectedLine2::zero(); g];
    let stored_parity = ProtectedLine2::zero();
    let victims = choose_distinct(&mut rng, g as u64, scenario.fault_counts.len() as u64);
    for (&v, &count) in victims.iter().zip(scenario.fault_counts.iter()) {
        for pos in choose_distinct(&mut rng, TOTAL2_BITS as u64, count as u64) {
            lines[v as usize].flip_bit(pos as usize);
        }
    }

    // Pass 1: local repair (≤2 faults per line).
    let mut faulty: Vec<usize> = Vec::new();
    for (i, line) in lines.iter_mut().enumerate() {
        match codec.scrub_check(line) {
            ReadCheck2::Clean => {}
            ReadCheck2::Corrected { repaired, .. } => *line = repaired,
            ReadCheck2::MultiBit => faulty.push(i),
        }
    }

    // Pass 2: SDR.
    'sdr: while faulty.len() >= 2 {
        let mut computed = ProtectedLine2::zero();
        for line in &lines {
            computed.xor_assign(line);
        }
        let mismatches = computed.diff_positions(&stored_parity);
        if mismatches.is_empty() || mismatches.len() > scenario.max_mismatches as usize {
            break;
        }
        for idx in 0..faulty.len() {
            let v = faulty[idx];
            for &pos in &mismatches {
                let mut candidate = lines[v];
                candidate.flip_bit(pos);
                let fixed = match codec.scrub_check(&candidate) {
                    ReadCheck2::Clean => Some(candidate),
                    ReadCheck2::Corrected { repaired, .. } => Some(repaired),
                    ReadCheck2::MultiBit => None,
                };
                if let Some(f) = fixed {
                    lines[v] = f;
                    faulty.remove(idx);
                    continue 'sdr;
                }
            }
        }
        break;
    }

    // Pass 3: one survivor → RAID-4 over the corrected peers.
    if faulty.len() == 1 {
        let v = faulty[0];
        let mut candidate = stored_parity;
        for (i, line) in lines.iter().enumerate() {
            if i != v {
                candidate.xor_assign(line);
            }
        }
        if codec.validate(&candidate) {
            lines[v] = candidate;
            faulty.clear();
        }
    }

    if !faulty.is_empty() {
        return Ecc2Outcome::Due;
    }
    if lines.iter().all(ProtectedLine2::is_zero) {
        Ecc2Outcome::Repaired
    } else {
        Ecc2Outcome::Sdc
    }
}

/// Aggregate of an ECC-2 conditional campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Ecc2Summary {
    /// Trials run.
    pub trials: u64,
    /// Fully repaired trials.
    pub repaired: u64,
    /// DUE trials.
    pub due: u64,
    /// SDC trials.
    pub sdc: u64,
}

impl Ecc2Summary {
    /// Fraction of trials fully repaired.
    pub fn success_rate(&self) -> f64 {
        self.repaired as f64 / self.trials as f64
    }

    /// 95 % Wilson interval on the success rate.
    pub fn success_ci(&self) -> (f64, f64) {
        wilson_ci(self.repaired, self.trials, 1.96)
    }
}

/// Runs `trials` seeds of a scenario.
pub fn run_ecc2_campaign(scenario: &Ecc2Scenario, trials: u64, seed: u64) -> Ecc2Summary {
    let mut s = Ecc2Summary::default();
    for t in 0..trials {
        s.trials += 1;
        match run_ecc2_group_trial(scenario, seed.wrapping_add(t)) {
            Ecc2Outcome::Repaired => s.repaired += 1,
            Ecc2Outcome::Due => s.due += 1,
            Ecc2Outcome::Sdc => s.sdc += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_fault_lines_fixed_locally() {
        let s = run_ecc2_campaign(
            &Ecc2Scenario {
                group: 64,
                fault_counts: vec![2, 2, 2],
                max_mismatches: 6,
            },
            200,
            1,
        );
        assert_eq!(s.repaired, s.trials, "{s:?}");
    }

    #[test]
    fn three_by_three_succeeds_with_ecc2() {
        // The pattern ECC-1 SDR cannot fix on a single hash.
        let s = run_ecc2_campaign(&Ecc2Scenario::three_by_three(64), 400, 2);
        assert!(s.success_rate() > 0.99, "{s:?}");
        assert_eq!(s.sdc, 0);
    }

    #[test]
    fn three_plus_four_succeeds() {
        // (3,4): SDR resurrects the 3-fault line, RAID-4 the 4-fault one.
        // 7 mismatches exceed the budget only without overlaps... (3+4=7):
        // over budget → abort → RAID-4 alone cannot fix two lines → DUE
        // unless SDR ran. Expect mostly DUE with cap 6, success with cap 7.
        let strict = run_ecc2_campaign(
            &Ecc2Scenario {
                group: 64,
                fault_counts: vec![3, 4],
                max_mismatches: 6,
            },
            200,
            3,
        );
        assert!(strict.success_rate() < 0.2, "{strict:?}");
        let relaxed = run_ecc2_campaign(
            &Ecc2Scenario {
                group: 64,
                fault_counts: vec![3, 4],
                max_mismatches: 8,
            },
            200,
            3,
        );
        assert!(relaxed.success_rate() > 0.95, "{relaxed:?}");
    }

    #[test]
    fn four_by_four_fails_even_with_ecc2() {
        let s = run_ecc2_campaign(
            &Ecc2Scenario {
                group: 64,
                fault_counts: vec![4, 4],
                max_mismatches: 6,
            },
            100,
            4,
        );
        assert!(s.success_rate() < 0.05, "{s:?}");
        assert_eq!(s.sdc, 0);
    }
}
