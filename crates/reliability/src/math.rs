//! Log-space probability helpers.
//!
//! The paper's reliability figures span ~30 orders of magnitude (line
//! failure probabilities of 10⁻²² up to FIT rates of 10¹⁴), so every
//! binomial quantity here is computed through log-gamma.

/// Natural log of the gamma function (Lanczos approximation, |err| < 1e-13
/// for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos g = 7, n = 9 coefficients, quoted as published (a couple
    // carry more digits than f64 resolves).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// ln C(n, k).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k must not exceed n");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf P(X = k) for X ~ Binomial(n, p), exact in log space.
pub fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p();
    (ln_choose(n, k) + k as f64 * ln_p + (n - k) as f64 * ln_q).exp()
}

/// Upper tail P(X ≥ k) for X ~ Binomial(n, p).
///
/// For the far upper tail (k > n·p, the regime every reliability number
/// here lives in) the series Σ_{j≥k} pmf(j) converges geometrically and is
/// summed directly; otherwise the complement is used.
pub fn binom_sf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let mean = n as f64 * p;
    if (k as f64) > mean {
        // Sum upward until terms vanish.
        let mut total = 0.0f64;
        let mut j = k;
        let mut term = binom_pmf(n, j, p);
        loop {
            total += term;
            if j == n {
                break;
            }
            // pmf(j+1)/pmf(j) = (n-j)/(j+1) * p/q
            let ratio = (n - j) as f64 / (j + 1) as f64 * p / (1.0 - p);
            term *= ratio;
            j += 1;
            if term < total * 1e-18 || term < 1e-300 {
                break;
            }
        }
        total.min(1.0)
    } else {
        // Lower regime: 1 − P(X ≤ k−1) summed from 0.
        let mut below = 0.0f64;
        for j in 0..k {
            below += binom_pmf(n, j, p);
        }
        (1.0 - below).clamp(0.0, 1.0)
    }
}

/// 1 − (1 − p)^n without cancellation: the probability that at least one of
/// `n` independent events (each probability `p`) occurs.
pub fn p_any(n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 || n == 0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    (-((n as f64) * (-p).ln_1p()).exp_m1()).clamp(0.0, 1.0)
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` at the given normal quantile `z` (1.96 ≈ 95 %).
pub fn wilson_ci(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "trials must be positive");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let margin = z * ((phat * (1.0 - phat) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((center - margin).max(0.0), (center + margin).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, fact) in [(1u64, 1f64), (2, 1.0), (5, 24.0), (10, 362880.0)] {
            let err = (ln_gamma(n as f64) - fact.ln()).abs();
            assert!(err < 1e-10, "n = {n}, err = {err}");
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn pmf_sums_to_one_small() {
        let (n, p) = (20u64, 0.3);
        let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
    }

    #[test]
    fn sf_matches_direct_sum_small() {
        let (n, p) = (30u64, 0.1);
        for k in 0..=n {
            let direct: f64 = (k..=n).map(|j| binom_pmf(n, j, p)).sum();
            let sf = binom_sf(n, k, p);
            assert!((sf - direct).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn sf_deep_tail_is_finite_and_positive() {
        // P(≥7 faults in 553 bits at p = 5.3e-6) — the ECC-6 line-failure
        // probability of Table II, ~4e-22.
        let sf = binom_sf(553, 7, 5.3e-6);
        assert!(sf > 1e-23 && sf < 1e-20, "{sf}");
    }

    #[test]
    fn sf_matches_paper_table2_ecc1() {
        // Paper: P(≥2 faults) ≈ 3.9e-6 over a 522-bit ECC-1 line.
        let sf = binom_sf(522, 2, 5.3e-6);
        assert!((3.0e-6..5.0e-6).contains(&sf), "{sf}");
    }

    #[test]
    fn p_any_tiny_p_linearizes() {
        let p = 1e-15;
        let n = 1u64 << 20;
        let got = p_any(n, p);
        let expect = n as f64 * p;
        assert!((got / expect - 1.0).abs() < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn p_any_saturates() {
        assert!((p_any(1_000_000, 0.01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_contains_truth_for_fair_coin() {
        let (lo, hi) = wilson_ci(480, 1000, 1.96);
        assert!(lo < 0.5 && 0.5 < hi, "({lo}, {hi})");
        assert!(lo > 0.44 && hi < 0.52);
    }

    #[test]
    fn wilson_zero_successes() {
        let (lo, hi) = wilson_ci(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.06);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }
}
