//! Monte-Carlo fault-injection campaigns driving the *real* SuDoku engines.
//!
//! The analytic models in [`crate::analytic`] enumerate failure conditions
//! by hand; the campaigns here validate them behaviourally: every trial
//! injects a statistically exact per-interval fault pattern into a (sparse,
//! full-size) cache and runs the actual scrubber from `sudoku-core`. Because
//! data values are irrelevant to the fault process and all codes are linear,
//! trials use the all-zero golden state WLOG — any line that ends an
//! interval non-zero yet CRC-valid is a silent data corruption.
//!
//! Two campaign shapes:
//!
//! * [`run_interval_campaign`] — unconditional intervals at a given BER;
//!   estimates the per-interval DUE probability (and hence MTTF/FIT) of
//!   SuDoku-X at full scale, exactly the quantity of paper §III-F;
//! * [`run_group_campaign`] — conditional trials that *place* a chosen
//!   fault pattern (e.g. two lines × two faults) in one RAID-Group and
//!   measure the engine's repair success, reproducing the SDR case
//!   percentages of paper §IV-B/C and feeding the rare-event estimates of
//!   SuDoku-Y/Z.

use crate::math::wilson_ci;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sudoku_codes::TOTAL_BITS;
use sudoku_core::{CacheGeometry, Scheme, SudokuCache, SudokuConfig};
use sudoku_fault::{choose_distinct, FaultInjector, ScrubSchedule};

/// Configuration of an unconditional interval campaign.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// SuDoku variant under test.
    pub scheme: Scheme,
    /// Cache size in lines.
    pub lines: u64,
    /// RAID-Group size in lines.
    pub group: u32,
    /// Per-interval bit error rate.
    pub ber: f64,
    /// Number of independent intervals to simulate.
    pub trials: u64,
    /// Base RNG seed (trial i uses `seed + i`).
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Scrub schedule, for FIT/MTTF conversion of the measured rate.
    pub scrub: ScrubSchedule,
}

impl McConfig {
    /// Paper-scale defaults: 64 MB cache, 512-line groups, BER 5.3×10⁻⁶.
    pub fn paper_default(scheme: Scheme, trials: u64, seed: u64) -> Self {
        McConfig {
            scheme,
            lines: 1 << 20,
            group: 512,
            ber: 5.3e-6,
            trials,
            seed,
            threads: 0,
            scrub: ScrubSchedule::paper_default(),
        }
    }

    fn sudoku_config(&self) -> SudokuConfig {
        SudokuConfig {
            geometry: CacheGeometry::with_lines(self.lines),
            scheme: self.scheme,
            group_lines: self.group,
            max_sdr_mismatches: 6,
            sdr_pair_trials: false,
            scrub: self.scrub,
        }
    }
}

/// Outcome of one simulated interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalOutcome {
    /// Faulty lines injected.
    pub faulty_lines: u32,
    /// Faulty bits injected.
    pub faulty_bits: u32,
    /// Lines that needed group recovery.
    pub multibit_lines: u32,
    /// Lines repaired by plain RAID-4.
    pub raid4_repairs: u32,
    /// Lines repaired by SDR.
    pub sdr_repairs: u32,
    /// Lines repaired via Hash-2.
    pub hash2_repairs: u32,
    /// Detectably uncorrectable lines at interval end.
    pub due_lines: u32,
    /// Silently corrupted lines at interval end.
    pub sdc_lines: u32,
}

/// Aggregate of an interval campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Intervals simulated.
    pub trials: u64,
    /// Intervals with ≥ 1 DUE line.
    pub due_intervals: u64,
    /// Intervals with ≥ 1 SDC line.
    pub sdc_intervals: u64,
    /// Total faulty bits injected.
    pub faulty_bits: u64,
    /// Total multi-bit lines observed.
    pub multibit_lines: u64,
    /// Total RAID-4 repairs.
    pub raid4_repairs: u64,
    /// Total SDR repairs.
    pub sdr_repairs: u64,
    /// Total Hash-2 repairs.
    pub hash2_repairs: u64,
}

impl CampaignSummary {
    /// Estimated per-interval DUE probability.
    pub fn due_rate(&self) -> f64 {
        self.due_intervals as f64 / self.trials as f64
    }

    /// 95 % Wilson interval on the per-interval DUE probability.
    pub fn due_rate_ci(&self) -> (f64, f64) {
        wilson_ci(self.due_intervals, self.trials, 1.96)
    }

    /// Measured MTTF in seconds for a given scrub schedule (∞ if no DUE
    /// was observed).
    pub fn mttf_seconds(&self, scrub: &ScrubSchedule) -> f64 {
        let rate = self.due_rate();
        if rate == 0.0 {
            f64::INFINITY
        } else {
            scrub.interval_s() / rate
        }
    }

    /// Measured FIT for a given scrub schedule.
    pub fn fit(&self, scrub: &ScrubSchedule) -> f64 {
        scrub.fit_rate_linear(self.due_rate())
    }
}

/// Simulates one scrub interval; deterministic in `(cfg, trial_seed)`.
pub fn run_interval(cfg: &McConfig, trial_seed: u64) -> IntervalOutcome {
    let mut cache =
        SudokuCache::new_sparse(cfg.sudoku_config()).expect("valid Monte-Carlo configuration");
    let mut injector = FaultInjector::new(cfg.ber, trial_seed);
    let plan = injector.cache_plan(cfg.lines);
    let mut hints = Vec::with_capacity(plan.len());
    let mut faulty_bits = 0u32;
    for lf in &plan {
        let positions = choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64);
        for pos in positions {
            cache.inject_fault(lf.line, pos as usize);
        }
        faulty_bits += lf.faults;
        hints.push(lf.line);
    }
    let report = cache.scrub_lines(&hints);
    let mut sdc_lines = 0u32;
    for (idx, line) in cache.store().iter_touched() {
        if !line.is_zero() && !report.unresolved.contains(&idx) {
            sdc_lines += 1;
        }
    }
    IntervalOutcome {
        faulty_lines: plan.len() as u32,
        faulty_bits,
        multibit_lines: report.multibit_lines as u32,
        raid4_repairs: report.raid4_repairs as u32,
        sdr_repairs: report.sdr_repairs as u32,
        hash2_repairs: report.hash2_repairs as u32,
        due_lines: report.unresolved.len() as u32,
        sdc_lines,
    }
}

fn worker_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `cfg.trials` independent intervals, sharded across threads.
pub fn run_interval_campaign(cfg: &McConfig) -> CampaignSummary {
    let threads = worker_threads(cfg.threads).min(cfg.trials.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);
    let results: Vec<CampaignSummary> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut local = CampaignSummary::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= cfg.trials {
                            break;
                        }
                        let o = run_interval(cfg, cfg.seed.wrapping_add(i));
                        local.trials += 1;
                        local.due_intervals += (o.due_lines > 0) as u64;
                        local.sdc_intervals += (o.sdc_lines > 0) as u64;
                        local.faulty_bits += o.faulty_bits as u64;
                        local.multibit_lines += o.multibit_lines as u64;
                        local.raid4_repairs += o.raid4_repairs as u64;
                        local.sdr_repairs += o.sdr_repairs as u64;
                        local.hash2_repairs += o.hash2_repairs as u64;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("campaign scope");
    let mut total = CampaignSummary::default();
    for r in results {
        total.trials += r.trials;
        total.due_intervals += r.due_intervals;
        total.sdc_intervals += r.sdc_intervals;
        total.faulty_bits += r.faulty_bits;
        total.multibit_lines += r.multibit_lines;
        total.raid4_repairs += r.raid4_repairs;
        total.sdr_repairs += r.sdr_repairs;
        total.hash2_repairs += r.hash2_repairs;
    }
    total
}

/// Outcome of a lifetime run: consecutive intervals simulated until the
/// first DUE or the cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeOutcome {
    /// Intervals survived before the failure (== `cap` if none occurred).
    pub intervals_survived: u64,
    /// Whether a DUE terminated the run.
    pub failed: bool,
}

/// Simulates consecutive scrub intervals on one cache until the first DUE
/// or `max_intervals`. Successful scrubs restore the pristine state, so
/// the time-to-first-failure is geometric in the per-interval DUE
/// probability — this run measures it directly rather than assuming it.
pub fn run_lifetime(cfg: &McConfig, max_intervals: u64, seed: u64) -> LifetimeOutcome {
    let mut cache =
        SudokuCache::new_sparse(cfg.sudoku_config()).expect("valid Monte-Carlo configuration");
    let mut injector = FaultInjector::new(cfg.ber, seed);
    for interval in 0..max_intervals {
        let plan = injector.cache_plan(cfg.lines);
        let mut hints = Vec::with_capacity(plan.len());
        for lf in &plan {
            for pos in choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64) {
                cache.inject_fault(lf.line, pos as usize);
            }
            hints.push(lf.line);
        }
        let report = cache.scrub_lines(&hints);
        if !report.fully_repaired() {
            return LifetimeOutcome {
                intervals_survived: interval,
                failed: true,
            };
        }
    }
    LifetimeOutcome {
        intervals_survived: max_intervals,
        failed: false,
    }
}

/// Runs `runs` independent lifetimes and reports the censored-mean MTTF.
pub fn run_lifetime_campaign(
    cfg: &McConfig,
    runs: u64,
    max_intervals: u64,
    seed: u64,
) -> (f64, u64) {
    let mut total_intervals = 0u64;
    let mut failures = 0u64;
    for r in 0..runs {
        let o = run_lifetime(
            cfg,
            max_intervals,
            seed.wrapping_add(r.wrapping_mul(0x9E37)),
        );
        // The failing interval itself counts toward the lifetime (a run
        // that dies immediately lived one interval, not zero).
        total_intervals += o.intervals_survived + o.failed as u64;
        failures += o.failed as u64;
    }
    let mttf_s = if failures == 0 {
        f64::INFINITY
    } else {
        total_intervals as f64 / failures as f64 * cfg.scrub.interval_s()
    };
    (mttf_s, failures)
}

/// A conditional scenario: `fault_counts[i]` faults are injected into the
/// i-th of several distinct lines of one Hash-1 RAID-Group, at uniformly
/// random distinct bit positions per line.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupScenario {
    /// SuDoku variant under test.
    pub scheme: Scheme,
    /// RAID-Group size in lines.
    pub group: u32,
    /// Faults per affected line (length = number of faulty lines).
    pub fault_counts: Vec<u32>,
    /// Enable the pair-flip SDR extension (off = the paper's design).
    pub pair_sdr: bool,
}

impl GroupScenario {
    /// The canonical SuDoku-Y stress case: two lines, two faults each
    /// (paper Figure 3).
    pub fn two_by_two(scheme: Scheme, group: u32) -> Self {
        GroupScenario {
            scheme,
            group,
            fault_counts: vec![2, 2],
            pair_sdr: false,
        }
    }

    fn lines_needed(&self) -> u64 {
        // group² lines give Hash-2 its disjointness guarantee.
        self.group as u64 * self.group as u64
    }

    fn sudoku_config(&self) -> SudokuConfig {
        SudokuConfig {
            geometry: CacheGeometry::with_lines(self.lines_needed()),
            scheme: self.scheme,
            group_lines: self.group,
            max_sdr_mismatches: 6,
            sdr_pair_trials: self.pair_sdr,
            scrub: ScrubSchedule::paper_default(),
        }
    }
}

/// Result of a conditional group campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupCampaignSummary {
    /// Trials run.
    pub trials: u64,
    /// Trials in which every injected line was restored to golden.
    pub repaired: u64,
    /// Trials ending with ≥1 DUE line.
    pub due: u64,
    /// Trials ending with ≥1 silently corrupted line.
    pub sdc: u64,
}

impl GroupCampaignSummary {
    /// Fraction of trials fully repaired.
    pub fn success_rate(&self) -> f64 {
        self.repaired as f64 / self.trials as f64
    }

    /// 95 % Wilson interval on the success rate.
    pub fn success_ci(&self) -> (f64, f64) {
        wilson_ci(self.repaired, self.trials, 1.96)
    }

    /// Fraction of trials with a DUE.
    pub fn failure_rate(&self) -> f64 {
        self.due as f64 / self.trials as f64
    }
}

/// Runs one conditional group trial. Returns the outcome of the interval.
pub fn run_group_trial(scenario: &GroupScenario, trial_seed: u64) -> IntervalOutcome {
    let mut cache =
        SudokuCache::new_sparse(scenario.sudoku_config()).expect("valid scenario configuration");
    let mut rng = StdRng::seed_from_u64(trial_seed);
    // Pick a random Hash-1 group and distinct victim offsets within it.
    let n_groups = scenario.lines_needed() / scenario.group as u64;
    let group = rng.gen_range(0..n_groups);
    let offsets = choose_distinct(
        &mut rng,
        scenario.group as u64,
        scenario.fault_counts.len() as u64,
    );
    let mut hints = Vec::new();
    let mut faulty_bits = 0u32;
    for (&off, &count) in offsets.iter().zip(scenario.fault_counts.iter()) {
        let line = group * scenario.group as u64 + off;
        for pos in choose_distinct(&mut rng, TOTAL_BITS as u64, count as u64) {
            cache.inject_fault(line, pos as usize);
        }
        faulty_bits += count;
        hints.push(line);
    }
    let report = cache.scrub_lines(&hints);
    let mut sdc_lines = 0u32;
    for (idx, line) in cache.store().iter_touched() {
        if !line.is_zero() && !report.unresolved.contains(&idx) {
            sdc_lines += 1;
        }
    }
    IntervalOutcome {
        faulty_lines: scenario.fault_counts.len() as u32,
        faulty_bits,
        multibit_lines: report.multibit_lines as u32,
        raid4_repairs: report.raid4_repairs as u32,
        sdr_repairs: report.sdr_repairs as u32,
        hash2_repairs: report.hash2_repairs as u32,
        due_lines: report.unresolved.len() as u32,
        sdc_lines,
    }
}

/// Runs a conditional campaign over `trials` seeds.
pub fn run_group_campaign(
    scenario: &GroupScenario,
    trials: u64,
    seed: u64,
    threads: usize,
) -> GroupCampaignSummary {
    let threads = worker_threads(threads).min(trials.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);
    let results: Vec<GroupCampaignSummary> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let scenario = scenario.clone();
                scope.spawn(move |_| {
                    let mut local = GroupCampaignSummary::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        let o = run_group_trial(&scenario, seed.wrapping_add(i));
                        local.trials += 1;
                        if o.due_lines == 0 && o.sdc_lines == 0 {
                            local.repaired += 1;
                        }
                        local.due += (o.due_lines > 0) as u64;
                        local.sdc += (o.sdc_lines > 0) as u64;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("campaign scope");
    let mut total = GroupCampaignSummary::default();
    for r in results {
        total.trials += r.trials;
        total.repaired += r.repaired;
        total.due += r.due;
        total.sdc += r.sdc;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down cache keeps unit-test campaigns fast; statistical
    /// behaviour per group is unchanged.
    fn small_cfg(scheme: Scheme, trials: u64) -> McConfig {
        McConfig {
            scheme,
            lines: 1 << 12, // 4096 lines
            group: 64,
            ber: 2e-4, // elevated so events actually occur
            trials,
            seed: 7,
            threads: 2,
            scrub: ScrubSchedule::paper_default(),
        }
    }

    #[test]
    fn interval_trial_is_deterministic() {
        let cfg = small_cfg(Scheme::Y, 1);
        assert_eq!(run_interval(&cfg, 123), run_interval(&cfg, 123));
    }

    #[test]
    fn x_campaign_sees_due_events_y_fixes_most() {
        let x = run_interval_campaign(&small_cfg(Scheme::X, 300));
        let y = run_interval_campaign(&small_cfg(Scheme::Y, 300));
        assert_eq!(x.trials, 300);
        // At BER 2e-4, 4096×553 bits → ~450 faults/interval, multi-bit
        // collisions are common: X must fail noticeably more often than Y.
        assert!(
            x.due_intervals > y.due_intervals,
            "x = {}, y = {}",
            x.due_intervals,
            y.due_intervals
        );
        assert!(y.sdr_repairs > 0, "SDR must fire: {y:?}");
    }

    #[test]
    fn z_campaign_stronger_than_y() {
        let y = run_interval_campaign(&small_cfg(Scheme::Y, 200));
        let z = run_interval_campaign(&small_cfg(Scheme::Z, 200));
        assert!(
            z.due_intervals <= y.due_intervals,
            "y = {}, z = {}",
            y.due_intervals,
            z.due_intervals
        );
    }

    #[test]
    fn group_two_by_two_success_matches_paper_figure3() {
        // Paper §IV-C: SDR repairs two 2-fault lines 99.9996 % of the time
        // (failure only on full overlap, ~7.6e-6). 3000 trials cannot
        // distinguish 99.9996 from 100 but must see zero-ish failures.
        let scenario = GroupScenario::two_by_two(Scheme::Y, 64);
        let summary = run_group_campaign(&scenario, 3000, 11, 2);
        assert!(summary.success_rate() > 0.999, "{summary:?}");
        assert_eq!(summary.sdc, 0);
    }

    #[test]
    fn group_three_by_three_fails_under_y_heals_under_z() {
        let y = run_group_campaign(
            &GroupScenario {
                scheme: Scheme::Y,
                group: 64,
                fault_counts: vec![3, 3],
                pair_sdr: false,
            },
            200,
            5,
            2,
        );
        // Two 3-fault lines defeat SDR (paper §V): Y nearly always fails…
        assert!(y.failure_rate() > 0.95, "{y:?}");
        let z = run_group_campaign(
            &GroupScenario {
                scheme: Scheme::Z,
                group: 64,
                fault_counts: vec![3, 3],
                pair_sdr: false,
            },
            200,
            5,
            2,
        );
        // …while Z repairs them through Hash-2 essentially always.
        assert!(z.success_rate() > 0.99, "{z:?}");
    }

    #[test]
    fn lifetime_matches_interval_rate() {
        // At an elevated BER the X design fails within a handful of
        // intervals; the lifetime estimator must land near
        // interval / p_due measured by the independent-interval campaign.
        let cfg = small_cfg(Scheme::X, 150);
        let interval_summary = run_interval_campaign(&cfg);
        let p = interval_summary.due_rate();
        assert!(p > 0.05, "premise: X must fail often here ({p})");
        let (mttf_s, failures) = run_lifetime_campaign(&cfg, 30, 200, 99);
        assert!(failures >= 25, "most lifetimes should end in failure");
        let expected = cfg.scrub.interval_s() / p;
        let ratio = mttf_s / expected;
        assert!(
            (0.4..2.5).contains(&ratio),
            "mttf {mttf_s} vs expected {expected}"
        );
    }

    #[test]
    fn lifetime_survives_cap_for_strong_scheme() {
        let cfg = small_cfg(Scheme::Z, 1);
        let o = run_lifetime(&cfg, 25, 3);
        assert!(!o.failed, "{o:?}");
        assert_eq!(o.intervals_survived, 25);
    }

    #[test]
    fn campaign_summary_rates() {
        let s = CampaignSummary {
            trials: 1000,
            due_intervals: 10,
            ..CampaignSummary::default()
        };
        assert_eq!(s.due_rate(), 0.01);
        let scrub = ScrubSchedule::paper_default();
        assert!((s.mttf_seconds(&scrub) - 2.0).abs() < 1e-12);
        let (lo, hi) = s.due_rate_ci();
        assert!(lo < 0.01 && 0.01 < hi);
    }
}
