//! Monte-Carlo fault-injection campaigns driving the *real* SuDoku engines.
//!
//! The analytic models in [`crate::analytic`] enumerate failure conditions
//! by hand; the campaigns here validate them behaviourally: every trial
//! injects a statistically exact per-interval fault pattern into a (sparse,
//! full-size) cache and runs the actual scrubber from `sudoku-core`. Because
//! data values are irrelevant to the fault process and all codes are linear,
//! trials use the all-zero golden state WLOG — any line that ends an
//! interval non-zero yet CRC-valid is a silent data corruption.
//!
//! Two campaign shapes:
//!
//! * [`run_interval_campaign`] — unconditional intervals at a given BER;
//!   estimates the per-interval DUE probability (and hence MTTF/FIT) of
//!   SuDoku-X at full scale, exactly the quantity of paper §III-F;
//! * [`run_group_campaign`] — conditional trials that *place* a chosen
//!   fault pattern (e.g. two lines × two faults) in one RAID-Group and
//!   measure the engine's repair success, reproducing the SDR case
//!   percentages of paper §IV-B/C and feeding the rare-event estimates of
//!   SuDoku-Y/Z.
//!
//! # Arena reuse
//!
//! Campaign workers do **not** build a fresh cache and injector per trial:
//! each worker owns one arena for the whole campaign, runs a trial with
//! [`run_interval_in`] / [`run_group_trial_in`], then returns the arena to
//! the golden-zero state with a sparse undo
//! ([`SudokuCache::reset_to_golden_zero`] rezeroes only the touched lines
//! and PLT entries; [`FaultInjector::reseed`] restores a fresh RNG stream).
//! Because reset + reseed reproduces the freshly-constructed state exactly,
//! results are bit-identical to the construct-per-trial implementation —
//! the `*_timed` variants additionally account the amortization in a
//! [`ThroughputReport`].

use crate::math::wilson_ci;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use sudoku_codes::TOTAL_BITS;
use sudoku_core::{
    CacheGeometry, Phase, PhaseTimes, Recorder, RecoveryEvent, RecoveryHistograms, Scheme,
    SparseStore, SudokuCache, SudokuConfig,
};
use sudoku_fault::{choose_distinct, observe_plan, FaultInjector, LineFaults, ScrubSchedule};

/// Trials claimed per worker fetch: large enough that the atomic counter is
/// off the hot path, small enough that the tail imbalance stays bounded.
const TRIAL_CHUNK: u64 = 8;

/// Configuration of an unconditional interval campaign.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// SuDoku variant under test.
    pub scheme: Scheme,
    /// Cache size in lines.
    pub lines: u64,
    /// RAID-Group size in lines.
    pub group: u32,
    /// Per-interval bit error rate.
    pub ber: f64,
    /// Number of independent intervals to simulate.
    pub trials: u64,
    /// Base RNG seed (trial i uses `seed + i`).
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Scrub schedule, for FIT/MTTF conversion of the measured rate.
    pub scrub: ScrubSchedule,
}

impl McConfig {
    /// Paper-scale defaults: 64 MB cache, 512-line groups, BER 5.3×10⁻⁶.
    pub fn paper_default(scheme: Scheme, trials: u64, seed: u64) -> Self {
        McConfig {
            scheme,
            lines: 1 << 20,
            group: 512,
            ber: 5.3e-6,
            trials,
            seed,
            threads: 0,
            scrub: ScrubSchedule::paper_default(),
        }
    }

    fn sudoku_config(&self) -> SudokuConfig {
        SudokuConfig {
            geometry: CacheGeometry::with_lines(self.lines),
            scheme: self.scheme,
            group_lines: self.group,
            max_sdr_mismatches: 6,
            sdr_pair_trials: false,
            defer_hash2: false,
            scrub: self.scrub,
        }
    }
}

/// Wall-clock throughput and amortization accounting for one campaign.
///
/// Produced by the `*_timed` campaign variants and surfaced by every
/// benchmark binary that runs campaigns (DESIGN.md "Performance notes").
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Completed trials per wall-clock second (for lifetime campaigns:
    /// simulated *intervals* per second, since runs vary in length).
    pub trials_per_sec: f64,
    /// Lines examined by scrub passes, summed over all workers.
    pub lines_scrubbed: u64,
    /// CRC/ECC consistency checks actually performed (lines skipped by the
    /// all-zero fast path are not counted).
    pub crc_checks: u64,
    /// Seconds spent resetting reused arenas to the golden-zero state
    /// between trials — the amortized cost paid instead of reconstructing
    /// cache + injector from scratch every trial.
    pub reset_cost: f64,
}

impl ThroughputReport {
    /// One-line human-readable rendering, prefixed with `label`.
    pub fn println(&self, label: &str) {
        println!(
            "[{label}] {:.2} trials/s | {} lines scrubbed | {} CRC checks | reset cost {:.4} s",
            self.trials_per_sec, self.lines_scrubbed, self.crc_checks, self.reset_cost
        );
    }

    /// JSON object with every field, stable order.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_f64("trials_per_sec", self.trials_per_sec);
        obj.field_u64("lines_scrubbed", self.lines_scrubbed);
        obj.field_u64("crc_checks", self.crc_checks);
        obj.field_f64("reset_cost_s", self.reset_cost);
        obj.finish()
    }
}

/// Telemetry depth of an observed campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Observe {
    /// No telemetry: workers run with disabled recorders (the zero-cost
    /// path — one predictable branch per would-be emission).
    Off,
    /// Keep the most recent `N` events *per trial*; histograms and phase
    /// spans are always complete.
    Ring(usize),
    /// Keep every event of every trial (memory grows with the fault count).
    Unbounded,
}

impl Observe {
    /// Whether any collection happens.
    pub fn enabled(&self) -> bool {
        !matches!(self, Observe::Off)
    }

    fn recorder(&self) -> Recorder {
        match self {
            Observe::Off => Recorder::disabled(),
            Observe::Ring(capacity) => Recorder::ring(*capacity),
            Observe::Unbounded => Recorder::unbounded(),
        }
    }
}

/// Telemetry harvested from an observed campaign: the merged event log
/// (sorted by interval, intra-interval emission order preserved), the
/// merged recovery histograms, and the per-phase wall-clock totals summed
/// over workers.
#[derive(Clone, Debug, Default)]
pub struct CampaignTelemetry {
    /// Recovery events, sorted by interval.
    pub events: Vec<RecoveryEvent>,
    /// Merged recovery histograms.
    pub hists: RecoveryHistograms,
    /// Per-phase wall-clock totals (CPU-seconds: workers run concurrently,
    /// so phase totals can exceed the campaign's wall-clock time).
    pub phases: PhaseTimes,
}

impl CampaignTelemetry {
    fn merge(&mut self, other: CampaignTelemetry) {
        self.events.extend(other.events);
        self.hists.merge(&other.hists);
        self.phases.merge(&other.phases);
    }

    /// Each trial runs on exactly one worker, so a stable sort by interval
    /// restores a deterministic, emission-ordered log regardless of how
    /// the scheduler interleaved workers.
    fn finish(&mut self) {
        self.events.sort_by_key(|e| e.interval);
    }

    /// The event log as JSON Lines (one event per line, trailing newline).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// JSON object with the histogram set, phase times, and event count.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("events", self.events.len() as u64);
        obj.field_raw("histograms", &self.hists.to_json());
        obj.field_raw("phases", &self.phases.to_json());
        obj.finish()
    }
}

/// Outcome of one simulated interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalOutcome {
    /// Faulty lines injected.
    pub faulty_lines: u32,
    /// Faulty bits injected.
    pub faulty_bits: u32,
    /// Lines that needed group recovery.
    pub multibit_lines: u32,
    /// Lines repaired by plain RAID-4.
    pub raid4_repairs: u32,
    /// Lines repaired by SDR.
    pub sdr_repairs: u32,
    /// Lines repaired via Hash-2.
    pub hash2_repairs: u32,
    /// Detectably uncorrectable lines at interval end.
    pub due_lines: u32,
    /// Silently corrupted lines at interval end.
    pub sdc_lines: u32,
}

/// Aggregate of an interval campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Intervals simulated.
    pub trials: u64,
    /// Intervals with ≥ 1 DUE line.
    pub due_intervals: u64,
    /// Intervals with ≥ 1 SDC line.
    pub sdc_intervals: u64,
    /// Total faulty bits injected.
    pub faulty_bits: u64,
    /// Total multi-bit lines observed.
    pub multibit_lines: u64,
    /// Total RAID-4 repairs.
    pub raid4_repairs: u64,
    /// Total SDR repairs.
    pub sdr_repairs: u64,
    /// Total Hash-2 repairs.
    pub hash2_repairs: u64,
}

impl CampaignSummary {
    /// Estimated per-interval DUE probability.
    pub fn due_rate(&self) -> f64 {
        self.due_intervals as f64 / self.trials as f64
    }

    /// 95 % Wilson interval on the per-interval DUE probability.
    pub fn due_rate_ci(&self) -> (f64, f64) {
        wilson_ci(self.due_intervals, self.trials, 1.96)
    }

    /// Measured MTTF in seconds for a given scrub schedule (∞ if no DUE
    /// was observed).
    pub fn mttf_seconds(&self, scrub: &ScrubSchedule) -> f64 {
        let rate = self.due_rate();
        if rate == 0.0 {
            f64::INFINITY
        } else {
            scrub.interval_s() / rate
        }
    }

    /// Measured FIT for a given scrub schedule.
    pub fn fit(&self, scrub: &ScrubSchedule) -> f64 {
        scrub.fit_rate_linear(self.due_rate())
    }

    fn absorb(&mut self, o: &IntervalOutcome) {
        self.trials += 1;
        self.due_intervals += (o.due_lines > 0) as u64;
        self.sdc_intervals += (o.sdc_lines > 0) as u64;
        self.faulty_bits += o.faulty_bits as u64;
        self.multibit_lines += o.multibit_lines as u64;
        self.raid4_repairs += o.raid4_repairs as u64;
        self.sdr_repairs += o.sdr_repairs as u64;
        self.hash2_repairs += o.hash2_repairs as u64;
    }

    fn merge(&mut self, r: &CampaignSummary) {
        self.trials += r.trials;
        self.due_intervals += r.due_intervals;
        self.sdc_intervals += r.sdc_intervals;
        self.faulty_bits += r.faulty_bits;
        self.multibit_lines += r.multibit_lines;
        self.raid4_repairs += r.raid4_repairs;
        self.sdr_repairs += r.sdr_repairs;
        self.hash2_repairs += r.hash2_repairs;
    }
}

/// Lines that survived scrub non-zero without being flagged: silent data
/// corruption under the golden-zero convention.
fn count_sdc(cache: &SudokuCache<SparseStore>, report: &sudoku_core::ScrubReport) -> u32 {
    let mut sdc_lines = 0u32;
    for (idx, line) in cache.store().iter_touched() {
        if !line.is_zero() && !report.unresolved.contains(&idx) {
            sdc_lines += 1;
        }
    }
    sdc_lines
}

/// Simulates one scrub interval in a caller-owned arena.
///
/// `cache` must be in the golden-zero state (freshly constructed or
/// [`SudokuCache::reset_to_golden_zero`]); the injector is reseeded to
/// `trial_seed`, so the result depends only on `(cfg, trial_seed)` and is
/// bit-identical to [`run_interval`]. The cache is left *dirty* — the
/// caller resets it before the next trial.
pub fn run_interval_in(
    cache: &mut SudokuCache<SparseStore>,
    injector: &mut FaultInjector,
    cfg: &McConfig,
    trial_seed: u64,
) -> IntervalOutcome {
    // Telemetry is observational only: neither the span clocks nor
    // `observe_plan` touch the RNG, so observed and unobserved trials are
    // bit-identical.
    let observing = cache.recorder().enabled();
    let inject_start = observing.then(Instant::now);
    injector.reseed(trial_seed);
    let plan = injector.cache_plan(cfg.lines);
    if observing {
        observe_plan(&plan, cache.recorder_mut());
    }
    let mut hints = Vec::with_capacity(plan.len());
    let mut faulty_bits = 0u32;
    for lf in &plan {
        let positions = choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64);
        for pos in positions {
            cache.inject_fault(lf.line, pos as usize);
        }
        faulty_bits += lf.faults;
        hints.push(lf.line);
    }
    if let Some(start) = inject_start {
        cache
            .recorder_mut()
            .phases
            .add(Phase::Inject, start.elapsed().as_secs_f64());
    }
    let scrub_start = observing.then(Instant::now);
    let report = cache.scrub_lines(&hints);
    if let Some(start) = scrub_start {
        cache
            .recorder_mut()
            .phases
            .add(Phase::Scrub, start.elapsed().as_secs_f64());
    }
    IntervalOutcome {
        faulty_lines: plan.len() as u32,
        faulty_bits,
        multibit_lines: report.multibit_lines as u32,
        raid4_repairs: report.raid4_repairs as u32,
        sdr_repairs: report.sdr_repairs as u32,
        hash2_repairs: report.hash2_repairs as u32,
        due_lines: report.unresolved.len() as u32,
        sdc_lines: count_sdc(cache, &report),
    }
}

/// Simulates one scrub interval; deterministic in `(cfg, trial_seed)`.
pub fn run_interval(cfg: &McConfig, trial_seed: u64) -> IntervalOutcome {
    let mut cache =
        SudokuCache::new_sparse(cfg.sudoku_config()).expect("valid Monte-Carlo configuration");
    let mut injector = FaultInjector::new(cfg.ber, trial_seed);
    run_interval_in(&mut cache, &mut injector, cfg, trial_seed)
}

fn worker_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `cfg.trials` independent intervals with per-worker reused arenas,
/// collecting telemetry at the requested depth. The summary and throughput
/// accounting are bit-identical across `observe` settings — telemetry
/// never perturbs the trial RNG streams.
pub fn run_interval_campaign_observed(
    cfg: &McConfig,
    observe: Observe,
) -> (CampaignSummary, ThroughputReport, CampaignTelemetry) {
    let threads = worker_threads(cfg.threads).min(cfg.trials.max(1) as usize);
    let next = AtomicU64::new(0);
    let start = Instant::now();
    type WorkerResult = (CampaignSummary, u64, u64, f64, CampaignTelemetry);
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut cache = SudokuCache::new_sparse(cfg.sudoku_config())
                        .expect("valid Monte-Carlo configuration");
                    let _ = cache.set_recorder(observe.recorder());
                    let observing = observe.enabled();
                    let mut injector = FaultInjector::new(cfg.ber, cfg.seed);
                    let mut local = CampaignSummary::default();
                    let mut events: Vec<RecoveryEvent> = Vec::new();
                    let mut reset_cost = 0.0f64;
                    loop {
                        let chunk = next.fetch_add(TRIAL_CHUNK, Ordering::Relaxed);
                        if chunk >= cfg.trials {
                            break;
                        }
                        for i in chunk..(chunk + TRIAL_CHUNK).min(cfg.trials) {
                            if observing {
                                cache.recorder_mut().set_interval(i);
                            }
                            let o = run_interval_in(
                                &mut cache,
                                &mut injector,
                                cfg,
                                cfg.seed.wrapping_add(i),
                            );
                            local.absorb(&o);
                            if observing {
                                // Harvest before the reset clears the ring.
                                events.extend(cache.drain_events());
                            }
                            let t = Instant::now();
                            cache.reset_to_golden_zero();
                            let dt = t.elapsed().as_secs_f64();
                            reset_cost += dt;
                            if observing {
                                cache.recorder_mut().phases.add(Phase::Reset, dt);
                            }
                        }
                    }
                    let stats = *cache.stats();
                    let recorder = cache.set_recorder(Recorder::disabled());
                    let telemetry = CampaignTelemetry {
                        events,
                        hists: recorder.hists,
                        phases: recorder.phases,
                    };
                    (
                        local,
                        stats.lines_scrubbed,
                        stats.crc_checks,
                        reset_cost,
                        telemetry,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut total = CampaignSummary::default();
    let mut report = ThroughputReport::default();
    let mut telemetry = CampaignTelemetry::default();
    for (local, lines_scrubbed, crc_checks, reset_cost, worker_telemetry) in results {
        total.merge(&local);
        report.lines_scrubbed += lines_scrubbed;
        report.crc_checks += crc_checks;
        report.reset_cost += reset_cost;
        telemetry.merge(worker_telemetry);
    }
    telemetry.finish();
    report.trials_per_sec = if elapsed > 0.0 {
        total.trials as f64 / elapsed
    } else {
        f64::INFINITY
    };
    (total, report, telemetry)
}

/// Runs `cfg.trials` independent intervals with per-worker reused arenas
/// and reports campaign throughput alongside the summary (no telemetry).
pub fn run_interval_campaign_timed(cfg: &McConfig) -> (CampaignSummary, ThroughputReport) {
    let (summary, report, _) = run_interval_campaign_observed(cfg, Observe::Off);
    (summary, report)
}

/// Runs `cfg.trials` independent intervals, sharded across threads.
pub fn run_interval_campaign(cfg: &McConfig) -> CampaignSummary {
    run_interval_campaign_timed(cfg).0
}

/// Outcome of a lifetime run: consecutive intervals simulated until the
/// first DUE or the cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeOutcome {
    /// Intervals survived before the failure (== `cap` if none occurred).
    pub intervals_survived: u64,
    /// Whether a DUE terminated the run.
    pub failed: bool,
}

/// Simulates consecutive scrub intervals in a caller-owned arena until the
/// first DUE or `max_intervals`. Successful scrubs restore the pristine
/// state, so the time-to-first-failure is geometric in the per-interval
/// DUE probability. The cache must start golden-zero and is left dirty
/// after a failed run — the caller resets it.
pub fn run_lifetime_in(
    cache: &mut SudokuCache<SparseStore>,
    injector: &mut FaultInjector,
    cfg: &McConfig,
    max_intervals: u64,
    seed: u64,
) -> LifetimeOutcome {
    injector.reseed(seed);
    for interval in 0..max_intervals {
        let plan = injector.cache_plan(cfg.lines);
        let mut hints = Vec::with_capacity(plan.len());
        for lf in &plan {
            for pos in choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64) {
                cache.inject_fault(lf.line, pos as usize);
            }
            hints.push(lf.line);
        }
        let report = cache.scrub_lines(&hints);
        if !report.fully_repaired() {
            return LifetimeOutcome {
                intervals_survived: interval,
                failed: true,
            };
        }
    }
    LifetimeOutcome {
        intervals_survived: max_intervals,
        failed: false,
    }
}

/// Simulates one lifetime; deterministic in `(cfg, max_intervals, seed)`.
pub fn run_lifetime(cfg: &McConfig, max_intervals: u64, seed: u64) -> LifetimeOutcome {
    let mut cache =
        SudokuCache::new_sparse(cfg.sudoku_config()).expect("valid Monte-Carlo configuration");
    let mut injector = FaultInjector::new(cfg.ber, seed);
    run_lifetime_in(&mut cache, &mut injector, cfg, max_intervals, seed)
}

/// Runs `runs` independent lifetimes in one reused arena and reports the
/// censored-mean MTTF with throughput accounting (`trials_per_sec` counts
/// simulated intervals, since runs vary in length).
pub fn run_lifetime_campaign_timed(
    cfg: &McConfig,
    runs: u64,
    max_intervals: u64,
    seed: u64,
) -> ((f64, u64), ThroughputReport) {
    let mut cache =
        SudokuCache::new_sparse(cfg.sudoku_config()).expect("valid Monte-Carlo configuration");
    let mut injector = FaultInjector::new(cfg.ber, seed);
    let start = Instant::now();
    let mut reset_cost = 0.0f64;
    let mut total_intervals = 0u64;
    let mut failures = 0u64;
    for r in 0..runs {
        let o = run_lifetime_in(
            &mut cache,
            &mut injector,
            cfg,
            max_intervals,
            seed.wrapping_add(r.wrapping_mul(0x9E37)),
        );
        // The failing interval itself counts toward the lifetime (a run
        // that dies immediately lived one interval, not zero).
        total_intervals += o.intervals_survived + o.failed as u64;
        failures += o.failed as u64;
        let t = Instant::now();
        cache.reset_to_golden_zero();
        reset_cost += t.elapsed().as_secs_f64();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mttf_s = if failures == 0 {
        f64::INFINITY
    } else {
        total_intervals as f64 / failures as f64 * cfg.scrub.interval_s()
    };
    let stats = *cache.stats();
    let report = ThroughputReport {
        trials_per_sec: if elapsed > 0.0 {
            total_intervals as f64 / elapsed
        } else {
            f64::INFINITY
        },
        lines_scrubbed: stats.lines_scrubbed,
        crc_checks: stats.crc_checks,
        reset_cost,
    };
    ((mttf_s, failures), report)
}

/// Runs `runs` independent lifetimes and reports the censored-mean MTTF.
pub fn run_lifetime_campaign(
    cfg: &McConfig,
    runs: u64,
    max_intervals: u64,
    seed: u64,
) -> (f64, u64) {
    run_lifetime_campaign_timed(cfg, runs, max_intervals, seed).0
}

/// A conditional scenario: `fault_counts[i]` faults are injected into the
/// i-th of several distinct lines of one Hash-1 RAID-Group, at uniformly
/// random distinct bit positions per line.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupScenario {
    /// SuDoku variant under test.
    pub scheme: Scheme,
    /// RAID-Group size in lines.
    pub group: u32,
    /// Faults per affected line (length = number of faulty lines).
    pub fault_counts: Vec<u32>,
    /// Enable the pair-flip SDR extension (off = the paper's design).
    pub pair_sdr: bool,
}

impl GroupScenario {
    /// The canonical SuDoku-Y stress case: two lines, two faults each
    /// (paper Figure 3).
    pub fn two_by_two(scheme: Scheme, group: u32) -> Self {
        GroupScenario {
            scheme,
            group,
            fault_counts: vec![2, 2],
            pair_sdr: false,
        }
    }

    fn lines_needed(&self) -> u64 {
        // group² lines give Hash-2 its disjointness guarantee.
        self.group as u64 * self.group as u64
    }

    fn sudoku_config(&self) -> SudokuConfig {
        SudokuConfig {
            geometry: CacheGeometry::with_lines(self.lines_needed()),
            scheme: self.scheme,
            group_lines: self.group,
            max_sdr_mismatches: 6,
            sdr_pair_trials: self.pair_sdr,
            defer_hash2: false,
            scrub: ScrubSchedule::paper_default(),
        }
    }
}

/// Result of a conditional group campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupCampaignSummary {
    /// Trials run.
    pub trials: u64,
    /// Trials in which every injected line was restored to golden.
    pub repaired: u64,
    /// Trials ending with ≥1 DUE line.
    pub due: u64,
    /// Trials ending with ≥1 silently corrupted line.
    pub sdc: u64,
}

impl GroupCampaignSummary {
    /// Fraction of trials fully repaired.
    pub fn success_rate(&self) -> f64 {
        self.repaired as f64 / self.trials as f64
    }

    /// 95 % Wilson interval on the success rate.
    pub fn success_ci(&self) -> (f64, f64) {
        wilson_ci(self.repaired, self.trials, 1.96)
    }

    /// Fraction of trials with a DUE.
    pub fn failure_rate(&self) -> f64 {
        self.due as f64 / self.trials as f64
    }

    fn absorb(&mut self, o: &IntervalOutcome) {
        self.trials += 1;
        if o.due_lines == 0 && o.sdc_lines == 0 {
            self.repaired += 1;
        }
        self.due += (o.due_lines > 0) as u64;
        self.sdc += (o.sdc_lines > 0) as u64;
    }
}

/// Runs one conditional group trial in a caller-owned arena. The cache
/// must start golden-zero and is left dirty; the trial RNG is derived from
/// `trial_seed` alone, so the result matches [`run_group_trial`] exactly.
pub fn run_group_trial_in(
    cache: &mut SudokuCache<SparseStore>,
    scenario: &GroupScenario,
    trial_seed: u64,
) -> IntervalOutcome {
    let observing = cache.recorder().enabled();
    let inject_start = observing.then(Instant::now);
    let mut rng = StdRng::seed_from_u64(trial_seed);
    // Pick a random Hash-1 group and distinct victim offsets within it.
    let n_groups = scenario.lines_needed() / scenario.group as u64;
    let group = rng.gen_range(0..n_groups);
    let offsets = choose_distinct(
        &mut rng,
        scenario.group as u64,
        scenario.fault_counts.len() as u64,
    );
    let mut hints = Vec::new();
    let mut faulty_bits = 0u32;
    for (&off, &count) in offsets.iter().zip(scenario.fault_counts.iter()) {
        let line = group * scenario.group as u64 + off;
        for pos in choose_distinct(&mut rng, TOTAL_BITS as u64, count as u64) {
            cache.inject_fault(line, pos as usize);
        }
        faulty_bits += count;
        hints.push(line);
    }
    if observing {
        let plan: Vec<LineFaults> = hints
            .iter()
            .zip(scenario.fault_counts.iter())
            .map(|(&line, &faults)| LineFaults { line, faults })
            .collect();
        observe_plan(&plan, cache.recorder_mut());
        if let Some(start) = inject_start {
            cache
                .recorder_mut()
                .phases
                .add(Phase::Inject, start.elapsed().as_secs_f64());
        }
    }
    let scrub_start = observing.then(Instant::now);
    let report = cache.scrub_lines(&hints);
    if let Some(start) = scrub_start {
        cache
            .recorder_mut()
            .phases
            .add(Phase::Scrub, start.elapsed().as_secs_f64());
    }
    IntervalOutcome {
        faulty_lines: scenario.fault_counts.len() as u32,
        faulty_bits,
        multibit_lines: report.multibit_lines as u32,
        raid4_repairs: report.raid4_repairs as u32,
        sdr_repairs: report.sdr_repairs as u32,
        hash2_repairs: report.hash2_repairs as u32,
        due_lines: report.unresolved.len() as u32,
        sdc_lines: count_sdc(cache, &report),
    }
}

/// Runs one conditional group trial. Returns the outcome of the interval.
pub fn run_group_trial(scenario: &GroupScenario, trial_seed: u64) -> IntervalOutcome {
    let mut cache =
        SudokuCache::new_sparse(scenario.sudoku_config()).expect("valid scenario configuration");
    run_group_trial_in(&mut cache, scenario, trial_seed)
}

/// Runs a conditional campaign over `trials` seeds with per-worker reused
/// arenas, collecting telemetry at the requested depth. As with interval
/// campaigns, the summary is bit-identical across `observe` settings.
pub fn run_group_campaign_observed(
    scenario: &GroupScenario,
    trials: u64,
    seed: u64,
    threads: usize,
    observe: Observe,
) -> (GroupCampaignSummary, ThroughputReport, CampaignTelemetry) {
    let threads = worker_threads(threads).min(trials.max(1) as usize);
    let next = AtomicU64::new(0);
    let start = Instant::now();
    type WorkerResult = (GroupCampaignSummary, u64, u64, f64, CampaignTelemetry);
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let scenario = scenario.clone();
                scope.spawn(move || {
                    let mut cache = SudokuCache::new_sparse(scenario.sudoku_config())
                        .expect("valid scenario configuration");
                    let _ = cache.set_recorder(observe.recorder());
                    let observing = observe.enabled();
                    let mut local = GroupCampaignSummary::default();
                    let mut events: Vec<RecoveryEvent> = Vec::new();
                    let mut reset_cost = 0.0f64;
                    loop {
                        let chunk = next.fetch_add(TRIAL_CHUNK, Ordering::Relaxed);
                        if chunk >= trials {
                            break;
                        }
                        for i in chunk..(chunk + TRIAL_CHUNK).min(trials) {
                            if observing {
                                cache.recorder_mut().set_interval(i);
                            }
                            let o = run_group_trial_in(&mut cache, &scenario, seed.wrapping_add(i));
                            local.absorb(&o);
                            if observing {
                                events.extend(cache.drain_events());
                            }
                            let t = Instant::now();
                            cache.reset_to_golden_zero();
                            let dt = t.elapsed().as_secs_f64();
                            reset_cost += dt;
                            if observing {
                                cache.recorder_mut().phases.add(Phase::Reset, dt);
                            }
                        }
                    }
                    let stats = *cache.stats();
                    let recorder = cache.set_recorder(Recorder::disabled());
                    let telemetry = CampaignTelemetry {
                        events,
                        hists: recorder.hists,
                        phases: recorder.phases,
                    };
                    (
                        local,
                        stats.lines_scrubbed,
                        stats.crc_checks,
                        reset_cost,
                        telemetry,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut total = GroupCampaignSummary::default();
    let mut report = ThroughputReport::default();
    let mut telemetry = CampaignTelemetry::default();
    for (local, lines_scrubbed, crc_checks, reset_cost, worker_telemetry) in results {
        total.trials += local.trials;
        total.repaired += local.repaired;
        total.due += local.due;
        total.sdc += local.sdc;
        report.lines_scrubbed += lines_scrubbed;
        report.crc_checks += crc_checks;
        report.reset_cost += reset_cost;
        telemetry.merge(worker_telemetry);
    }
    telemetry.finish();
    report.trials_per_sec = if elapsed > 0.0 {
        total.trials as f64 / elapsed
    } else {
        f64::INFINITY
    };
    (total, report, telemetry)
}

/// Runs a conditional campaign over `trials` seeds with per-worker reused
/// arenas, reporting throughput alongside the summary (no telemetry).
pub fn run_group_campaign_timed(
    scenario: &GroupScenario,
    trials: u64,
    seed: u64,
    threads: usize,
) -> (GroupCampaignSummary, ThroughputReport) {
    let (summary, report, _) =
        run_group_campaign_observed(scenario, trials, seed, threads, Observe::Off);
    (summary, report)
}

/// Runs a conditional campaign over `trials` seeds.
pub fn run_group_campaign(
    scenario: &GroupScenario,
    trials: u64,
    seed: u64,
    threads: usize,
) -> GroupCampaignSummary {
    run_group_campaign_timed(scenario, trials, seed, threads).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down cache keeps unit-test campaigns fast; statistical
    /// behaviour per group is unchanged.
    fn small_cfg(scheme: Scheme, trials: u64) -> McConfig {
        McConfig {
            scheme,
            lines: 1 << 12, // 4096 lines
            group: 64,
            ber: 2e-4, // elevated so events actually occur
            trials,
            seed: 7,
            threads: 2,
            scrub: ScrubSchedule::paper_default(),
        }
    }

    #[test]
    fn interval_trial_is_deterministic() {
        let cfg = small_cfg(Scheme::Y, 1);
        assert_eq!(run_interval(&cfg, 123), run_interval(&cfg, 123));
    }

    #[test]
    fn reused_arena_trials_match_fresh_construction() {
        let cfg = small_cfg(Scheme::Y, 1);
        let mut cache = SudokuCache::new_sparse(cfg.sudoku_config()).unwrap();
        let mut injector = FaultInjector::new(cfg.ber, 0);
        for trial_seed in [5u64, 123, 7777] {
            let reused = run_interval_in(&mut cache, &mut injector, &cfg, trial_seed);
            cache.reset_to_golden_zero();
            assert_eq!(reused, run_interval(&cfg, trial_seed), "seed {trial_seed}");
        }
    }

    #[test]
    fn campaign_matches_accumulated_fresh_trials() {
        // The arena-reusing campaign must equal summing independent
        // fresh-cache trials over the same seeds, bit for bit.
        let cfg = small_cfg(Scheme::Y, 24);
        let (campaign, report) = run_interval_campaign_timed(&cfg);
        let mut expected = CampaignSummary::default();
        for i in 0..cfg.trials {
            expected.absorb(&run_interval(&cfg, cfg.seed.wrapping_add(i)));
        }
        assert_eq!(campaign, expected);
        assert!(report.trials_per_sec > 0.0);
        assert!(report.lines_scrubbed > 0, "{report:?}");
        assert!(report.crc_checks > 0, "{report:?}");
    }

    #[test]
    fn group_campaign_matches_accumulated_fresh_trials() {
        let scenario = GroupScenario::two_by_two(Scheme::Y, 64);
        let (campaign, report) = run_group_campaign_timed(&scenario, 20, 11, 2);
        let mut expected = GroupCampaignSummary::default();
        for i in 0..20u64 {
            expected.absorb(&run_group_trial(&scenario, 11u64.wrapping_add(i)));
        }
        assert_eq!(campaign, expected);
        assert!(report.lines_scrubbed > 0, "{report:?}");
    }

    #[test]
    fn x_campaign_sees_due_events_y_fixes_most() {
        let x = run_interval_campaign(&small_cfg(Scheme::X, 300));
        let y = run_interval_campaign(&small_cfg(Scheme::Y, 300));
        assert_eq!(x.trials, 300);
        // At BER 2e-4, 4096×553 bits → ~450 faults/interval, multi-bit
        // collisions are common: X must fail noticeably more often than Y.
        assert!(
            x.due_intervals > y.due_intervals,
            "x = {}, y = {}",
            x.due_intervals,
            y.due_intervals
        );
        assert!(y.sdr_repairs > 0, "SDR must fire: {y:?}");
    }

    #[test]
    fn z_campaign_stronger_than_y() {
        let y = run_interval_campaign(&small_cfg(Scheme::Y, 200));
        let z = run_interval_campaign(&small_cfg(Scheme::Z, 200));
        assert!(
            z.due_intervals <= y.due_intervals,
            "y = {}, z = {}",
            y.due_intervals,
            z.due_intervals
        );
    }

    #[test]
    fn group_two_by_two_success_matches_paper_figure3() {
        // Paper §IV-C: SDR repairs two 2-fault lines 99.9996 % of the time
        // (failure only on full overlap, ~7.6e-6). 3000 trials cannot
        // distinguish 99.9996 from 100 but must see zero-ish failures.
        let scenario = GroupScenario::two_by_two(Scheme::Y, 64);
        let summary = run_group_campaign(&scenario, 3000, 11, 2);
        assert!(summary.success_rate() > 0.999, "{summary:?}");
        assert_eq!(summary.sdc, 0);
    }

    #[test]
    fn group_three_by_three_fails_under_y_heals_under_z() {
        let y = run_group_campaign(
            &GroupScenario {
                scheme: Scheme::Y,
                group: 64,
                fault_counts: vec![3, 3],
                pair_sdr: false,
            },
            200,
            5,
            2,
        );
        // Two 3-fault lines defeat SDR (paper §V): Y nearly always fails…
        assert!(y.failure_rate() > 0.95, "{y:?}");
        let z = run_group_campaign(
            &GroupScenario {
                scheme: Scheme::Z,
                group: 64,
                fault_counts: vec![3, 3],
                pair_sdr: false,
            },
            200,
            5,
            2,
        );
        // …while Z repairs them through Hash-2 essentially always.
        assert!(z.success_rate() > 0.99, "{z:?}");
    }

    #[test]
    fn lifetime_matches_interval_rate() {
        // At an elevated BER the X design fails within a handful of
        // intervals; the lifetime estimator must land near
        // interval / p_due measured by the independent-interval campaign.
        let cfg = small_cfg(Scheme::X, 150);
        let interval_summary = run_interval_campaign(&cfg);
        let p = interval_summary.due_rate();
        assert!(p > 0.05, "premise: X must fail often here ({p})");
        let ((mttf_s, failures), report) = run_lifetime_campaign_timed(&cfg, 30, 200, 99);
        assert!(failures >= 25, "most lifetimes should end in failure");
        assert!(report.lines_scrubbed > 0, "{report:?}");
        let expected = cfg.scrub.interval_s() / p;
        let ratio = mttf_s / expected;
        assert!(
            (0.4..2.5).contains(&ratio),
            "mttf {mttf_s} vs expected {expected}"
        );
    }

    #[test]
    fn lifetime_survives_cap_for_strong_scheme() {
        let cfg = small_cfg(Scheme::Z, 1);
        let o = run_lifetime(&cfg, 25, 3);
        assert!(!o.failed, "{o:?}");
        assert_eq!(o.intervals_survived, 25);
    }

    #[test]
    fn campaign_summary_rates() {
        let s = CampaignSummary {
            trials: 1000,
            due_intervals: 10,
            ..CampaignSummary::default()
        };
        assert_eq!(s.due_rate(), 0.01);
        let scrub = ScrubSchedule::paper_default();
        assert!((s.mttf_seconds(&scrub) - 2.0).abs() < 1e-12);
        let (lo, hi) = s.due_rate_ci();
        assert!(lo < 0.01 && 0.01 < hi);
    }
}
