//! Analytic reliability models for every scheme in the paper.
//!
//! The paper evaluates reliability analytically ("we use analytical models
//! to perform reliability evaluations", §VII-A) from the per-interval BER
//! using binomial tail probabilities. This module reproduces that chain for
//! the uniform-ECC ladder (Table II), SuDoku-X/Y/Z (§III-F, §IV-E, §V-C,
//! Figure 7) and the related-work baselines (Tables XI, XII), with every
//! failure condition matching the behaviour of the functional engines in
//! `sudoku-core` — the Monte-Carlo module cross-validates them.
//!
//! Where our carefully enumerated failure terms disagree with a number the
//! paper states without derivation, EXPERIMENTS.md records both; the
//! qualitative ordering (X ≪ Y ≪ ECC-6 ≪ Z) is preserved throughout.

use crate::math::{binom_pmf, binom_sf, ln_choose, p_any};
use serde::{Deserialize, Serialize};
use sudoku_fault::ScrubSchedule;

/// CRC-31 misdetection probability for error patterns of weight ≥ 8
/// (paper §III-F).
pub const CRC31_MISS: f64 = 1.0 / (1u64 << 31) as f64;

/// Shared parameters of an analytic evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Data bits per line (512).
    pub data_bits: u32,
    /// Metadata bits per SuDoku line (31 CRC + 10 ECC).
    pub meta_bits: u32,
    /// Number of cache lines.
    pub lines: u64,
    /// Lines per RAID-Group.
    pub group: u32,
    /// Bit error rate per scrub interval.
    pub ber: f64,
    /// Scrub schedule (converts per-interval probabilities to FIT).
    pub scrub: ScrubSchedule,
    /// Per-line ECC strength under SuDoku (1 in the paper's design; §VII-G
    /// notes SuDoku "can be enhanced even further by replacing ECC-1 with
    /// ECC-2" for very low ∆).
    pub line_ecc_t: u32,
}

impl Params {
    /// The paper's default operating point: 64 MB cache, 512-line groups,
    /// BER 5.3×10⁻⁶ per 20 ms interval.
    pub fn paper_default() -> Self {
        Params {
            data_bits: 512,
            meta_bits: 41,
            lines: 1 << 20,
            group: 512,
            ber: 5.3e-6,
            scrub: ScrubSchedule::paper_default(),
            line_ecc_t: 1,
        }
    }

    /// Same shape, stronger per-line ECC under SuDoku (§VII-G).
    pub fn with_line_ecc(mut self, t: u32) -> Self {
        assert!(t >= 1, "per-line ECC strength must be at least 1");
        self.line_ecc_t = t;
        self
    }

    /// Same shape, different BER (scrub-interval and ∆ sweeps).
    pub fn with_ber(mut self, ber: f64) -> Self {
        self.ber = ber;
        self
    }

    /// Same shape, different line count (cache-size sweep).
    pub fn with_lines(mut self, lines: u64) -> Self {
        self.lines = lines;
        self
    }

    /// Stored bits per SuDoku line (553).
    pub fn line_bits(&self) -> u64 {
        (self.data_bits + self.meta_bits) as u64
    }

    /// Number of RAID-Groups per hash dimension.
    pub fn n_groups(&self) -> u64 {
        self.lines / self.group as u64
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::paper_default()
    }
}

// ----------------------------------------------------------------------
// Uniform per-line ECC (Table II)
// ----------------------------------------------------------------------

/// Stored bits of an ECC-t line (512 data + 10·t BCH parity).
pub fn ecc_line_bits(params: &Params, t: u32) -> u64 {
    params.data_bits as u64 + 10 * t as u64
}

/// P(an ECC-t line fails in one interval) = P(≥ t+1 faults).
pub fn ecc_line_fail(params: &Params, t: u32) -> f64 {
    binom_sf(ecc_line_bits(params, t), t as u64 + 1, params.ber)
}

/// P(the cache fails in one interval) under uniform ECC-t.
pub fn ecc_cache_fail(params: &Params, t: u32) -> f64 {
    p_any(params.lines, ecc_line_fail(params, t))
}

/// FIT rate of the cache under uniform ECC-t.
pub fn ecc_fit(params: &Params, t: u32) -> f64 {
    params.scrub.fit_rate_linear(ecc_cache_fail(params, t))
}

// ----------------------------------------------------------------------
// SuDoku-X / Y / Z
// ----------------------------------------------------------------------

/// P(a SuDoku line has exactly `k` faulty stored bits in one interval).
pub fn line_pmf(params: &Params, k: u64) -> f64 {
    binom_pmf(params.line_bits(), k, params.ber)
}

/// P(a SuDoku line has ≥ `k` faulty stored bits).
pub fn line_sf(params: &Params, k: u64) -> f64 {
    binom_sf(params.line_bits(), k, params.ber)
}

/// P(a line is faulty beyond its per-line ECC-t — "multi-bit" in the
/// paper's ECC-1 terminology).
pub fn p_multibit(params: &Params) -> f64 {
    line_sf(params, params.line_ecc_t as u64 + 1)
}

/// SuDoku-X: P(a group has ≥ 2 multi-bit lines) — RAID-4 alone cannot fix.
pub fn x_group_fail(params: &Params) -> f64 {
    binom_sf(params.group as u64, 2, p_multibit(params))
}

/// SuDoku-X per-interval cache DUE probability.
pub fn x_cache_fail(params: &Params) -> f64 {
    p_any(params.n_groups(), x_group_fail(params))
}

/// SuDoku-X DUE FIT rate.
pub fn x_fit(params: &Params) -> f64 {
    params.scrub.fit_rate_linear(x_cache_fail(params))
}

/// SuDoku-X MTTF in seconds (paper §III-F: ≈ 3.71 s).
pub fn x_mttf_seconds(params: &Params) -> f64 {
    params.scrub.interval_s() / x_cache_fail(params)
}

/// SDC FIT shared by X, Y, and Z (paper Table III): a line with 7 faults
/// that ECC-1 miscorrects to 8, or with ≥ 8 faults outright, slips past
/// CRC-31 with probability 2⁻³¹.
pub fn sdc_fit(params: &Params) -> f64 {
    let p_event_line = line_pmf(params, 7) + line_sf(params, 8);
    let p_cache = p_any(params.lines, p_event_line * CRC31_MISS);
    params.scrub.fit_rate_linear(p_cache)
}

/// The additive failure terms of a SuDoku-Y RAID-Group (per interval).
///
/// SDR fails when the parity mismatch cannot disambiguate the faults
/// (paper §IV-B/C): fully-overlapping double faults, a double fault
/// contained in a heavier line, two 3+-fault lines, or more than six
/// mismatch positions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct YBreakdown {
    /// Two 2-fault lines with both positions identical (Figure 3c).
    pub overlap22: f64,
    /// A 2-fault line whose two positions are both masked by a k≥3-fault
    /// partner (Figure 4's failing case).
    pub contained2k: f64,
    /// Two lines with ≥ 3 faults each — one flip never suffices (§V).
    pub pair33: f64,
    /// Three multi-bit lines, at least one with ≥ 3 faults: > 6 mismatch
    /// positions, SDR aborts (§IV-C cap).
    pub abort223: f64,
    /// Four or more multi-bit lines: ≥ 8 mismatch positions, SDR aborts.
    pub abort4: f64,
}

impl YBreakdown {
    /// Total per-group failure probability.
    pub fn total(&self) -> f64 {
        self.overlap22 + self.contained2k + self.pair33 + self.abort223 + self.abort4
    }
}

/// SuDoku-Y per-group failure terms, generalized to per-line ECC-t.
///
/// With ECC-t, a line with exactly r = t+1 faults is *resurrectable*: one
/// revealed fault position flipped leaves t faults, within ECC-t's reach.
/// Lines with ≥ t+2 faults are *strong* casualties that only RAID-4 (as
/// the group's last casualty) can recover. The terms below mirror the
/// t = 1 analysis of paper §IV-B/C.
pub fn y_group_breakdown(params: &Params) -> YBreakdown {
    let n = params.line_bits();
    let g = params.group as u64;
    let t = params.line_ecc_t as u64;
    let r = t + 1; // resurrectable fault count
    let s = t + 2; // strong casualty threshold
    let pm = p_multibit(params);
    let pmf_r = line_pmf(params, r);
    let sf_s = line_sf(params, s);
    let pairs = ln_choose(g, 2).exp();
    let triples = ln_choose(g, 3).exp();
    let quads = ln_choose(g, 4).exp();
    // P(all r faults of a resurrectable line coincide with r of the k
    // faults of a partner) = C(k,r)/C(n,r).
    let c_nr = ln_choose(n, r).exp();
    let overlap22 = pairs * pmf_r * pmf_r / c_nr;
    let contained2k: f64 = (s..=s + 6)
        .map(|k| {
            let ckr = ln_choose(k, r).exp();
            2.0 * pmf_r * line_pmf(params, k) * ckr / c_nr
        })
        .sum::<f64>()
        * pairs;
    let pair33 = pairs * sf_s * sf_s;
    // Three casualties whose mismatch count exceeds the six-position SDR
    // cap (paper §IV-C): two resurrectables plus a strong line always do
    // (3t+4 > 6 for t ≥ 1); three resurrectables do once 3(t+1) > 6.
    let mut abort223 = triples * 3.0 * pmf_r * pmf_r * sf_s;
    if 3 * r > 6 {
        abort223 += triples * pmf_r.powi(3);
    }
    let abort4 = quads * pm.powi(4);
    YBreakdown {
        overlap22,
        contained2k,
        pair33,
        abort223,
        abort4,
    }
}

/// SuDoku-Y per-interval cache DUE probability.
pub fn y_cache_fail(params: &Params) -> f64 {
    p_any(
        params.n_groups(),
        y_group_breakdown(params).total().min(1.0),
    )
}

/// SuDoku-Y DUE FIT rate.
pub fn y_fit(params: &Params) -> f64 {
    params.scrub.fit_rate_linear(y_cache_fail(params))
}

/// SuDoku-Y MTTF in hours.
pub fn y_mttf_hours(params: &Params) -> f64 {
    params.scrub.interval_s() / y_cache_fail(params) / 3600.0
}

/// SuDoku-Z per-interval cache DUE probability.
///
/// A line defeats SuDoku-Z only if it is part of a fatal pattern under
/// *both* hashes, and at least two such lines must exist (one lone survivor
/// is always recovered by RAID-4 once its peers are repaired in the other
/// dimension, §V-B). We take the leading term: a multi-bit line needs an
/// independently drawn fatal partner in each dimension.
pub fn z_cache_fail(params: &Params) -> f64 {
    let g = params.group as u64;
    let pm = p_multibit(params);
    let breakdown = y_group_breakdown(params);
    // Average pair-fatality given two multi-bit lines in a group.
    let pair_terms = breakdown.overlap22 + breakdown.contained2k + breakdown.pair33;
    let pairs = ln_choose(g, 2).exp();
    let pair_fatality = if pm > 0.0 {
        (pair_terms / (pairs * pm * pm)).min(1.0)
    } else {
        0.0
    };
    // P(a given multi-bit line finds a fatal partner in one dimension).
    let p_partner = ((g - 1) as f64 * pm * pair_fatality).min(1.0);
    // Fatal in both dimensions (the line's own multi-bit event is shared).
    let p_both = pm * p_partner * p_partner;
    // ≥ 2 doubly-fatal lines (Poisson tail on the expected count).
    let lambda = params.lines as f64 * p_both;
    if lambda < 1e-8 {
        (lambda * lambda / 2.0).min(1.0)
    } else {
        (1.0 - (-lambda).exp() * (1.0 + lambda)).min(1.0)
    }
}

/// SuDoku-Z DUE FIT rate (our leading-order model).
pub fn z_fit(params: &Params) -> f64 {
    params.scrub.fit_rate_linear(z_cache_fail(params))
}

/// SuDoku-Z FIT computed the way the paper's §V-C sketches it: SuDoku-Z is
/// invoked when SuDoku-Y fails somewhere (probability `n_groups · q` per
/// interval, q = per-group Y failure), and itself fails only if the
/// casualty is also fatal under Hash-2 (≈ another factor q):
/// `P(Z fails) ≈ n_groups · q²`. Linear in cache size, matching Table IX,
/// and ~10⁻⁴ FIT at the paper's operating point.
pub fn z_fit_paper_style(params: &Params) -> f64 {
    let q = y_group_breakdown(params).total().min(1.0);
    let p_cache = p_any(params.n_groups(), (q * q).min(1.0));
    params.scrub.fit_rate_linear(p_cache)
}

/// Total FIT (DUE + SDC) for each scheme — the quantity of Figure 7.
pub fn total_fit(params: &Params, scheme: sudoku_core::Scheme) -> f64 {
    let due = match scheme {
        sudoku_core::Scheme::X => x_fit(params),
        sudoku_core::Scheme::Y => y_fit(params),
        sudoku_core::Scheme::Z => z_fit_paper_style(params),
    };
    due + sdc_fit(params)
}

/// Probability the cache has failed by time `t_seconds` given a
/// per-interval failure probability (the Figure 7 curves).
pub fn failure_probability_by(params: &Params, p_interval: f64, t_seconds: f64) -> f64 {
    let intervals = t_seconds / params.scrub.interval_s();
    p_any(intervals.round().max(0.0) as u64, p_interval)
}

// ----------------------------------------------------------------------
// Related-work baselines (Tables XI, XII) and the SRAM study (Table IV)
// ----------------------------------------------------------------------

/// CPPC + CRC-31 (Table XI): one global parity line; fails whenever two or
/// more lines anywhere carry multi-bit faults.
pub fn cppc_fit(params: &Params) -> f64 {
    let p = binom_sf(params.lines, 2, p_multibit(params));
    params.scrub.fit_rate_linear(p)
}

/// RAID-6 + CRC-31 (Table XI): per group, two parities repair up to two
/// multi-bit (CRC-flagged) erasures; three defeat it. No SDR.
pub fn raid6_fit(params: &Params) -> f64 {
    let p_group = binom_sf(params.group as u64, 3, p_multibit(params));
    params
        .scrub
        .fit_rate_linear(p_any(params.n_groups(), p_group))
}

/// 2DP with ECC-1 + CRC-31 (Table XI). The vertical parity of 2DP is
/// exactly a RAID-4 parity line and exploiting its column mismatches is
/// exactly SDR, so the model coincides with SuDoku-Y on a single hash.
pub fn twodp_fit(params: &Params) -> f64 {
    y_fit(params)
}

/// Hi-ECC (Table XII): ECC-6 over 1-KB regions; a region fails at ≥ 7
/// faults among its 8192+84 stored bits.
pub fn hiecc_fit(params: &Params) -> f64 {
    let region_bits = 8192u64 + 84;
    let lines_per_region = (8192 / params.data_bits) as u64;
    let regions = params.lines / lines_per_region;
    let p_region = binom_sf(region_bits, 7, params.ber);
    params.scrub.fit_rate_linear(p_any(regions, p_region))
}

/// Table IV: probability of cache failure for a uniform ECC-t SRAM cache at
/// a given (high) BER — a one-shot probability, not a rate.
pub fn sram_ecc_cache_failure(params: &Params, t: u32) -> f64 {
    ecc_cache_fail(params, t)
}

/// Table IV's SuDoku row evaluated with our transient-fault Z model at the
/// SRAM V_min BER. (The paper's 3.8×10⁻¹⁰ entry is not derivable from its
/// stated transient model; EXPERIMENTS.md discusses the gap.)
pub fn sram_sudoku_cache_failure(params: &Params) -> f64 {
    z_cache_fail(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::paper_default()
    }

    #[test]
    fn table2_ecc_line_failures_match_paper_orders() {
        // Paper Table II row "probability of line-failure in 20 ms".
        let expect = [
            (1u32, 3.9e-6),
            (2, 3.8e-9),
            (3, 2.9e-12),
            (4, 1.9e-15),
            (5, 1.0e-18),
            (6, 4.9e-22),
        ];
        for (t, paper) in expect {
            let ours = ecc_line_fail(&p(), t);
            let ratio = ours / paper;
            assert!(
                (0.2..5.0).contains(&ratio),
                "ECC-{t}: ours {ours:.3e} vs paper {paper:.3e}"
            );
        }
    }

    #[test]
    fn table2_ecc6_fit_is_sub_one() {
        // Paper: ECC-6 reaches 0.092 FIT — the only uniform code under the
        // 1-FIT target.
        let fit6 = ecc_fit(&p(), 6);
        assert!((0.01..1.0).contains(&fit6), "{fit6}");
        let fit5 = ecc_fit(&p(), 5);
        assert!((10.0..2000.0).contains(&fit5), "{fit5}");
    }

    #[test]
    fn x_mttf_is_a_few_seconds() {
        // Paper §III-F: 3.71 s.
        let mttf = x_mttf_seconds(&p());
        assert!((1.0..30.0).contains(&mttf), "{mttf} s");
    }

    #[test]
    fn y_is_orders_stronger_than_x() {
        let params = p();
        let ratio = x_cache_fail(&params) / y_cache_fail(&params);
        // Paper: 3387×; our faithful terms land within a couple of orders.
        assert!(ratio > 100.0, "ratio = {ratio}");
    }

    #[test]
    fn y_mttf_is_hours_scale() {
        let mttf = y_mttf_hours(&p());
        assert!((0.5..5000.0).contains(&mttf), "{mttf} h");
    }

    #[test]
    fn z_beats_ecc6_by_far() {
        // The headline claim: SuDoku-Z ≫ ECC-6 (874× in the paper).
        let params = p();
        let z = z_fit_paper_style(&params);
        let e6 = ecc_fit(&params, 6);
        assert!(z < e6 / 100.0, "z = {z}, ecc6 = {e6}");
        assert!(
            z_fit(&params) <= z * 1.001,
            "leading-order model is stronger"
        );
    }

    #[test]
    fn scheme_ladder_is_monotone() {
        let params = p();
        assert!(x_fit(&params) > y_fit(&params));
        assert!(y_fit(&params) > z_fit_paper_style(&params));
        assert!(z_fit_paper_style(&params) >= z_fit(&params));
    }

    #[test]
    fn sdc_is_negligible_vs_due() {
        // Paper: SDC ~ 8.9e-9 FIT, far below every DUE rate.
        let params = p();
        let sdc = sdc_fit(&params);
        assert!(sdc < 1e-6, "{sdc}");
        assert!(sdc < x_fit(&params));
    }

    #[test]
    fn table11_ordering_cppc_worst_sudoku_best() {
        let params = p();
        let cppc = cppc_fit(&params);
        let raid6 = raid6_fit(&params);
        let twodp = twodp_fit(&params);
        let z = z_fit_paper_style(&params);
        // Paper Table XI: CPPC 1.69e14 ≫ 2DP 2.8e8 ≈ RAID-6 5.7e5 ≫ SuDoku.
        assert!(cppc > 1e13, "{cppc}");
        assert!(raid6 < cppc && twodp < cppc);
        assert!(z * 1e6 < raid6.min(twodp), "SuDoku ≥1e6× stronger (paper)");
    }

    #[test]
    fn table12_hiecc_misses_target() {
        let params = p();
        let hi = hiecc_fit(&params);
        let z = z_fit_paper_style(&params);
        assert!(hi > 1.0, "Hi-ECC must miss the 1-FIT target: {hi}");
        assert!(z < hi);
    }

    #[test]
    fn table8_scrub_scaling() {
        // BER scales ~linearly with interval; Z must stay under 1 FIT even
        // at 40 ms while ECC-5 misses even at 10 ms (paper Table VIII).
        let base = p();
        let p10 = Params {
            ber: 2.7e-6,
            scrub: ScrubSchedule::new(10e-3),
            ..base
        };
        let p40 = Params {
            ber: 1.09e-5,
            scrub: ScrubSchedule::new(40e-3),
            ..base
        };
        assert!(ecc_fit(&p10, 5) > 1.0);
        assert!(z_fit_paper_style(&p40) < 1.0);
        assert!(z_fit_paper_style(&p10) < z_fit_paper_style(&p40));
    }

    #[test]
    fn table9_cache_size_scaling_is_linear() {
        // Doubling the lines doubles the FIT (paper Table IX).
        let base = p();
        let half = base.with_lines(1 << 19);
        let double = base.with_lines(1 << 21);
        let f1 = z_fit_paper_style(&half);
        let f2 = z_fit_paper_style(&base);
        let f4 = z_fit_paper_style(&double);
        assert!((f2 / f1 - 2.0).abs() < 0.2, "{}", f2 / f1);
        assert!((f4 / f2 - 2.0).abs() < 0.2, "{}", f4 / f2);
    }

    #[test]
    fn table4_sram_ecc_failures_match_paper() {
        // Table IV at BER 1e-3: ECC-7 ≈ 0.11, ECC-8 ≈ 0.0066, ECC-9 ≈ 3.5e-4.
        let params = p().with_ber(1e-3);
        let e7 = sram_ecc_cache_failure(&params, 7);
        let e8 = sram_ecc_cache_failure(&params, 8);
        let e9 = sram_ecc_cache_failure(&params, 9);
        assert!((0.05..0.3).contains(&e7), "{e7}");
        assert!((0.002..0.02).contains(&e8), "{e8}");
        assert!((1e-4..1.2e-3).contains(&e9), "{e9}");
    }

    #[test]
    fn figure7_curves_are_monotone_in_time() {
        let params = p();
        let pi = x_cache_fail(&params);
        let mut last = 0.0;
        for t in [0.02, 0.2, 2.0, 20.0, 200.0] {
            let f = failure_probability_by(&params, pi, t);
            assert!(f >= last, "t = {t}");
            last = f;
        }
        assert!(last > 0.9, "X should be nearly dead after 200 s: {last}");
    }

    #[test]
    fn breakdown_total_is_sum_of_terms() {
        let b = y_group_breakdown(&p());
        let total = b.total();
        assert!(total > 0.0);
        assert!(b.overlap22 > 0.0 && b.pair33 > 0.0);
        let sum = b.overlap22 + b.contained2k + b.pair33 + b.abort223 + b.abort4;
        assert_eq!(total, sum);
    }
}
