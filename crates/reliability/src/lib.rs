//! # sudoku-reliability
//!
//! Reliability evaluation for the SuDoku STTRAM reproduction (DSN 2019):
//!
//! * [`analytic`] — binomial-tail FIT/MTTF models for the uniform-ECC
//!   ladder (Table II), SuDoku-X/Y/Z (Figure 7) and the related-work
//!   baselines (Tables XI/XII), all computed in log space;
//! * [`montecarlo`] — fault-injection campaigns that drive the *actual*
//!   `sudoku-core` correction engines, cross-validating the analytic models
//!   and reproducing the SDR case statistics of paper §IV;
//! * [`math`] — the underlying log-gamma/binomial machinery.
//!
//! # Example: Table II in four lines
//!
//! ```
//! use sudoku_reliability::analytic::{ecc_fit, Params};
//!
//! let params = Params::paper_default();
//! let fit6 = ecc_fit(&params, 6);
//! assert!(fit6 < 1.0, "ECC-6 meets the 1-FIT target: {fit6}");
//! assert!(ecc_fit(&params, 5) > 1.0, "ECC-5 does not");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytic;
pub mod ecc2;
pub mod math;
pub mod montecarlo;
