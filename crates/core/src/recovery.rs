//! The group-repair engine, factored out of [`SudokuCache`] so that every
//! consumer drives *identical* correction logic.
//!
//! The engine implements the per-group half of the recovery ladder (paper
//! §III-C–§V): build a corrected view of the group members (fixing
//! ECC-1-correctable singles on the way), then RAID-4 when exactly one
//! casualty remains, with Sequential Data Resurrection bridging the
//! multi-casualty gap. What varies between consumers is *where the members
//! live*:
//!
//! * [`SudokuCache`] repairs groups of its own store (the single-threaded
//!   paper machine);
//! * a sharded service repairs Hash-1 groups inside one shard and Hash-2
//!   groups through a cross-shard coordinator that gathers members from
//!   their owning shards.
//!
//! Both paths go through [`RepairEngine::repair_group`] over a
//! [`GroupView`], so stats accounting, event emission, and the repair
//! decisions themselves cannot diverge — the property the sharded
//! determinism tests rely on.
//!
//! [`SudokuCache`]: crate::SudokuCache

use crate::config::SudokuConfig;
use crate::hashing::HashDim;
use crate::stats::{CacheStats, ScrubReport, STT_READ_NS, STT_WRITE_NS, SYNDROME_CHECK_NS};
use sudoku_codes::{LineCodec, ProtectedLine, ReadCheck, RepairKind};
use sudoku_obs::{Dim, Mechanism, Outcome, Recorder, RecoveryEvent};

/// Telemetry dimension tag for a hash dimension.
#[inline]
pub fn obs_dim(dim: HashDim) -> Dim {
    match dim {
        HashDim::H1 => Dim::H1,
        HashDim::H2 => Dim::H2,
    }
}

/// Builds and emits one recovery event. Callers gate on
/// `recorder.enabled()` so the disabled path never constructs the event.
#[inline]
pub fn emit_event(
    recorder: &mut Recorder,
    line: u64,
    group: Option<(HashDim, u64)>,
    mechanism: Mechanism,
    outcome: Outcome,
    trials: u32,
) {
    recorder.emit(RecoveryEvent {
        interval: 0, // stamped by the recorder
        trace: 0,    // stamped by the recorder
        line,
        group: group.map(|(_, g)| g),
        hash_dim: group.map(|(d, _)| obs_dim(d)),
        mechanism,
        outcome,
        trials,
    });
}

/// Counts one per-line repair (ECC-1 payload fix or ECC-field regeneration)
/// into the stats and, when telemetry is on, the event log and latency
/// histogram — the §VII-B accounting of one line read, a syndrome check,
/// and one write-back.
pub fn record_repair(stats: &mut CacheStats, recorder: &mut Recorder, line: u64, kind: RepairKind) {
    let mechanism = match kind {
        RepairKind::PayloadBit(_) => {
            stats.ecc1_repairs += 1;
            Mechanism::Ecc1
        }
        RepairKind::EccField => {
            stats.meta_repairs += 1;
            Mechanism::EccField
        }
    };
    if recorder.enabled() {
        emit_event(recorder, line, None, mechanism, Outcome::Repaired, 0);
        recorder
            .hists
            .line_recovery_ns
            .record((STT_READ_NS + SYNDROME_CHECK_NS + STT_WRITE_NS) as u64);
    }
}

/// State of one group member as presented to the repair engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// The member was reconstructed earlier in this recovery; the
    /// reconstructed value takes precedence over the (possibly
    /// re-corrupted) stored copy.
    Recovered(ProtectedLine),
    /// The member is unmaterialized in a sparse store — the zero codeword,
    /// valid by construction.
    Zero,
    /// The raw (possibly faulty) stored copy.
    Stored(ProtectedLine),
}

/// One RAID-Group's members as seen by [`RepairEngine::repair_group`]:
/// where they live, how to read them, and how to write repairs back.
///
/// Implementations exist over a cache's own store (shard-local groups) and
/// over members gathered from peer shards (cross-shard Hash-2 groups).
pub trait GroupView {
    /// Number of members in the group.
    fn len(&self) -> usize;

    /// Whether the group has no members (never true for a real group).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global line id of member `i`.
    fn line_id(&self, i: usize) -> u64;

    /// Pre-repair state of member `i`.
    fn state(&self, i: usize) -> MemberState;

    /// Write-back of a pass-1 single-bit repair: the store only.
    fn commit_repair(&mut self, i: usize, line: ProtectedLine);

    /// Write-back of a group reconstruction (RAID-4 or SDR): the store
    /// *and* the recovered-value map consulted by [`GroupView::state`].
    fn commit_reconstruction(&mut self, i: usize, line: ProtectedLine);

    /// The group's parity line under the dimension being repaired.
    fn parity(&self) -> ProtectedLine;
}

/// Reusable buffers for [`RepairEngine::repair_group`]: one group scan
/// needs the corrected view and the faulty-index list, and recovery visits
/// many groups per scrub — reusing the allocations keeps the per-group
/// cost at the actual line reads.
#[derive(Debug, Default)]
pub struct GroupScratch {
    view: Vec<ProtectedLine>,
    faulty: Vec<usize>,
}

/// The scheme knobs the repair ladder consults (paper §IV–§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairParams {
    /// Whether Sequential Data Resurrection is enabled (schemes Y and Z).
    pub sdr_enabled: bool,
    /// SDR gives up beyond this many parity-mismatch positions.
    pub max_sdr_mismatches: u32,
    /// The pair-flip SDR extension (off in the paper's design).
    pub sdr_pair_trials: bool,
}

impl RepairParams {
    /// Extracts the repair knobs from a cache configuration.
    pub fn from_config(config: &SudokuConfig) -> Self {
        RepairParams {
            sdr_enabled: config.scheme.sdr_enabled(),
            max_sdr_mismatches: config.max_sdr_mismatches,
            sdr_pair_trials: config.sdr_pair_trials,
        }
    }
}

/// The group-repair ladder bound to one consumer's accounting: stats
/// counters, telemetry recorder, and scheme parameters.
///
/// Short-lived by design — borrow the stats/recorder, repair one or more
/// groups, drop.
pub struct RepairEngine<'a> {
    /// The shared line codec.
    pub codec: &'static LineCodec,
    /// Scheme knobs.
    pub params: RepairParams,
    /// Counter set receiving the accounting for this repair work.
    pub stats: &'a mut CacheStats,
    /// Telemetry recorder receiving events and histograms.
    pub recorder: &'a mut Recorder,
}

impl RepairEngine<'_> {
    #[inline]
    fn emit(
        &mut self,
        line: u64,
        group: Option<(HashDim, u64)>,
        mechanism: Mechanism,
        outcome: Outcome,
        trials: u32,
    ) {
        emit_event(self.recorder, line, group, mechanism, outcome, trials);
    }

    /// Repairs one RAID-Group: read every member into a corrected buffer
    /// (fixing singles, paper §III-C.2), then RAID-4 or SDR over the
    /// buffer. With `fast`, members whose raw copy is the all-zero line
    /// skip the CRC check (the zero codeword is valid by linearity).
    pub fn repair_group<V: GroupView>(
        &mut self,
        dim: HashDim,
        group: u64,
        src: &mut V,
        scratch: &mut GroupScratch,
        report: &mut ScrubReport,
        fast: bool,
    ) {
        self.stats.group_scans += 1;
        scratch.view.clear();
        scratch.faulty.clear();
        let n = src.len();
        // Pass 1: the corrected view. Previously reconstructed values take
        // precedence over the (possibly re-corrupted) stored copies.
        for i in 0..n {
            match src.state(i) {
                MemberState::Recovered(r) => scratch.view.push(r),
                MemberState::Zero => scratch.view.push(ProtectedLine::zero()),
                MemberState::Stored(raw) => {
                    if fast && raw.is_zero() {
                        // The all-zero codeword is valid by linearity.
                        scratch.view.push(raw);
                        continue;
                    }
                    self.stats.crc_checks += 1;
                    match self.codec.scrub_check(&raw) {
                        ReadCheck::Clean => scratch.view.push(raw),
                        ReadCheck::Corrected { repaired, kind } => {
                            record_repair(self.stats, self.recorder, src.line_id(i), kind);
                            src.commit_repair(i, repaired);
                            scratch.view.push(repaired);
                        }
                        ReadCheck::MultiBit => {
                            scratch.view.push(raw);
                            scratch.faulty.push(i);
                        }
                    }
                }
            }
        }
        if self.recorder.enabled() {
            self.recorder.hists.group_scan_lines.record(n as u64);
        }
        if !scratch.faulty.is_empty() {
            // Plain RAID-4 reconstructs exactly one erased member; two or
            // more casualties block it and escalate to SDR.
            if scratch.faulty.len() >= 2 && self.recorder.enabled() {
                for &fi in scratch.faulty.iter() {
                    let line = src.line_id(fi);
                    let trials = scratch.faulty.len() as u32;
                    self.emit(
                        line,
                        Some((dim, group)),
                        Mechanism::Raid4,
                        Outcome::Blocked,
                        trials,
                    );
                }
            }
            // Pass 2: Sequential Data Resurrection while >= 2 lines are
            // faulty.
            if scratch.faulty.len() >= 2 && self.params.sdr_enabled {
                self.run_sdr(dim, group, src, scratch, report);
            }
            // Pass 3: a single remaining casualty falls to plain RAID-4.
            if scratch.faulty.len() == 1 {
                let vi = scratch.faulty[0];
                if self.try_raid4(dim, group, vi, src, &scratch.view) {
                    report.raid4_repairs += 1;
                    if dim == HashDim::H2 {
                        report.hash2_repairs += 1;
                        self.stats.hash2_repairs += 1;
                    }
                }
            }
        }
    }

    /// RAID-4 reconstruction of the member at view index `vi` from the
    /// group parity and the corrected view of the remaining members; the
    /// candidate must re-validate (CRC + ECC).
    fn try_raid4<V: GroupView>(
        &mut self,
        dim: HashDim,
        group: u64,
        vi: usize,
        src: &mut V,
        view: &[ProtectedLine],
    ) -> bool {
        let mut candidate = src.parity();
        for (i, line) in view.iter().enumerate() {
            if i != vi {
                candidate.xor_assign(line);
            }
        }
        self.stats.crc_checks += 1;
        let line = src.line_id(vi);
        if self.codec.validate(&candidate) {
            src.commit_reconstruction(vi, candidate);
            self.stats.raid4_repairs += 1;
            if self.recorder.enabled() {
                self.emit(
                    line,
                    Some((dim, group)),
                    Mechanism::Raid4,
                    Outcome::Repaired,
                    0,
                );
                // §VII-B: read every group member, write the victim back.
                self.recorder
                    .hists
                    .line_recovery_ns
                    .record((view.len() as f64 * STT_READ_NS + STT_WRITE_NS) as u64);
            }
            true
        } else {
            if self.recorder.enabled() {
                self.emit(
                    line,
                    Some((dim, group)),
                    Mechanism::Raid4,
                    Outcome::Failed,
                    0,
                );
            }
            false
        }
    }

    /// Validates an SDR candidate: the flip must leave at most a single
    /// ECC-1-correctable fault and pass the CRC re-check.
    fn sdr_accept(&self, candidate: &ProtectedLine) -> Option<ProtectedLine> {
        match self.codec.scrub_check(candidate) {
            ReadCheck::Clean => Some(*candidate),
            ReadCheck::Corrected { repaired, .. } => Some(repaired),
            ReadCheck::MultiBit => None,
        }
    }

    /// SDR (paper §IV): compute the parity-mismatch positions over the
    /// corrected view, then for each faulty line sequentially flip a
    /// mismatched bit, apply ECC-1, and accept if the CRC validates.
    /// Repairing one line shrinks the mismatch set and may unlock the
    /// others; a final survivor goes to RAID-4 in the caller.
    fn run_sdr<V: GroupView>(
        &mut self,
        dim: HashDim,
        group: u64,
        src: &mut V,
        scratch: &mut GroupScratch,
        report: &mut ScrubReport,
    ) {
        loop {
            if scratch.faulty.len() < 2 {
                return;
            }
            let mut computed = ProtectedLine::zero();
            for line in scratch.view.iter() {
                computed.xor_assign(line);
            }
            let parity = src.parity();
            let mismatches = computed.diff_positions(&parity);
            if mismatches.is_empty() || mismatches.len() > self.params.max_sdr_mismatches as usize {
                // Fully overlapping faults (no mismatch) or too many
                // candidates (paper §IV-C caps SDR at six positions).
                if self.recorder.enabled() {
                    for &fi in scratch.faulty.iter() {
                        let line = src.line_id(fi);
                        self.emit(line, Some((dim, group)), Mechanism::Sdr, Outcome::Failed, 0);
                    }
                }
                return;
            }
            let round_start_trials = self.stats.sdr_trials;
            let mut fixed_victim: Option<(usize, ProtectedLine)> = None;
            'victims: for &vi in scratch.faulty.iter() {
                let stored = scratch.view[vi];
                for &pos in &mismatches {
                    self.stats.sdr_trials += 1;
                    self.stats.crc_checks += 1;
                    let mut candidate = stored;
                    candidate.flip_bit(pos);
                    if let Some(fixed) = self.sdr_accept(&candidate) {
                        fixed_victim = Some((vi, fixed));
                        break 'victims; // recompute mismatches
                    }
                }
                if self.params.sdr_pair_trials {
                    // Extension: a line with t+2 faults needs *two* known
                    // positions flipped before ECC-t can finish the job.
                    for a in 0..mismatches.len() {
                        for b in a + 1..mismatches.len() {
                            self.stats.sdr_trials += 1;
                            self.stats.crc_checks += 1;
                            let mut candidate = stored;
                            candidate.flip_bit(mismatches[a]);
                            candidate.flip_bit(mismatches[b]);
                            if let Some(fixed) = self.sdr_accept(&candidate) {
                                fixed_victim = Some((vi, fixed));
                                break 'victims;
                            }
                        }
                    }
                }
            }
            let Some((vi, fixed)) = fixed_victim else {
                if self.recorder.enabled() {
                    // A failed round spends the same trial count on every
                    // victim, so the per-line share is exact.
                    let per_line =
                        (self.stats.sdr_trials - round_start_trials) / scratch.faulty.len() as u64;
                    for &fi in scratch.faulty.iter() {
                        let line = src.line_id(fi);
                        self.emit(
                            line,
                            Some((dim, group)),
                            Mechanism::Sdr,
                            Outcome::Failed,
                            per_line as u32,
                        );
                    }
                }
                return;
            };
            src.commit_reconstruction(vi, fixed);
            scratch.view[vi] = fixed;
            scratch.faulty.retain(|&f| f != vi);
            self.stats.sdr_repairs += 1;
            if self.recorder.enabled() {
                let round_trials = self.stats.sdr_trials - round_start_trials;
                let line = src.line_id(vi);
                self.emit(
                    line,
                    Some((dim, group)),
                    Mechanism::Sdr,
                    Outcome::Repaired,
                    round_trials as u32,
                );
                self.recorder
                    .hists
                    .sdr_trials_per_resurrection
                    .record(round_trials);
                // §VII-B: the group scan, the flip-and-check trials (a few
                // cycles each), the victim's write-back.
                let ns = scratch.view.len() as f64 * STT_READ_NS
                    + round_trials as f64 * 4.0 * SYNDROME_CHECK_NS
                    + STT_WRITE_NS;
                self.recorder.hists.line_recovery_ns.record(ns as u64);
            }
            report.sdr_repairs += 1;
            if dim == HashDim::H2 {
                report.hash2_repairs += 1;
                self.stats.hash2_repairs += 1;
            }
        }
    }
}
