//! SuDoku over memories with *persistent* faults (paper §VI): SRAM below
//! V_min, near-threshold arrays, or STTRAM cells with permanent defects.
//!
//! A [`VminCache`] wraps a [`SudokuCache`] together with a
//! [`StuckBitMap`]: after every write — including the write-backs
//! performed by repairs — the stuck cells reassert their values. Reads and
//! scrubs therefore keep re-repairing the same lines, which is exactly the
//! §VI claim: the machinery built for transient faults handles permanent
//! ones with no boot-time testing and no fault map in the controller.
//! (The [`StuckBitMap`] lives in the *test harness* role of physics, not
//! in the controller.)

use crate::cache::{SudokuCache, UncorrectableError};
use crate::config::{ConfigError, SudokuConfig};
use crate::stats::ScrubReport;
use crate::store::{DenseStore, LineStore};
use sudoku_codes::LineData;
use sudoku_fault::StuckBitMap;

/// Reasserts the stuck cells of `line` onto `cache`'s stored copy — the
/// physics step that follows every write or repair write-back to a line
/// with permanent faults. Returns how many stored bits actually flipped.
///
/// Shared by [`VminCache`] and by sharded/service wrappers so the stuck-at
/// behaviour cannot diverge between the single-threaded reference and the
/// degraded-mode service path.
pub fn reassert_stuck<S: LineStore>(
    cache: &mut SudokuCache<S>,
    stuck: &StuckBitMap,
    line: u64,
) -> usize {
    let mut stored = cache.stored_line(line);
    let before = stored;
    let changed = stuck.apply(line, &mut stored);
    if changed > 0 {
        for bit in stored.diff_positions(&before) {
            cache.inject_fault(line, bit);
        }
    }
    changed
}

/// A SuDoku cache whose underlying array has stuck-at cells.
pub struct VminCache<S = DenseStore> {
    inner: SudokuCache<S>,
    stuck: StuckBitMap,
}

impl VminCache<DenseStore> {
    /// A fully materialized V_min cache.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from the SuDoku configuration.
    pub fn new(config: SudokuConfig, stuck: StuckBitMap) -> Result<Self, ConfigError> {
        let mut cache = VminCache {
            inner: SudokuCache::new(config)?,
            stuck,
        };
        cache.reassert_all();
        Ok(cache)
    }
}

impl<S: LineStore> VminCache<S> {
    /// Wraps an existing cache and fault map.
    pub fn from_parts(inner: SudokuCache<S>, stuck: StuckBitMap) -> Self {
        let mut cache = VminCache { inner, stuck };
        cache.reassert_all();
        cache
    }

    /// The wrapped SuDoku cache.
    pub fn inner(&self) -> &SudokuCache<S> {
        &self.inner
    }

    /// The permanent-fault map (physics, not controller state).
    pub fn stuck_map(&self) -> &StuckBitMap {
        &self.stuck
    }

    fn reassert(&mut self, idx: u64) {
        reassert_stuck(&mut self.inner, &self.stuck, idx);
    }

    fn reassert_all(&mut self) {
        let lines: Vec<u64> = self.stuck.iter().map(|(l, _)| l).collect();
        for l in lines {
            self.reassert(l);
        }
    }

    /// Writes `data`; the stuck cells immediately corrupt the stored copy.
    pub fn write(&mut self, idx: u64, data: &LineData) {
        self.inner.write(idx, data);
        self.reassert(idx);
    }

    /// Reads line `idx`, repairing around the stuck cells on demand.
    ///
    /// The repaired value is written back and promptly re-corrupted by the
    /// stuck cells — the data stays *readable* as long as the fault
    /// pattern is within SuDoku's reach, which is the §VI operating model.
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] if the persistent pattern exceeds the scheme.
    pub fn read(&mut self, idx: u64) -> Result<LineData, UncorrectableError> {
        let result = self.inner.read(idx);
        self.reassert(idx);
        result
    }

    /// Scrubs the whole cache; lines whose *only* damage is stuck cells
    /// come back as repair events every time (the §VI trade: repeated
    /// cheap corrections instead of testing + remapping).
    pub fn scrub(&mut self) -> ScrubReport {
        let report = self.inner.scrub();
        self.reassert_all();
        report
    }

    /// Whether every line is currently recoverable (scrub leaves no
    /// unresolved lines) — the "cache failure" predicate of Table IV.
    pub fn is_recoverable(&mut self) -> bool {
        self.scrub().fully_repaired()
    }
}

impl<S: LineStore> std::fmt::Debug for VminCache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VminCache")
            .field("inner", &self.inner)
            .field("stuck_bits", &self.stuck.total_stuck_bits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn payload(i: u64) -> LineData {
        let mut d = LineData::zero();
        d.set_bit((i as usize * 19) % 512, true);
        d
    }

    #[test]
    fn single_stuck_bit_per_line_is_always_readable() {
        let mut stuck = StuckBitMap::new();
        for line in 0..16u64 {
            stuck.insert(line, (line as u16 * 31) % 553, true);
        }
        let mut cache =
            VminCache::new(SudokuConfig::small(Scheme::X, 64, 16), stuck).expect("valid config");
        for i in 0..64 {
            cache.write(i, &payload(i));
        }
        for round in 0..3 {
            for i in 0..64 {
                assert_eq!(
                    cache.read(i).expect("readable"),
                    payload(i),
                    "round {round}, line {i}"
                );
            }
        }
        // Reads on stuck data/CRC bits keep repairing (stuck ECC-field bits
        // are invisible to the read path, and a cell stuck at the value the
        // payload already holds never faults at all) — but across three
        // rounds of 16 stuck lines the counter must clearly grow.
        assert!(
            cache.inner().stats().ecc1_repairs >= 10,
            "repairs = {}",
            cache.inner().stats().ecc1_repairs
        );
    }

    #[test]
    fn multibit_stuck_line_recovered_via_group() {
        let mut stuck = StuckBitMap::new();
        for bit in [10u16, 20, 30] {
            stuck.insert(5, bit, true);
        }
        let mut cache =
            VminCache::new(SudokuConfig::small(Scheme::Y, 64, 16), stuck).expect("valid config");
        for i in 0..64 {
            cache.write(i, &payload(i));
        }
        assert_eq!(cache.read(5).expect("repairable"), payload(5));
    }

    #[test]
    fn scrub_reports_repairs_every_pass_for_persistent_faults() {
        let mut stuck = StuckBitMap::new();
        stuck.insert(2, 100, true);
        let mut cache =
            VminCache::new(SudokuConfig::small(Scheme::X, 64, 16), stuck).expect("valid config");
        for i in 0..64 {
            cache.write(i, &payload(i));
        }
        for _ in 0..3 {
            let report = cache.scrub();
            assert!(report.fully_repaired());
            assert_eq!(report.ecc1_repairs, 1, "the stuck bit re-breaks each pass");
        }
    }

    #[test]
    fn dense_random_stuck_pattern_mostly_recoverable_under_z() {
        let mut rng = StdRng::seed_from_u64(3);
        let stuck = StuckBitMap::random(&mut rng, 256, 1e-4);
        let mut cache =
            VminCache::new(SudokuConfig::small(Scheme::Z, 256, 16), stuck).expect("valid config");
        for i in 0..256 {
            cache.write(i, &payload(i));
        }
        assert!(cache.is_recoverable());
        for i in 0..256 {
            assert_eq!(cache.read(i).expect("readable"), payload(i));
        }
    }

    #[test]
    fn overwhelming_stuck_pattern_is_a_detected_failure_not_silent() {
        // Two lines of one group each get 4 identical stuck positions:
        // beyond Y and beyond Hash-2? No — Hash-2 separates them. Use the
        // X scheme to see the honest DUE.
        let mut stuck = StuckBitMap::new();
        for bit in [10u16, 20, 30, 40] {
            stuck.insert(0, bit, true);
            stuck.insert(1, bit, true);
        }
        let mut cache =
            VminCache::new(SudokuConfig::small(Scheme::X, 64, 16), stuck).expect("valid config");
        for i in 0..64 {
            cache.write(i, &payload(i));
        }
        assert!(!cache.is_recoverable(), "X must declare DUE, not corrupt");
        assert!(cache.read(0).is_err());
    }
}
