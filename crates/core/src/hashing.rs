//! Skewed RAID-Group hashing (paper §V-A).
//!
//! SuDoku-Z maps every line into **two** RAID-Groups using two hashes chosen
//! so that lines sharing a group under Hash-1 are *guaranteed* to land in
//! different groups under Hash-2. With a group of 2^b lines:
//!
//! * Hash-1 masks out the b least-significant line-address bits — a group is
//!   2^b consecutive lines;
//! * Hash-2 masks out the *next* b bits (`addr[2b-1 : b]`) — a group is the
//!   2^b lines that agree on everything except those bits.
//!
//! Two distinct lines in one Hash-1 group differ only in `addr[b-1:0]`; a
//! shared Hash-2 group would additionally force those bits equal, i.e. the
//! same line. Hence the disjointness guarantee the recovery algorithm of
//! §V-B relies on.

use crate::config::{ConfigError, SudokuConfig};
use serde::{Deserialize, Serialize};

/// Which hash dimension a group id belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashDim {
    /// Hash-1: consecutive-line groups (present in X, Y, Z).
    H1,
    /// Hash-2: skewed groups (SuDoku-Z only).
    H2,
}

/// The pair of group-hash functions for a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewedHashes {
    n_lines: u64,
    group_bits: u32,
}

impl SkewedHashes {
    /// Builds the hash pair for `n_lines` lines in groups of `group_lines`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadGroupSize`] if the group is not a power of two ≥ 2;
    /// [`ConfigError::LinesNotMultipleOfGroup`] if lines don't tile groups.
    /// (The caller enforces the stricter `group²` divisibility when Hash-2
    /// will actually be used; see [`SudokuConfig::validate`].)
    pub fn new(n_lines: u64, group_lines: u32) -> Result<Self, ConfigError> {
        if group_lines < 2 || !group_lines.is_power_of_two() {
            return Err(ConfigError::BadGroupSize(group_lines));
        }
        if n_lines == 0 || !n_lines.is_multiple_of(group_lines as u64) {
            return Err(ConfigError::LinesNotMultipleOfGroup {
                lines: n_lines,
                group: group_lines,
            });
        }
        Ok(SkewedHashes {
            n_lines,
            group_bits: group_lines.trailing_zeros(),
        })
    }

    /// Builds the hash pair from a validated config.
    pub fn from_config(config: &SudokuConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Self::new(config.geometry.lines(), config.group_lines)
    }

    /// Lines per group.
    pub fn group_lines(&self) -> u64 {
        1 << self.group_bits
    }

    /// Number of groups in each hash dimension.
    pub fn n_groups(&self) -> u64 {
        self.n_lines >> self.group_bits
    }

    /// Total number of lines.
    pub fn n_lines(&self) -> u64 {
        self.n_lines
    }

    /// Whether Hash-2 has its disjointness guarantee (`n_lines` is a
    /// multiple of `group²`).
    pub fn hash2_guaranteed(&self) -> bool {
        self.n_lines.is_multiple_of(1u64 << (2 * self.group_bits))
    }

    /// Group id of `line` under the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[inline]
    pub fn group_of(&self, dim: HashDim, line: u64) -> u64 {
        assert!(line < self.n_lines, "line {line} out of range");
        let b = self.group_bits;
        match dim {
            HashDim::H1 => line >> b,
            HashDim::H2 => {
                let low = line & ((1 << b) - 1);
                let high = line >> (2 * b);
                (high << b) | low
            }
        }
    }

    /// The member lines of a group, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `group >= self.n_groups()`.
    pub fn members(&self, dim: HashDim, group: u64) -> impl Iterator<Item = u64> + '_ {
        assert!(group < self.n_groups(), "group {group} out of range");
        let b = self.group_bits;
        (0..self.group_lines()).map(move |i| match dim {
            HashDim::H1 => (group << b) | i,
            HashDim::H2 => {
                let low = group & ((1 << b) - 1);
                let high = group >> b;
                (high << (2 * b)) | (i << b) | low
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_example_16_lines_groups_of_4() {
        // Paper Figure 5: 16 lines A..P, group of 4. Under Hash-1 the four
        // consecutive lines form a group; under Hash-2 every fourth line.
        let h = SkewedHashes::new(16, 4).unwrap();
        assert_eq!(h.n_groups(), 4);
        assert_eq!(
            h.members(HashDim::H1, 0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // B (=1), F (=5), J (=9), N (=13) share a Hash-2 group.
        assert_eq!(
            h.members(HashDim::H2, h.group_of(HashDim::H2, 1))
                .collect::<Vec<_>>(),
            vec![1, 5, 9, 13]
        );
        // D (=3), H, L, P likewise.
        assert_eq!(
            h.members(HashDim::H2, h.group_of(HashDim::H2, 3))
                .collect::<Vec<_>>(),
            vec![3, 7, 11, 15]
        );
    }

    #[test]
    fn disjointness_guarantee_exhaustive_small() {
        let h = SkewedHashes::new(256, 16).unwrap();
        assert!(h.hash2_guaranteed());
        for a in 0..256u64 {
            for b in (a + 1)..256 {
                let same1 = h.group_of(HashDim::H1, a) == h.group_of(HashDim::H1, b);
                let same2 = h.group_of(HashDim::H2, a) == h.group_of(HashDim::H2, b);
                assert!(
                    !(same1 && same2),
                    "lines {a},{b} share groups under both hashes"
                );
            }
        }
    }

    #[test]
    fn members_are_inverse_of_group_of() {
        let h = SkewedHashes::new(1 << 12, 64).unwrap();
        for dim in [HashDim::H1, HashDim::H2] {
            for group in [0u64, 1, 17, h.n_groups() - 1] {
                for line in h.members(dim, group) {
                    assert_eq!(h.group_of(dim, line), group, "{dim:?} group {group}");
                }
            }
        }
    }

    #[test]
    fn every_line_in_exactly_one_group_per_dim() {
        let h = SkewedHashes::new(1024, 32).unwrap();
        for dim in [HashDim::H1, HashDim::H2] {
            let mut seen = vec![false; 1024];
            for g in 0..h.n_groups() {
                for line in h.members(dim, g) {
                    assert!(!seen[line as usize], "{dim:?} line {line} seen twice");
                    seen[line as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn paper_scale_group_of_uses_bits_8_0_and_17_9() {
        // §V-A: Hash-1 masks addr[8:0], Hash-2 masks addr[17:9].
        let h = SkewedHashes::new(1 << 20, 512).unwrap();
        let line = 0b10_110011001_010101010u64; // 20-bit address
        assert_eq!(h.group_of(HashDim::H1, line), line >> 9);
        let expect_h2 = ((line >> 18) << 9) | (line & 0x1FF);
        assert_eq!(h.group_of(HashDim::H2, line), expect_h2);
    }

    #[test]
    fn hash2_guarantee_requires_group_square() {
        let h = SkewedHashes::new(32, 8).unwrap(); // 32 < 64 = 8²
        assert!(!h.hash2_guaranteed());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SkewedHashes::new(16, 3).is_err());
        assert!(SkewedHashes::new(15, 4).is_err());
        assert!(SkewedHashes::new(0, 4).is_err());
    }
}
