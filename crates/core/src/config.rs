//! Configuration of a SuDoku-protected cache.

use serde::{Deserialize, Serialize};
use std::fmt;
use sudoku_codes::{CRC_BITS, DATA_BITS, ECC_BITS, TOTAL_BITS};
use sudoku_fault::ScrubSchedule;

/// Which SuDoku variant is active (paper §III–§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// SuDoku-X: ECC-1 + CRC-31 per line, RAID-4 parity per group.
    X,
    /// SuDoku-Y: X plus Sequential Data Resurrection.
    Y,
    /// SuDoku-Z: Y plus a second, skewed hash with its own parity table.
    Z,
}

impl Scheme {
    /// Whether Sequential Data Resurrection is enabled.
    pub fn sdr_enabled(&self) -> bool {
        !matches!(self, Scheme::X)
    }

    /// Whether the second (skewed) hash dimension is enabled.
    pub fn second_hash_enabled(&self) -> bool {
        matches!(self, Scheme::Z)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::X => write!(f, "SuDoku-X"),
            Scheme::Y => write!(f, "SuDoku-Y"),
            Scheme::Z => write!(f, "SuDoku-Z"),
        }
    }
}

/// Physical shape of the protected cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total data capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (64 in the paper).
    pub line_bytes: u32,
    /// Associativity (8 in the paper; only the performance model cares).
    pub ways: u32,
}

impl CacheGeometry {
    /// The paper's 64 MB, 8-way, 64-byte-line LLC (Table VI).
    pub fn paper_default() -> Self {
        CacheGeometry {
            capacity_bytes: 64 * 1024 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A geometry with the given number of 64-byte lines (for tests and
    /// scaled experiments).
    pub fn with_lines(lines: u64) -> Self {
        CacheGeometry {
            capacity_bytes: lines * 64,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Number of cache lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes as u64
    }
}

/// Errors validating a [`SudokuConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// The RAID-Group size must be a power of two of at least 2 lines.
    BadGroupSize(u32),
    /// The line count must be a positive multiple of the group size.
    LinesNotMultipleOfGroup {
        /// Configured number of lines.
        lines: u64,
        /// Configured group size.
        group: u32,
    },
    /// SuDoku-Z's disjointness guarantee needs `lines` to be a multiple of
    /// `group²` (so the second hash can permute whole group squares).
    LinesNotMultipleOfGroupSquare {
        /// Configured number of lines.
        lines: u64,
        /// Configured group size.
        group: u32,
    },
    /// A shard plan needs at least one shard and no more shards than
    /// Hash-1 RAID-Groups (each shard must own at least one whole group).
    BadShardCount {
        /// Requested shard count.
        shards: usize,
        /// Available Hash-1 groups.
        groups: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadGroupSize(g) => {
                write!(f, "group size {g} is not a power of two >= 2")
            }
            ConfigError::LinesNotMultipleOfGroup { lines, group } => {
                write!(
                    f,
                    "{lines} lines is not a positive multiple of group {group}"
                )
            }
            ConfigError::LinesNotMultipleOfGroupSquare { lines, group } => {
                write!(
                    f,
                    "{lines} lines is not a positive multiple of group² = {}",
                    (*group as u64) * (*group as u64)
                )
            }
            ConfigError::BadShardCount { shards, groups } => {
                write!(
                    f,
                    "{shards} shards cannot partition {groups} Hash-1 groups \
                     (need 1 <= shards <= groups)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a SuDoku cache.
///
/// # Examples
///
/// ```
/// use sudoku_core::{Scheme, SudokuConfig};
///
/// let cfg = SudokuConfig::paper_default(Scheme::Z);
/// assert_eq!(cfg.geometry.lines(), 1 << 20);
/// assert_eq!(cfg.n_groups(), 2048);
/// // §VII-H: 43 bits of overhead per line for SuDoku-Z vs 60 for ECC-6.
/// assert_eq!(cfg.storage_overhead_bits_per_line().round() as u32, 43);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SudokuConfig {
    /// Cache shape.
    pub geometry: CacheGeometry,
    /// Active SuDoku variant.
    pub scheme: Scheme,
    /// Lines per RAID-Group (512 in the paper, §III-D).
    pub group_lines: u32,
    /// SDR gives up beyond this many parity-mismatch positions
    /// (6 in the paper, §IV-C).
    pub max_sdr_mismatches: u32,
    /// Extension beyond the paper: when single-flip SDR stalls, also try
    /// flipping *pairs* of mismatch positions before giving up. Rescues
    /// lines with t+2 faults (e.g. two 3-fault lines under ECC-1) at the
    /// cost of O(mismatches²) extra trials. Off in the paper's design.
    pub sdr_pair_trials: bool,
    /// Defer Hash-2 recovery to an external coordinator: the Hash-2 PLT is
    /// still maintained on writes, but this cache's own recovery ladder
    /// stops after Hash-1 (SDR included) and reports the leftovers as
    /// unresolved. A sharded service sets this on its per-shard caches —
    /// Hash-2 groups span shards, so their recovery runs in the cross-shard
    /// coordinator instead.
    pub defer_hash2: bool,
    /// Scrub schedule.
    pub scrub: ScrubSchedule,
}

impl SudokuConfig {
    /// The paper's default configuration: 64 MB cache, 512-line groups,
    /// ≤6 SDR mismatch positions, 20 ms scrub.
    pub fn paper_default(scheme: Scheme) -> Self {
        SudokuConfig {
            geometry: CacheGeometry::paper_default(),
            scheme,
            group_lines: 512,
            max_sdr_mismatches: 6,
            sdr_pair_trials: false,
            defer_hash2: false,
            scrub: ScrubSchedule::paper_default(),
        }
    }

    /// A small configuration for tests and examples: `lines` cache lines in
    /// groups of `group_lines`.
    pub fn small(scheme: Scheme, lines: u64, group_lines: u32) -> Self {
        SudokuConfig {
            geometry: CacheGeometry::with_lines(lines),
            scheme,
            group_lines,
            max_sdr_mismatches: 6,
            sdr_pair_trials: false,
            defer_hash2: false,
            scrub: ScrubSchedule::paper_default(),
        }
    }

    /// Enables the pair-flip SDR extension (see
    /// [`SudokuConfig::sdr_pair_trials`]).
    pub fn with_pair_sdr(mut self) -> Self {
        self.sdr_pair_trials = true;
        self
    }

    /// Defers Hash-2 recovery to an external coordinator (see
    /// [`SudokuConfig::defer_hash2`]).
    pub fn with_deferred_hash2(mut self) -> Self {
        self.defer_hash2 = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let g = self.group_lines;
        if g < 2 || !g.is_power_of_two() {
            return Err(ConfigError::BadGroupSize(g));
        }
        let lines = self.geometry.lines();
        if lines == 0 || !lines.is_multiple_of(g as u64) {
            return Err(ConfigError::LinesNotMultipleOfGroup { lines, group: g });
        }
        if self.scheme.second_hash_enabled() {
            let sq = g as u64 * g as u64;
            if !lines.is_multiple_of(sq) {
                return Err(ConfigError::LinesNotMultipleOfGroupSquare { lines, group: g });
            }
        }
        Ok(())
    }

    /// Number of RAID-Groups per hash dimension.
    pub fn n_groups(&self) -> u64 {
        self.geometry.lines() / self.group_lines as u64
    }

    /// Total metadata overhead in bits per cache line: ECC-1 (10) + CRC-31
    /// (31) + the amortized parity-line storage of each enabled PLT.
    ///
    /// Matches the paper's §VII-H accounting: 43 bits/line for SuDoku-Z
    /// versus 60 bits/line for ECC-6.
    pub fn storage_overhead_bits_per_line(&self) -> f64 {
        let plts = if self.scheme.second_hash_enabled() {
            2.0
        } else {
            1.0
        };
        let parity_amortized = plts * TOTAL_BITS as f64 / self.group_lines as f64;
        (ECC_BITS + CRC_BITS) as f64 + parity_amortized
    }

    /// PLT storage in bytes (all enabled parity tables together).
    pub fn plt_storage_bytes(&self) -> u64 {
        let plts = if self.scheme.second_hash_enabled() {
            2
        } else {
            1
        };
        // One stored line (553 bits -> 70 bytes rounded) per group; the
        // paper rounds to the 64-byte data payload (128 KB per PLT).
        plts * self.n_groups() * (DATA_BITS as u64 / 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_2048_groups() {
        let cfg = SudokuConfig::paper_default(Scheme::Z);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.geometry.lines(), 1 << 20);
        assert_eq!(cfg.n_groups(), 2048);
    }

    #[test]
    fn overhead_matches_paper_section_vii_h() {
        // SuDoku-Z: 10 + 31 + 2 PLT bits ≈ 43 bits per line.
        let z = SudokuConfig::paper_default(Scheme::Z);
        assert_eq!(z.storage_overhead_bits_per_line().round() as u32, 43);
        // X/Y: one PLT, ≈ 42 bits.
        let y = SudokuConfig::paper_default(Scheme::Y);
        assert_eq!(y.storage_overhead_bits_per_line().round() as u32, 42);
        // Both comfortably below ECC-6's 60 bits per line.
        assert!(z.storage_overhead_bits_per_line() < 60.0);
    }

    #[test]
    fn plt_storage_is_256kb_for_z() {
        // Paper: two 128 KB PLTs for the 64 MB cache.
        let z = SudokuConfig::paper_default(Scheme::Z);
        assert_eq!(z.plt_storage_bytes(), 256 * 1024);
    }

    #[test]
    fn bad_group_sizes_rejected() {
        let mut cfg = SudokuConfig::small(Scheme::X, 64, 3);
        assert_eq!(cfg.validate(), Err(ConfigError::BadGroupSize(3)));
        cfg.group_lines = 1;
        assert_eq!(cfg.validate(), Err(ConfigError::BadGroupSize(1)));
    }

    #[test]
    fn non_multiple_lines_rejected() {
        let cfg = SudokuConfig::small(Scheme::X, 100, 8);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LinesNotMultipleOfGroup { .. })
        ));
    }

    #[test]
    fn z_requires_group_square_multiple() {
        // 32 lines is a multiple of group 8 but not of 64 = 8².
        let cfg = SudokuConfig::small(Scheme::Z, 32, 8);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LinesNotMultipleOfGroupSquare { .. })
        ));
        let ok = SudokuConfig::small(Scheme::Z, 128, 8);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn scheme_flags() {
        assert!(!Scheme::X.sdr_enabled());
        assert!(Scheme::Y.sdr_enabled() && !Scheme::Y.second_hash_enabled());
        assert!(Scheme::Z.sdr_enabled() && Scheme::Z.second_hash_enabled());
    }
}
