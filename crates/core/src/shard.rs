//! Partitioning a SuDoku cache into shards along Hash-1 RAID-Group
//! boundaries.
//!
//! The sharding rule is round-robin over Hash-1 groups: group `g` belongs
//! to shard `g mod N`. Two properties follow:
//!
//! * **Hash-1 recovery is shard-local.** A Hash-1 group's members are `2^b`
//!   consecutive lines all hashing to the same group, so ECC-1 / CRC /
//!   RAID-4 / SDR under Hash-1 touch exactly one shard — lock-free inside
//!   that shard's worker.
//! * **Hash-2 groups cross shards by construction.** A Hash-2 group's
//!   members span `2^b` *consecutive* Hash-1 groups (paper §V-A:
//!   Hash-2 masks `addr[2b-1:b]`), so with `N ≥ 2` shards (and `N`
//!   dividing or smaller than `2^b`) its members land on multiple shards —
//!   SuDoku-Z recovery is inherently a cross-shard protocol.

use crate::config::{ConfigError, SudokuConfig};
use crate::hashing::{HashDim, SkewedHashes};

/// An immutable, cheaply-copyable description of how lines are divided
/// among `N` shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    hashes: SkewedHashes,
    n_shards: usize,
}

impl ShardPlan {
    /// Builds a plan dividing the configured geometry among `n_shards`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadShardCount`] unless `1 <= n_shards <= n_groups`
    /// (each shard must own at least one whole Hash-1 group); plus any
    /// error from validating `config` itself.
    pub fn new(config: &SudokuConfig, n_shards: usize) -> Result<Self, ConfigError> {
        let hashes = SkewedHashes::from_config(config)?;
        if n_shards == 0 || n_shards as u64 > hashes.n_groups() {
            return Err(ConfigError::BadShardCount {
                shards: n_shards,
                groups: hashes.n_groups(),
            });
        }
        Ok(ShardPlan { hashes, n_shards })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The hash pair the plan partitions over.
    pub fn hashes(&self) -> &SkewedHashes {
        &self.hashes
    }

    /// Owning shard of a Hash-1 group.
    #[inline]
    pub fn shard_of_group(&self, h1_group: u64) -> usize {
        (h1_group % self.n_shards as u64) as usize
    }

    /// Owning shard of a line.
    #[inline]
    pub fn shard_of_line(&self, line: u64) -> usize {
        self.shard_of_group(self.hashes.group_of(HashDim::H1, line))
    }

    /// The Hash-1 groups a shard owns, ascending.
    pub fn owned_groups(&self, shard: usize) -> impl Iterator<Item = u64> + '_ {
        assert!(shard < self.n_shards, "shard {shard} out of range");
        (shard as u64..self.hashes.n_groups()).step_by(self.n_shards)
    }

    /// The lines a shard owns, ascending.
    pub fn owned_lines(&self, shard: usize) -> impl Iterator<Item = u64> + '_ {
        self.owned_groups(shard)
            .flat_map(move |g| self.hashes.members(HashDim::H1, g))
    }

    /// The `idx`-th line (ascending) of a shard's owned set — random access
    /// into [`ShardPlan::owned_lines`], so a per-shard fault injector can
    /// map a dense `0..owned_line_count` plan onto the interleaved lines.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= owned_line_count(shard)`.
    #[inline]
    pub fn owned_line_at(&self, shard: usize, idx: u64) -> u64 {
        assert!(
            idx < self.owned_line_count(shard),
            "index {idx} out of range for shard {shard}"
        );
        let gl = self.hashes.group_lines();
        let group = shard as u64 + (idx / gl) * self.n_shards as u64;
        group * gl + idx % gl
    }

    /// Number of lines a shard owns.
    pub fn owned_line_count(&self, shard: usize) -> u64 {
        assert!(shard < self.n_shards, "shard {shard} out of range");
        let groups = self.hashes.n_groups();
        let n = self.n_shards as u64;
        let owned_groups = groups / n + u64::from((shard as u64) < groups % n);
        owned_groups * self.hashes.group_lines()
    }

    /// The distinct shards holding members of a Hash-2 group, ascending.
    /// With `n_shards >= 2` this always has at least two entries — the
    /// structural reason SuDoku-Z recovery escalates to a cross-shard
    /// coordinator.
    pub fn shards_of_h2_group(&self, h2_group: u64) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .hashes
            .members(HashDim::H2, h2_group)
            .map(|line| self.shard_of_line(line))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn plan(n_shards: usize) -> ShardPlan {
        let config = SudokuConfig::small(Scheme::Z, 1024, 16);
        ShardPlan::new(&config, n_shards).unwrap()
    }

    #[test]
    fn shards_partition_all_lines() {
        for n in [1usize, 2, 4, 8] {
            let p = plan(n);
            let mut owner = vec![usize::MAX; 1024];
            for s in 0..n {
                for line in p.owned_lines(s) {
                    assert_eq!(owner[line as usize], usize::MAX, "line {line} owned twice");
                    owner[line as usize] = s;
                }
                assert_eq!(p.owned_line_count(s), p.owned_lines(s).count() as u64);
                for (idx, line) in p.owned_lines(s).enumerate() {
                    assert_eq!(p.owned_line_at(s, idx as u64), line);
                }
            }
            for (line, &s) in owner.iter().enumerate() {
                assert_eq!(s, p.shard_of_line(line as u64), "line {line}");
                assert_ne!(s, usize::MAX);
            }
        }
    }

    #[test]
    fn h1_groups_never_cross_shards() {
        let p = plan(4);
        for g in 0..p.hashes().n_groups() {
            let owners: Vec<usize> = p
                .hashes()
                .members(HashDim::H1, g)
                .map(|l| p.shard_of_line(l))
                .collect();
            assert!(owners.windows(2).all(|w| w[0] == w[1]), "group {g}");
            assert_eq!(owners[0], p.shard_of_group(g));
        }
    }

    #[test]
    fn h2_groups_cross_shards_whenever_n_at_least_2() {
        for n in [2usize, 4, 8] {
            let p = plan(n);
            for g in 0..p.hashes().n_groups() {
                let shards = p.shards_of_h2_group(g);
                assert!(
                    shards.len() >= 2,
                    "H2 group {g} stayed local with {n} shards: {shards:?}"
                );
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = plan(1);
        assert_eq!(p.owned_line_count(0), 1024);
        assert!(p.shards_of_h2_group(0) == vec![0]);
    }

    #[test]
    fn bad_shard_counts_rejected() {
        let config = SudokuConfig::small(Scheme::Z, 1024, 16);
        assert!(matches!(
            ShardPlan::new(&config, 0),
            Err(ConfigError::BadShardCount { .. })
        ));
        // 1024 lines / 16 = 64 groups; 65 shards cannot each own a group.
        assert!(matches!(
            ShardPlan::new(&config, 65),
            Err(ConfigError::BadShardCount { .. })
        ));
        assert!(ShardPlan::new(&config, 64).is_ok());
    }
}
