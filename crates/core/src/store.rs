//! Line storage backends.
//!
//! The SuDoku machinery is generic over where the stored lines live:
//!
//! * [`DenseStore`] materializes every line — the natural choice for
//!   functional tests, examples, and small caches;
//! * [`SparseStore`] materializes only lines that differ from the all-zero
//!   codeword. Because the fault process is independent of data values and
//!   every code in the stack is linear, reliability campaigns can WLOG use
//!   zero data everywhere — a full-size 64 MB cache interval then touches
//!   only the ~1700 faulty lines, keeping Monte-Carlo at paper scale cheap.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use sudoku_codes::ProtectedLine;

/// Multiplicative hash for `u64` line indices (Fibonacci hashing). Line
/// indices are small, dense, attacker-free integers — SipHash's DoS
/// resistance buys nothing here and costs ~5× per store access on the
/// Monte-Carlo hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineIndexHasher(u64);

impl Hasher for LineIndexHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only reached via derived/complex keys; fold bytes in words.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type LineMap = HashMap<u64, ProtectedLine, BuildHasherDefault<LineIndexHasher>>;

/// Abstract access to the stored (possibly faulty) lines of a cache.
///
/// Lines are `Copy` 70-byte values; `line` returns by value.
pub trait LineStore {
    /// Number of lines.
    fn n_lines(&self) -> u64;

    /// Reads the stored line at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    fn line(&self, idx: u64) -> ProtectedLine;

    /// Overwrites the stored line at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    fn set_line(&mut self, idx: u64, line: ProtectedLine);

    /// Flips one stored bit in place (fault injection — no parity update).
    fn flip_bit(&mut self, idx: u64, bit: usize) {
        let mut l = self.line(idx);
        l.flip_bit(bit);
        self.set_line(idx, l);
    }

    /// Whether the line at `idx` might differ from the all-zero codeword.
    ///
    /// Sparse stores return `false` for untouched lines, letting group
    /// scans skip work that cannot change anything (the zero codeword is
    /// valid and XOR-neutral). Dense stores conservatively return `true`.
    fn is_materialized(&self, _idx: u64) -> bool {
        true
    }
}

/// Fully materialized storage.
#[derive(Clone, Debug)]
pub struct DenseStore {
    lines: Vec<ProtectedLine>,
}

impl DenseStore {
    /// `n_lines` lines, all initialized to the (valid) zero codeword.
    pub fn new(n_lines: u64) -> Self {
        DenseStore {
            lines: vec![ProtectedLine::zero(); n_lines as usize],
        }
    }

    /// Direct slice access (tests).
    pub fn as_slice(&self) -> &[ProtectedLine] {
        &self.lines
    }
}

impl LineStore for DenseStore {
    fn n_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    fn line(&self, idx: u64) -> ProtectedLine {
        self.lines[idx as usize]
    }

    fn set_line(&mut self, idx: u64, line: ProtectedLine) {
        self.lines[idx as usize] = line;
    }
}

/// Sparse storage: unmaterialized lines read as the zero codeword.
#[derive(Clone, Debug)]
pub struct SparseStore {
    n_lines: u64,
    touched: LineMap,
}

impl SparseStore {
    /// A sparse store over `n_lines` logical lines.
    pub fn new(n_lines: u64) -> Self {
        SparseStore {
            n_lines,
            touched: LineMap::default(),
        }
    }

    /// Number of materialized (non-default) entries.
    pub fn materialized(&self) -> usize {
        self.touched.len()
    }

    /// Iterates over materialized `(index, line)` pairs in arbitrary order.
    pub fn iter_touched(&self) -> impl Iterator<Item = (u64, &ProtectedLine)> {
        self.touched.iter().map(|(k, v)| (*k, v))
    }

    /// Drops entries that have returned to the zero codeword (keeps
    /// long-running campaigns compact).
    pub fn compact(&mut self) {
        self.touched.retain(|_, l| !l.is_zero());
    }

    /// Resets every line to the zero codeword.
    pub fn clear(&mut self) {
        self.touched.clear();
    }
}

impl LineStore for SparseStore {
    fn n_lines(&self) -> u64 {
        self.n_lines
    }

    fn line(&self, idx: u64) -> ProtectedLine {
        assert!(idx < self.n_lines, "line {idx} out of range");
        self.touched.get(&idx).copied().unwrap_or_default()
    }

    fn set_line(&mut self, idx: u64, line: ProtectedLine) {
        assert!(idx < self.n_lines, "line {idx} out of range");
        if line.is_zero() {
            self.touched.remove(&idx);
        } else {
            self.touched.insert(idx, line);
        }
    }

    fn is_materialized(&self, idx: u64) -> bool {
        self.touched.contains_key(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_codes::{LineCodec, LineData};

    #[test]
    fn dense_roundtrip() {
        let mut s = DenseStore::new(8);
        let codec = LineCodec::shared();
        let mut d = LineData::zero();
        d.set_bit(1, true);
        let line = codec.encode(&d);
        s.set_line(3, line);
        assert_eq!(s.line(3), line);
        assert!(s.line(0).is_zero());
    }

    #[test]
    fn sparse_default_is_zero_codeword() {
        let s = SparseStore::new(1 << 20);
        assert!(s.line(12345).is_zero());
        assert_eq!(s.materialized(), 0);
    }

    #[test]
    fn sparse_set_and_revert() {
        let mut s = SparseStore::new(100);
        let mut l = ProtectedLine::zero();
        l.flip_bit(7);
        s.set_line(42, l);
        assert_eq!(s.materialized(), 1);
        assert_eq!(s.line(42), l);
        s.set_line(42, ProtectedLine::zero());
        assert_eq!(s.materialized(), 0);
    }

    #[test]
    fn flip_bit_default_impl_works_on_sparse() {
        let mut s = SparseStore::new(10);
        s.flip_bit(5, 100);
        assert!(s.line(5).bit(100));
        s.flip_bit(5, 100);
        assert_eq!(s.materialized(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_out_of_range_panics() {
        SparseStore::new(10).line(10);
    }
}
