//! # sudoku-core
//!
//! The SuDoku resilient cache architecture (Nair, Asgari, Qureshi — DSN
//! 2019): per-line ECC-1 + CRC-31, region-based RAID-4 parity in an SRAM
//! Parity Line Table, Sequential Data Resurrection, and skewed-hash
//! dual-group recovery — plus functional implementations of every baseline
//! the paper compares against.
//!
//! # Quick start
//!
//! ```
//! use sudoku_core::{Scheme, SudokuCache, SudokuConfig};
//! use sudoku_codes::LineData;
//!
//! // A small SuDoku-Z cache: 256 lines in RAID-Groups of 16.
//! let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16))?;
//! let mut data = LineData::zero();
//! data.set_bit(123, true);
//! cache.write(0, &data);
//!
//! // Even a 4-bit burst in one line is repaired through the parity group.
//! for bit in [7, 8, 9, 10] {
//!     cache.inject_fault(0, bit);
//! }
//! assert_eq!(cache.read(0)?, data);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
mod cache;
mod config;
mod hashing;
mod plt;
pub mod recovery;
mod shard;
mod stats;
mod store;
mod vmin;

pub use cache::{scheme_supported, SudokuCache, UncorrectableError};
pub use config::{CacheGeometry, ConfigError, Scheme, SudokuConfig};
pub use hashing::{HashDim, SkewedHashes};
pub use plt::ParityTable;
pub use recovery::{GroupScratch, GroupView, MemberState, RepairEngine, RepairParams};
pub use shard::ShardPlan;
pub use stats::{CacheStats, ScrubReport, STT_READ_NS, STT_WRITE_NS, SYNDROME_CHECK_NS};
pub use store::{DenseStore, LineStore, SparseStore};
pub use vmin::{reassert_stuck, VminCache};

// The telemetry vocabulary is defined by the dependency-free `sudoku-obs`
// crate; re-exported here so cache users need not name it directly.
pub use sudoku_obs::{
    Dim, EventSink, Mechanism, Outcome, Phase, PhaseTimes, Recorder, RecoveryEvent,
    RecoveryHistograms,
};
