//! The Parity Line Table (paper §III-A, Figure 1).
//!
//! One parity line per RAID-Group, holding the XOR of all member lines'
//! full stored codewords. The PLT lives in SRAM next to the STTRAM array,
//! so — unlike the data lines — it does not suffer retention failures; it
//! is updated on every logical write (read-modify-write of the parity,
//! §III-B) and *not* on fault flips, which is precisely why a parity
//! mismatch localizes faults.

use serde::{Deserialize, Serialize};
use sudoku_codes::ProtectedLine;

/// A table of RAID-4 parity lines, one per group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityTable {
    parities: Vec<ProtectedLine>,
    writes: u64,
    /// Groups whose parity may have left the zero state since construction
    /// or the last [`ParityTable::reset_zero`] (may contain duplicates);
    /// lets the reset undo exactly the touched entries instead of
    /// rewriting the whole table.
    dirty: Vec<u64>,
    /// Set when the dirty list outgrew the table: the tracking degrades to
    /// "everything may be dirty" rather than growing without bound.
    dirty_all: bool,
}

impl ParityTable {
    /// A table for `n_groups` groups, all parities zero (consistent with an
    /// all-zero cache, since the zero codeword is valid).
    pub fn new(n_groups: u64) -> Self {
        ParityTable {
            parities: vec![ProtectedLine::zero(); n_groups as usize],
            writes: 0,
            dirty: Vec::new(),
            dirty_all: false,
        }
    }

    /// Number of groups covered.
    pub fn n_groups(&self) -> u64 {
        self.parities.len() as u64
    }

    /// The stored parity line of `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[inline]
    pub fn parity(&self, group: u64) -> &ProtectedLine {
        &self.parities[group as usize]
    }

    /// Applies a logical write: the member line changed from `old` to
    /// `new`, so XOR the difference into the group parity (the
    /// read-modify-write of §III-B).
    pub fn apply_write(&mut self, group: u64, old: &ProtectedLine, new: &ProtectedLine) {
        let p = &mut self.parities[group as usize];
        p.xor_assign(old);
        p.xor_assign(new);
        self.writes += 1;
        self.mark_dirty(group);
    }

    /// Overwrites a group's parity (used when (re)initializing a cache).
    pub fn set_parity(&mut self, group: u64, parity: ProtectedLine) {
        self.parities[group as usize] = parity;
        self.mark_dirty(group);
    }

    /// Number of parity updates performed (PLT write traffic, §VII-I).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    fn mark_dirty(&mut self, group: u64) {
        if !self.dirty_all {
            self.dirty.push(group);
            if self.dirty.len() as u64 > self.n_groups() {
                self.dirty_all = true;
                self.dirty.clear();
            }
        }
    }

    /// Sparse undo: rezeroes every parity touched since construction (or
    /// the last reset), in O(touched groups) — the reset path campaign
    /// workers use to return a reused cache to the golden-zero state. The
    /// write-traffic counter deliberately survives (it measures cumulative
    /// PLT traffic, not current state).
    pub fn reset_zero(&mut self) {
        if self.dirty_all {
            self.parities.fill(ProtectedLine::zero());
            self.dirty_all = false;
        } else {
            for i in 0..self.dirty.len() {
                let g = self.dirty[i] as usize;
                self.parities[g] = ProtectedLine::zero();
            }
        }
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_codes::{group_parity, LineCodec, LineData};

    #[test]
    fn new_table_is_zero() {
        let t = ParityTable::new(4);
        assert_eq!(t.n_groups(), 4);
        for g in 0..4 {
            assert!(t.parity(g).is_zero());
        }
    }

    #[test]
    fn apply_write_tracks_group_parity() {
        let codec = LineCodec::shared();
        let mut t = ParityTable::new(1);
        let mut members = vec![codec.encode(&LineData::zero()); 4];
        // Write new data into members 1 and 3.
        for (i, bit) in [(1usize, 10usize), (3, 200)] {
            let mut d = LineData::zero();
            d.set_bit(bit, true);
            let new = codec.encode(&d);
            t.apply_write(0, &members[i], &new);
            members[i] = new;
        }
        assert_eq!(*t.parity(0), group_parity(members.iter()));
        assert_eq!(t.write_count(), 2);
    }

    #[test]
    fn writes_commute_and_cancel() {
        let codec = LineCodec::shared();
        let mut t = ParityTable::new(1);
        let zero = codec.encode(&LineData::zero());
        let mut d = LineData::zero();
        d.set_bit(77, true);
        let val = codec.encode(&d);
        t.apply_write(0, &zero, &val);
        t.apply_write(0, &val, &zero);
        assert!(t.parity(0).is_zero());
    }

    #[test]
    fn reset_zero_undoes_touched_groups_only() {
        let codec = LineCodec::shared();
        let mut t = ParityTable::new(8);
        let zero = codec.encode(&LineData::zero());
        let mut d = LineData::zero();
        d.set_bit(5, true);
        let val = codec.encode(&d);
        t.apply_write(2, &zero, &val);
        t.set_parity(6, val);
        assert!(!t.parity(2).is_zero() && !t.parity(6).is_zero());
        t.reset_zero();
        for g in 0..8 {
            assert!(t.parity(g).is_zero(), "group {g}");
        }
        // Write traffic accounting survives the reset.
        assert_eq!(t.write_count(), 1);
        // Heavy churn trips the dirty-all fallback and still resets.
        for _ in 0..20 {
            t.apply_write(1, &zero, &val);
            t.apply_write(1, &val, &zero);
        }
        t.apply_write(3, &zero, &val);
        t.reset_zero();
        for g in 0..8 {
            assert!(t.parity(g).is_zero(), "group {g} after churn");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_group_panics() {
        let t = ParityTable::new(2);
        t.parity(2);
    }
}
