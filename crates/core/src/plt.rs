//! The Parity Line Table (paper §III-A, Figure 1).
//!
//! One parity line per RAID-Group, holding the XOR of all member lines'
//! full stored codewords. The PLT lives in SRAM next to the STTRAM array,
//! so — unlike the data lines — it does not suffer retention failures; it
//! is updated on every logical write (read-modify-write of the parity,
//! §III-B) and *not* on fault flips, which is precisely why a parity
//! mismatch localizes faults.

use serde::{Deserialize, Serialize};
use sudoku_codes::ProtectedLine;

/// A table of RAID-4 parity lines, one per group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityTable {
    parities: Vec<ProtectedLine>,
    writes: u64,
}

impl ParityTable {
    /// A table for `n_groups` groups, all parities zero (consistent with an
    /// all-zero cache, since the zero codeword is valid).
    pub fn new(n_groups: u64) -> Self {
        ParityTable {
            parities: vec![ProtectedLine::zero(); n_groups as usize],
            writes: 0,
        }
    }

    /// Number of groups covered.
    pub fn n_groups(&self) -> u64 {
        self.parities.len() as u64
    }

    /// The stored parity line of `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[inline]
    pub fn parity(&self, group: u64) -> &ProtectedLine {
        &self.parities[group as usize]
    }

    /// Applies a logical write: the member line changed from `old` to
    /// `new`, so XOR the difference into the group parity (the
    /// read-modify-write of §III-B).
    pub fn apply_write(&mut self, group: u64, old: &ProtectedLine, new: &ProtectedLine) {
        let p = &mut self.parities[group as usize];
        p.xor_assign(old);
        p.xor_assign(new);
        self.writes += 1;
    }

    /// Overwrites a group's parity (used when (re)initializing a cache).
    pub fn set_parity(&mut self, group: u64, parity: ProtectedLine) {
        self.parities[group as usize] = parity;
    }

    /// Number of parity updates performed (PLT write traffic, §VII-I).
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_codes::{group_parity, LineCodec, LineData};

    #[test]
    fn new_table_is_zero() {
        let t = ParityTable::new(4);
        assert_eq!(t.n_groups(), 4);
        for g in 0..4 {
            assert!(t.parity(g).is_zero());
        }
    }

    #[test]
    fn apply_write_tracks_group_parity() {
        let codec = LineCodec::shared();
        let mut t = ParityTable::new(1);
        let mut members = vec![codec.encode(&LineData::zero()); 4];
        // Write new data into members 1 and 3.
        for (i, bit) in [(1usize, 10usize), (3, 200)] {
            let mut d = LineData::zero();
            d.set_bit(bit, true);
            let new = codec.encode(&d);
            t.apply_write(0, &members[i], &new);
            members[i] = new;
        }
        assert_eq!(*t.parity(0), group_parity(members.iter()));
        assert_eq!(t.write_count(), 2);
    }

    #[test]
    fn writes_commute_and_cancel() {
        let codec = LineCodec::shared();
        let mut t = ParityTable::new(1);
        let zero = codec.encode(&LineData::zero());
        let mut d = LineData::zero();
        d.set_bit(77, true);
        let val = codec.encode(&d);
        t.apply_write(0, &zero, &val);
        t.apply_write(0, &val, &zero);
        assert!(t.parity(0).is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_group_panics() {
        let t = ParityTable::new(2);
        t.parity(2);
    }
}
