//! Functional implementations of the paper's comparison schemes.
//!
//! * [`EccOnlyCache`] — uniform per-line BCH ECC-t (the Table II ladder,
//!   ECC-1 … ECC-6);
//! * [`CppcCache`] — Correctable Parity Protected Cache \[17\]: per-line
//!   detection plus a *single global* parity line (§VIII-A);
//! * [`Raid6Cache`] — two parities (P = XOR, Q = Reed–Solomon weighted over
//!   GF(2¹⁶)) per 512-line group, fixing up to two erased lines (§VIII-A);
//! * [`HiEccCache`] — ECC-6 at 1-KB granularity (§VIII-C, Table XII).
//!
//! The paper's 2DP baseline (horizontal + vertical parity with per-line
//! ECC-1) is computationally equivalent to SuDoku-Y restricted to a single
//! hash: the vertical parity *is* the RAID-4 parity line, and using column
//! mismatches to fix rows *is* SDR. Run `Scheme::Y` for it; Table XI's
//! analytic model does the same.

use crate::config::ConfigError;
use std::sync::OnceLock;
use sudoku_codes::{
    Bch, BchOutcome, BitBuf, GfTables, LineCodec, LineData, ProtectedLine, ReadCheck,
};

/// Per-line repair outcome reported by baseline scrubs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineOutcome {
    /// Nothing to do.
    Clean,
    /// Faults were (apparently) corrected. With more faults than the code
    /// can handle this may silently be a miscorrection — harnesses compare
    /// against golden data to count SDC.
    Corrected,
    /// Detected but uncorrectable.
    Uncorrectable,
}

// ----------------------------------------------------------------------
// ECC-t per line
// ----------------------------------------------------------------------

/// A cache protecting every 512-bit line with a t-error-correcting BCH code
/// and nothing else — the uniform-ECC strawman of paper §II-D / Table II.
#[derive(Debug)]
pub struct EccOnlyCache {
    code: Bch,
    lines: Vec<(BitBuf, BitBuf)>,
}

impl EccOnlyCache {
    /// `n_lines` zeroed lines protected with ECC-`t`.
    ///
    /// # Panics
    ///
    /// Panics if the BCH construction fails (it cannot for t ≤ 12).
    pub fn new(t: usize, n_lines: u64) -> Self {
        let code = sudoku_codes::line_ecc(t).expect("line ECC construction");
        let parity = code.encode(&BitBuf::zeros(512));
        let lines = vec![(BitBuf::zeros(512), parity); n_lines as usize];
        EccOnlyCache { code, lines }
    }

    /// Number of lines.
    pub fn n_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Total stored bits per line (data + parity).
    pub fn stored_bits_per_line(&self) -> usize {
        self.code.total_bits()
    }

    /// Writes fresh data into a line.
    pub fn write(&mut self, idx: u64, data: &BitBuf) {
        assert_eq!(data.len(), 512);
        let parity = self.code.encode(data);
        self.lines[idx as usize] = (data.clone(), parity);
    }

    /// Reads the stored (possibly faulty) data of a line.
    pub fn stored_data(&self, idx: u64) -> &BitBuf {
        &self.lines[idx as usize].0
    }

    /// Flips a stored bit: positions `0..512` hit the data, positions
    /// `512..` hit the parity field.
    pub fn inject_fault(&mut self, idx: u64, bit: usize) {
        let (data, parity) = &mut self.lines[idx as usize];
        if bit < 512 {
            data.flip(bit);
        } else {
            parity.flip(bit - 512);
        }
    }

    /// Scrubs one line in place.
    pub fn scrub_line(&mut self, idx: u64) -> BaselineOutcome {
        let (data, parity) = &mut self.lines[idx as usize];
        match self.code.decode(data, parity) {
            BchOutcome::Clean => BaselineOutcome::Clean,
            BchOutcome::Corrected(_) => BaselineOutcome::Corrected,
            BchOutcome::Uncorrectable => BaselineOutcome::Uncorrectable,
        }
    }

    /// Scrubs every line; returns the indices left uncorrectable.
    pub fn scrub(&mut self) -> Vec<u64> {
        (0..self.n_lines())
            .filter(|&i| self.scrub_line(i) == BaselineOutcome::Uncorrectable)
            .collect()
    }
}

// ----------------------------------------------------------------------
// CPPC
// ----------------------------------------------------------------------

/// CPPC \[17\] with SuDoku-equivalent resources: per-line ECC-1 + CRC-31 and
/// one *global* parity line for the whole cache. It can reconstruct exactly
/// one multi-bit-faulty line; two anywhere in the cache defeat it.
#[derive(Debug)]
pub struct CppcCache {
    codec: &'static LineCodec,
    lines: Vec<ProtectedLine>,
    global_parity: ProtectedLine,
}

impl CppcCache {
    /// `n_lines` zeroed lines.
    pub fn new(n_lines: u64) -> Self {
        CppcCache {
            codec: LineCodec::shared(),
            lines: vec![ProtectedLine::zero(); n_lines as usize],
            global_parity: ProtectedLine::zero(),
        }
    }

    /// Number of lines.
    pub fn n_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Writes data, maintaining the global parity.
    pub fn write(&mut self, idx: u64, data: &LineData) {
        let new = self.codec.encode(data);
        let old = self.lines[idx as usize];
        self.global_parity.xor_assign(&old);
        self.global_parity.xor_assign(&new);
        self.lines[idx as usize] = new;
    }

    /// The stored line.
    pub fn stored_line(&self, idx: u64) -> ProtectedLine {
        self.lines[idx as usize]
    }

    /// Flips a stored bit (transient fault; parity untouched).
    pub fn inject_fault(&mut self, idx: u64, bit: usize) {
        self.lines[idx as usize].flip_bit(bit);
    }

    /// Scrubs the cache: ECC-1 singles, then at most one global-parity
    /// reconstruction. Returns the lines left uncorrectable.
    pub fn scrub(&mut self) -> Vec<u64> {
        let mut faulty = Vec::new();
        for idx in 0..self.lines.len() {
            let stored = self.lines[idx];
            match self.codec.scrub_check(&stored) {
                ReadCheck::Clean => {}
                ReadCheck::Corrected { repaired, .. } => self.lines[idx] = repaired,
                ReadCheck::MultiBit => faulty.push(idx as u64),
            }
        }
        if faulty.len() == 1 {
            let victim = faulty[0] as usize;
            let mut candidate = self.global_parity;
            for (i, line) in self.lines.iter().enumerate() {
                if i != victim {
                    candidate.xor_assign(line);
                }
            }
            if self.codec.validate(&candidate) {
                self.lines[victim] = candidate;
                faulty.clear();
            }
        }
        faulty
    }
}

// ----------------------------------------------------------------------
// RAID-6
// ----------------------------------------------------------------------

fn gf16() -> &'static GfTables {
    static GF: OnceLock<GfTables> = OnceLock::new();
    GF.get_or_init(|| GfTables::primitive(16).expect("GF(2^16) exists"))
}

/// Symbols per stored line for the RAID-6 Q parity: 553 bits packed into
/// 35 16-bit symbols (70 bytes).
const Q_SYMBOLS: usize = 35;

fn line_symbols(line: &ProtectedLine) -> [u16; Q_SYMBOLS] {
    let mut bytes = [0u8; 70];
    bytes[..64].copy_from_slice(&line.data.to_bytes());
    bytes[64..68].copy_from_slice(&line.crc.to_le_bytes());
    bytes[68..70].copy_from_slice(&line.ecc.to_le_bytes());
    let mut symbols = [0u16; Q_SYMBOLS];
    for (i, chunk) in bytes.chunks_exact(2).enumerate() {
        symbols[i] = u16::from_le_bytes([chunk[0], chunk[1]]);
    }
    symbols
}

fn symbols_to_line(symbols: &[u16; Q_SYMBOLS]) -> ProtectedLine {
    let mut bytes = [0u8; 70];
    for (i, s) in symbols.iter().enumerate() {
        bytes[i * 2..i * 2 + 2].copy_from_slice(&s.to_le_bytes());
    }
    let data = LineData::from_bytes(&bytes[..64]);
    let crc = u32::from_le_bytes(bytes[64..68].try_into().expect("4 bytes"));
    let ecc = u16::from_le_bytes(bytes[68..70].try_into().expect("2 bytes"));
    ProtectedLine { data, crc, ecc }
}

/// RAID-6 over groups of lines: P = XOR parity, Q = Σ α^i·Lᵢ over GF(2¹⁶)
/// symbol-wise, plus the per-line ECC-1 + CRC-31. Repairs up to two
/// multi-bit-faulty lines per group (as CRC-identified erasures); three or
/// more defeat it — no SDR, exactly the paper's point in §VIII-A.
#[derive(Debug)]
pub struct Raid6Cache {
    codec: &'static LineCodec,
    group_lines: u32,
    lines: Vec<ProtectedLine>,
    p: Vec<ProtectedLine>,
    q: Vec<[u16; Q_SYMBOLS]>,
}

impl Raid6Cache {
    /// `n_lines` zeroed lines in groups of `group_lines`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] mirrors the SuDoku group-shape rules.
    pub fn new(n_lines: u64, group_lines: u32) -> Result<Self, ConfigError> {
        if group_lines < 2 || !group_lines.is_power_of_two() {
            return Err(ConfigError::BadGroupSize(group_lines));
        }
        if n_lines == 0 || !n_lines.is_multiple_of(group_lines as u64) {
            return Err(ConfigError::LinesNotMultipleOfGroup {
                lines: n_lines,
                group: group_lines,
            });
        }
        let n_groups = (n_lines / group_lines as u64) as usize;
        Ok(Raid6Cache {
            codec: LineCodec::shared(),
            group_lines,
            lines: vec![ProtectedLine::zero(); n_lines as usize],
            p: vec![ProtectedLine::zero(); n_groups],
            q: vec![[0u16; Q_SYMBOLS]; n_groups],
        })
    }

    /// Number of lines.
    pub fn n_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    fn group_of(&self, idx: u64) -> usize {
        (idx / self.group_lines as u64) as usize
    }

    fn offset_in_group(&self, idx: u64) -> u32 {
        (idx % self.group_lines as u64) as u32
    }

    /// Writes data, maintaining P and Q.
    pub fn write(&mut self, idx: u64, data: &LineData) {
        let gf = gf16();
        let new = self.codec.encode(data);
        let old = self.lines[idx as usize];
        let g = self.group_of(idx);
        let coeff = gf.alpha_pow(self.offset_in_group(idx) as u64);
        self.p[g].xor_assign(&old);
        self.p[g].xor_assign(&new);
        let old_sym = line_symbols(&old);
        let new_sym = line_symbols(&new);
        for k in 0..Q_SYMBOLS {
            self.q[g][k] ^= gf.mul(coeff, old_sym[k] ^ new_sym[k]);
        }
        self.lines[idx as usize] = new;
    }

    /// The stored line.
    pub fn stored_line(&self, idx: u64) -> ProtectedLine {
        self.lines[idx as usize]
    }

    /// Flips a stored bit (transient fault).
    pub fn inject_fault(&mut self, idx: u64, bit: usize) {
        self.lines[idx as usize].flip_bit(bit);
    }

    /// Scrubs the cache; returns the lines left uncorrectable.
    pub fn scrub(&mut self) -> Vec<u64> {
        let mut unresolved = Vec::new();
        let n_groups = self.p.len();
        for g in 0..n_groups {
            unresolved.extend(self.scrub_group(g));
        }
        unresolved
    }

    fn scrub_group(&mut self, g: usize) -> Vec<u64> {
        let gf = gf16();
        let base = g as u64 * self.group_lines as u64;
        let mut faulty: Vec<u64> = Vec::new();
        for off in 0..self.group_lines as u64 {
            let idx = base + off;
            let stored = self.lines[idx as usize];
            match self.codec.scrub_check(&stored) {
                ReadCheck::Clean => {}
                ReadCheck::Corrected { repaired, .. } => self.lines[idx as usize] = repaired,
                ReadCheck::MultiBit => faulty.push(idx),
            }
        }
        match faulty.len() {
            0 => Vec::new(),
            1 => {
                // One erasure: plain P reconstruction.
                let victim = faulty[0];
                let mut cand = self.p[g];
                for off in 0..self.group_lines as u64 {
                    let idx = base + off;
                    if idx != victim {
                        cand.xor_assign(&self.lines[idx as usize]);
                    }
                }
                if self.codec.validate(&cand) {
                    self.lines[victim as usize] = cand;
                    Vec::new()
                } else {
                    faulty
                }
            }
            2 => {
                // Two erasures i < j: solve the 2×2 system per symbol.
                let (vi, vj) = (faulty[0], faulty[1]);
                let (oi, oj) = (self.offset_in_group(vi), self.offset_in_group(vj));
                let ai = gf.alpha_pow(oi as u64);
                let aj = gf.alpha_pow(oj as u64);
                let denom = ai ^ aj; // non-zero because oi != oj < 2^16 - 1
                let mut p_prime = self.p[g];
                let mut q_prime = self.q[g];
                for off in 0..self.group_lines as u64 {
                    let idx = base + off;
                    if idx == vi || idx == vj {
                        continue;
                    }
                    let line = &self.lines[idx as usize];
                    p_prime.xor_assign(line);
                    let sym = line_symbols(line);
                    let coeff = gf.alpha_pow(off);
                    for k in 0..Q_SYMBOLS {
                        q_prime[k] ^= gf.mul(coeff, sym[k]);
                    }
                }
                // p' = Li ^ Lj ; q' = ai·Li ^ aj·Lj
                // => Lj = (q' ^ ai·p') / (ai ^ aj); Li = p' ^ Lj.
                let p_sym = line_symbols(&p_prime);
                let mut lj = [0u16; Q_SYMBOLS];
                for k in 0..Q_SYMBOLS {
                    lj[k] = gf.div(q_prime[k] ^ gf.mul(ai, p_sym[k]), denom);
                }
                let line_j = symbols_to_line(&lj);
                let line_i = p_prime.xor(&line_j);
                if self.codec.validate(&line_i) && self.codec.validate(&line_j) {
                    self.lines[vi as usize] = line_i;
                    self.lines[vj as usize] = line_j;
                    Vec::new()
                } else {
                    faulty
                }
            }
            _ => faulty,
        }
    }
}

// ----------------------------------------------------------------------
// Hi-ECC
// ----------------------------------------------------------------------

/// Hi-ECC \[71\]: ECC-6 provisioned over 1-KB (8192-bit) regions instead of
/// per 64-byte line, shrinking the overhead to ~1% but protecting 16× more
/// bits per codeword (paper §VIII-C, Table XII).
#[derive(Debug)]
pub struct HiEccCache {
    code: Bch,
    regions: Vec<(BitBuf, BitBuf)>,
}

/// Data bits per Hi-ECC region (1 KB).
pub const HI_ECC_REGION_BITS: usize = 8192;

impl HiEccCache {
    /// `n_regions` zeroed 1-KB regions, each under one t=6 BCH code over
    /// GF(2¹⁴).
    ///
    /// # Panics
    ///
    /// Panics if the BCH construction fails (it cannot for these
    /// parameters).
    pub fn new(n_regions: u64) -> Self {
        let code = Bch::new(14, 6, HI_ECC_REGION_BITS).expect("Hi-ECC BCH construction");
        let parity = code.encode(&BitBuf::zeros(HI_ECC_REGION_BITS));
        HiEccCache {
            regions: vec![(BitBuf::zeros(HI_ECC_REGION_BITS), parity); n_regions as usize],
            code,
        }
    }

    /// Number of regions.
    pub fn n_regions(&self) -> u64 {
        self.regions.len() as u64
    }

    /// Parity overhead in bits per region.
    pub fn parity_bits(&self) -> usize {
        self.code.parity_bits()
    }

    /// Flips a stored bit of a region (data `0..8192`, parity beyond).
    pub fn inject_fault(&mut self, region: u64, bit: usize) {
        let (data, parity) = &mut self.regions[region as usize];
        if bit < HI_ECC_REGION_BITS {
            data.flip(bit);
        } else {
            parity.flip(bit - HI_ECC_REGION_BITS);
        }
    }

    /// Scrubs one region.
    pub fn scrub_region(&mut self, region: u64) -> BaselineOutcome {
        let (data, parity) = &mut self.regions[region as usize];
        match self.code.decode(data, parity) {
            BchOutcome::Clean => BaselineOutcome::Clean,
            BchOutcome::Corrected(_) => BaselineOutcome::Corrected,
            BchOutcome::Uncorrectable => BaselineOutcome::Uncorrectable,
        }
    }

    /// The stored data of a region.
    pub fn stored_data(&self, region: u64) -> &BitBuf {
        &self.regions[region as usize].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_only_corrects_up_to_t() {
        let mut cache = EccOnlyCache::new(3, 4);
        let mut d = BitBuf::zeros(512);
        d.set(100, true);
        cache.write(1, &d);
        for bit in [5, 200, 400] {
            cache.inject_fault(1, bit);
        }
        assert_eq!(cache.scrub_line(1), BaselineOutcome::Corrected);
        assert_eq!(cache.stored_data(1), &d);
    }

    #[test]
    fn ecc_only_fails_beyond_t() {
        let mut cache = EccOnlyCache::new(2, 2);
        for bit in [5, 100, 200] {
            cache.inject_fault(0, bit);
        }
        // Either detected-uncorrectable or a miscorrection; with 3 > t = 2
        // faults it must not return to the golden state claiming Clean.
        let outcome = cache.scrub_line(0);
        assert_ne!(outcome, BaselineOutcome::Clean);
    }

    #[test]
    fn cppc_repairs_one_multibit_line_globally() {
        let mut cache = CppcCache::new(64);
        let mut d = LineData::zero();
        d.set_bit(44, true);
        cache.write(10, &d);
        for bit in [1, 2, 3] {
            cache.inject_fault(10, bit);
        }
        assert!(cache.scrub().is_empty());
        assert_eq!(cache.stored_line(10).data, d);
    }

    #[test]
    fn cppc_fails_on_two_multibit_lines_anywhere() {
        let mut cache = CppcCache::new(64);
        for bit in [1, 2] {
            cache.inject_fault(10, bit);
        }
        for bit in [3, 4] {
            cache.inject_fault(50, bit); // different "group" — CPPC has none
        }
        let unresolved = cache.scrub();
        assert_eq!(unresolved, vec![10, 50]);
    }

    #[test]
    fn raid6_repairs_two_multibit_lines_in_one_group() {
        let mut cache = Raid6Cache::new(64, 16).unwrap();
        let mut d = LineData::zero();
        d.set_bit(7, true);
        cache.write(1, &d);
        cache.write(2, &d);
        for bit in [1, 2] {
            cache.inject_fault(1, bit);
        }
        for bit in [1, 2] {
            cache.inject_fault(2, bit); // fully overlapping — SDR-proof!
        }
        assert!(cache.scrub().is_empty());
        assert_eq!(cache.stored_line(1).data, d);
        assert_eq!(cache.stored_line(2).data, d);
    }

    #[test]
    fn raid6_fails_on_three_multibit_lines() {
        let mut cache = Raid6Cache::new(64, 16).unwrap();
        for line in [0u64, 1, 2] {
            cache.inject_fault(line, 1);
            cache.inject_fault(line, 2);
        }
        assert_eq!(cache.scrub(), vec![0, 1, 2]);
    }

    #[test]
    fn raid6_single_bit_faults_fixed_locally() {
        let mut cache = Raid6Cache::new(32, 16).unwrap();
        cache.inject_fault(5, 99);
        assert!(cache.scrub().is_empty());
        assert!(cache.stored_line(5).is_zero());
    }

    #[test]
    fn hi_ecc_corrects_six_faults_per_region() {
        let mut cache = HiEccCache::new(2);
        for bit in [10, 2000, 4000, 6000, 8000, 8200] {
            cache.inject_fault(0, bit);
        }
        assert_eq!(cache.scrub_region(0), BaselineOutcome::Corrected);
        assert!(cache.stored_data(0).is_zero());
    }

    #[test]
    fn hi_ecc_fails_on_seven_faults() {
        let mut cache = HiEccCache::new(1);
        for k in 0..7 {
            cache.inject_fault(0, 500 + k * 911);
        }
        assert_ne!(cache.scrub_region(0), BaselineOutcome::Clean);
    }

    #[test]
    fn hi_ecc_overhead_is_under_one_percent_excluding_detection() {
        let cache = HiEccCache::new(1);
        let overhead = cache.parity_bits() as f64 / HI_ECC_REGION_BITS as f64;
        assert!(overhead < 0.011, "{overhead}");
    }
}
