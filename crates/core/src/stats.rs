//! Event counters and latency accounting (paper §VII-B).

use serde::{Deserialize, Serialize};

/// STTRAM read latency, 9 ns (Table VI).
pub const STT_READ_NS: f64 = 9.0;
/// STTRAM write latency, 18 ns (Table VI).
pub const STT_WRITE_NS: f64 = 18.0;
/// One 3.2 GHz core cycle, ≈0.3125 ns — the CRC/ECC syndrome check adds one.
pub const SYNDROME_CHECK_NS: f64 = 1.0 / 3.2;

/// Counters accumulated by a SuDoku cache across its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Logical reads served.
    pub reads: u64,
    /// Logical writes served.
    pub writes: u64,
    /// Lines examined by scrub passes.
    pub lines_scrubbed: u64,
    /// Single-bit repairs performed by per-line ECC-1.
    pub ecc1_repairs: u64,
    /// ECC-metadata regenerations (fault in the ECC field itself).
    pub meta_repairs: u64,
    /// Lines flagged multi-bit by CRC.
    pub multibit_detections: u64,
    /// Lines reconstructed by plain RAID-4 (paper §III-C.2).
    pub raid4_repairs: u64,
    /// Lines resurrected by SDR bit-flip trials (paper §IV).
    pub sdr_repairs: u64,
    /// Individual SDR flip-and-check trials attempted.
    pub sdr_trials: u64,
    /// Lines repaired only thanks to the Hash-2 dimension (paper §V).
    pub hash2_repairs: u64,
    /// Lines left detectably uncorrectable (DUE).
    pub due_lines: u64,
    /// Whole-group reads performed during recovery.
    pub group_scans: u64,
    /// CRC/ECC consistency checks performed by the read, scrub, and
    /// recovery paths (all-zero lines skipped by the fast path are not
    /// counted — that is the point of the counter).
    pub crc_checks: u64,
}

impl CacheStats {
    /// Total lines repaired by any mechanism.
    pub fn total_repairs(&self) -> u64 {
        self.ecc1_repairs + self.meta_repairs + self.raid4_repairs + self.sdr_repairs
    }

    /// Estimated time spent in recovery, in nanoseconds, using the paper's
    /// §VII-B accounting: a group scan costs `group_lines` STTRAM reads,
    /// each SDR trial a handful of cycles, each repair one write-back.
    pub fn recovery_time_ns(&self, group_lines: u32) -> f64 {
        let scan = self.group_scans as f64 * group_lines as f64 * STT_READ_NS;
        let trials = self.sdr_trials as f64 * 4.0 * SYNDROME_CHECK_NS;
        let writebacks = self.total_repairs() as f64 * STT_WRITE_NS;
        scan + trials + writebacks
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.lines_scrubbed += other.lines_scrubbed;
        self.ecc1_repairs += other.ecc1_repairs;
        self.meta_repairs += other.meta_repairs;
        self.multibit_detections += other.multibit_detections;
        self.raid4_repairs += other.raid4_repairs;
        self.sdr_repairs += other.sdr_repairs;
        self.sdr_trials += other.sdr_trials;
        self.hash2_repairs += other.hash2_repairs;
        self.due_lines += other.due_lines;
        self.group_scans += other.group_scans;
        self.crc_checks += other.crc_checks;
    }

    /// JSON object with every counter, stable field order.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("reads", self.reads);
        obj.field_u64("writes", self.writes);
        obj.field_u64("lines_scrubbed", self.lines_scrubbed);
        obj.field_u64("ecc1_repairs", self.ecc1_repairs);
        obj.field_u64("meta_repairs", self.meta_repairs);
        obj.field_u64("multibit_detections", self.multibit_detections);
        obj.field_u64("raid4_repairs", self.raid4_repairs);
        obj.field_u64("sdr_repairs", self.sdr_repairs);
        obj.field_u64("sdr_trials", self.sdr_trials);
        obj.field_u64("hash2_repairs", self.hash2_repairs);
        obj.field_u64("due_lines", self.due_lines);
        obj.field_u64("group_scans", self.group_scans);
        obj.field_u64("crc_checks", self.crc_checks);
        obj.finish()
    }
}

/// Outcome of one scrub pass.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Lines examined.
    pub lines_checked: u64,
    /// Per-line single-bit repairs (ECC-1).
    pub ecc1_repairs: u64,
    /// ECC-field regenerations.
    pub meta_repairs: u64,
    /// Lines that needed group-level recovery.
    pub multibit_lines: u64,
    /// Lines fixed by plain RAID-4 reconstruction.
    pub raid4_repairs: u64,
    /// Lines fixed by SDR.
    pub sdr_repairs: u64,
    /// Lines fixed only via the Hash-2 dimension.
    pub hash2_repairs: u64,
    /// Lines left uncorrectable (their indices) — a detectable
    /// uncorrectable error (DUE) if non-empty.
    pub unresolved: Vec<u64>,
}

impl ScrubReport {
    /// Whether the scrub repaired everything it detected.
    pub fn fully_repaired(&self) -> bool {
        self.unresolved.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_time_matches_paper_magnitudes() {
        // One RAID-4 repair over a 512-line group ≈ 4.6 µs of reads
        // (paper §III-D: "approximately 4 µs per repair").
        let stats = CacheStats {
            group_scans: 1,
            raid4_repairs: 1,
            ..CacheStats::default()
        };
        let t = stats.recovery_time_ns(512);
        assert!((4000.0..5000.0).contains(&t), "{t} ns");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            reads: 1,
            sdr_trials: 5,
            ..CacheStats::default()
        };
        let b = CacheStats {
            reads: 2,
            due_lines: 1,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.sdr_trials, 5);
        assert_eq!(a.due_lines, 1);
    }

    #[test]
    fn empty_report_is_fully_repaired() {
        assert!(ScrubReport::default().fully_repaired());
    }

    #[test]
    fn stats_json_has_every_counter() {
        let stats = CacheStats {
            reads: 7,
            sdr_trials: 5,
            due_lines: 1,
            ..CacheStats::default()
        };
        let json = stats.to_json();
        assert!(json.contains("\"reads\":7"), "{json}");
        assert!(json.contains("\"sdr_trials\":5"), "{json}");
        assert!(json.contains("\"due_lines\":1"), "{json}");
        assert!(json.contains("\"crc_checks\":0"), "{json}");
    }
}
