//! The SuDoku cache: storage, read/write paths, and the X/Y/Z correction
//! engines.
//!
//! The recovery ladder (paper §III–§V):
//!
//! 1. **ECC-1** fixes single-bit faults per line (the common case);
//! 2. **RAID-4** reconstructs one multi-bit-faulty line per group from the
//!    group parity (SuDoku-X);
//! 3. **SDR** (Sequential Data Resurrection) resurrects multiple faulty
//!    lines in a group by flipping parity-mismatch positions one at a time
//!    and re-validating with ECC-1 + CRC (SuDoku-Y);
//! 4. **Skewed-hash recovery** retries lines that remain uncorrectable
//!    under Hash-1 in their Hash-2 groups, iterating to a fixpoint — each
//!    line repaired in one dimension can unlock its group in the other
//!    (SuDoku-Z).

use crate::config::{ConfigError, Scheme, SudokuConfig};
use crate::hashing::{HashDim, SkewedHashes};
use crate::plt::ParityTable;
use crate::recovery::{self, GroupScratch, GroupView, MemberState, RepairEngine, RepairParams};
use crate::stats::{CacheStats, ScrubReport};
use crate::store::{DenseStore, LineStore, SparseStore};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use sudoku_codes::{LineCodec, LineData, ProtectedLine, ReadCheck, RepairKind};
use sudoku_obs::{Mechanism, Outcome, Phase, Recorder, RecoveryEvent};

/// Error returned when a read hits a detectably uncorrectable line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UncorrectableError {
    /// The line that could not be repaired.
    pub line: u64,
}

impl fmt::Display for UncorrectableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {} is detectably uncorrectable", self.line)
    }
}

impl std::error::Error for UncorrectableError {}

/// A SuDoku-protected cache over a pluggable line store.
///
/// # Examples
///
/// ```
/// use sudoku_core::{Scheme, SudokuCache, SudokuConfig};
/// use sudoku_codes::LineData;
///
/// let config = SudokuConfig::small(Scheme::Z, 256, 16);
/// let mut cache = SudokuCache::new(config)?;
/// let mut data = LineData::zero();
/// data.set_bit(5, true);
/// cache.write(7, &data);
///
/// // Inject a burst of transient faults into line 7 and recover via RAID-4.
/// for bit in [1, 2, 3, 4, 5, 6] {
///     cache.inject_fault(7, bit);
/// }
/// assert_eq!(cache.read(7)?, data);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SudokuCache<S = DenseStore> {
    config: SudokuConfig,
    hashes: SkewedHashes,
    store: S,
    plt1: ParityTable,
    plt2: Option<ParityTable>,
    codec: &'static LineCodec,
    stats: CacheStats,
    recorder: Recorder,
    scratch: GroupScratch,
    members_scratch: Vec<u64>,
}

/// Adapts one group of a cache's own store (plus the in-flight
/// recovered-value map) to the [`GroupView`] the shared repair engine
/// drives. The parity is snapshotted by the caller — the PLT is only
/// written by demand writes, never by recovery.
struct CacheGroupView<'a, S> {
    store: &'a mut S,
    recovered: &'a mut BTreeMap<u64, ProtectedLine>,
    members: &'a [u64],
    parity: ProtectedLine,
}

impl<S: LineStore> GroupView for CacheGroupView<'_, S> {
    fn len(&self) -> usize {
        self.members.len()
    }

    fn line_id(&self, i: usize) -> u64 {
        self.members[i]
    }

    fn state(&self, i: usize) -> MemberState {
        let m = self.members[i];
        if let Some(&r) = self.recovered.get(&m) {
            MemberState::Recovered(r)
        } else if !self.store.is_materialized(m) {
            MemberState::Zero
        } else {
            MemberState::Stored(self.store.line(m))
        }
    }

    fn commit_repair(&mut self, i: usize, line: ProtectedLine) {
        self.store.set_line(self.members[i], line);
    }

    fn commit_reconstruction(&mut self, i: usize, line: ProtectedLine) {
        let m = self.members[i];
        self.store.set_line(m, line);
        self.recovered.insert(m, line);
    }

    fn parity(&self) -> ProtectedLine {
        self.parity
    }
}

impl SudokuCache<DenseStore> {
    /// A fully materialized cache, all lines zero.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from validation.
    pub fn new(config: SudokuConfig) -> Result<Self, ConfigError> {
        let store = DenseStore::new(config.geometry.lines());
        Self::with_store(config, store)
    }
}

impl SudokuCache<SparseStore> {
    /// A sparse cache (unwritten lines hold the zero codeword) — the
    /// backing used by full-scale Monte-Carlo campaigns.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from validation.
    pub fn new_sparse(config: SudokuConfig) -> Result<Self, ConfigError> {
        let store = SparseStore::new(config.geometry.lines());
        Self::with_store(config, store)
    }

    /// Returns the cache to the golden all-zero state in O(touched) work:
    /// materialized lines are dropped, parity groups dirtied by writes are
    /// rezeroed sparsely, and the event log is cleared. Equivalent to
    /// reconstructing the cache with [`SudokuCache::new_sparse`], except
    /// that the accumulated [`CacheStats`] (and the PLT write-traffic
    /// counter) deliberately survive — campaign workers reuse one arena
    /// across trials and report the aggregated counters at the end.
    pub fn reset_to_golden_zero(&mut self) {
        self.store.clear();
        self.plt1.reset_zero();
        if let Some(plt2) = self.plt2.as_mut() {
            plt2.reset_zero();
        }
        self.recorder.clear_events();
    }
}

impl<S: LineStore> SudokuCache<S> {
    /// Wraps an existing store (its lines must currently be consistent with
    /// zero parities, i.e. all-zero).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`]; also fails if the store size disagrees
    /// with the geometry.
    pub fn with_store(config: SudokuConfig, store: S) -> Result<Self, ConfigError> {
        config.validate()?;
        let hashes = SkewedHashes::from_config(&config)?;
        assert_eq!(
            store.n_lines(),
            config.geometry.lines(),
            "store size must match the configured geometry"
        );
        let n_groups = config.n_groups();
        let plt2 = config
            .scheme
            .second_hash_enabled()
            .then(|| ParityTable::new(n_groups));
        Ok(SudokuCache {
            config,
            hashes,
            store,
            plt1: ParityTable::new(n_groups),
            plt2,
            codec: LineCodec::shared(),
            stats: CacheStats::default(),
            recorder: Recorder::ring(4096),
            scratch: GroupScratch::default(),
            members_scratch: Vec::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &SudokuConfig {
        &self.config
    }

    /// The group hashes in use.
    pub fn hashes(&self) -> &SkewedHashes {
        &self.hashes
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The telemetry recorder attached to this cache. The default is a
    /// bounded in-memory ring of the most recent 4096 recovery events;
    /// install a different one with [`SudokuCache::set_recorder`].
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access to the recorder (interval stamping, phase spans).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Installs `recorder` and returns the previous one — the harvesting
    /// pattern campaign workers use to collect histograms and spans.
    pub fn set_recorder(&mut self, recorder: Recorder) -> Recorder {
        std::mem::replace(&mut self.recorder, recorder)
    }

    /// Retained recovery events, oldest first (empty for streaming or
    /// disabled recorders).
    pub fn events(&self) -> impl Iterator<Item = &RecoveryEvent> {
        self.recorder.events()
    }

    /// Clears the retained recovery events.
    pub fn clear_events(&mut self) {
        self.recorder.clear_events();
    }

    /// Removes and returns the retained recovery events, oldest first.
    pub fn drain_events(&mut self) -> Vec<RecoveryEvent> {
        self.recorder.drain_events()
    }

    /// The underlying line store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Total parity-table write traffic (both PLTs).
    pub fn plt_write_count(&self) -> u64 {
        self.plt1.write_count() + self.plt2.as_ref().map_or(0, ParityTable::write_count)
    }

    /// The stored (possibly faulty) line at `idx`.
    pub fn stored_line(&self, idx: u64) -> ProtectedLine {
        self.store.line(idx)
    }

    /// Whether the stored line at `idx` is a fully consistent codeword.
    pub fn is_line_valid(&self, idx: u64) -> bool {
        self.codec.validate(&self.store.line(idx))
    }

    /// Flips one stored bit — a transient fault. Parities are deliberately
    /// *not* updated; that asymmetry is what lets recovery localize faults.
    pub fn inject_fault(&mut self, idx: u64, bit: usize) {
        self.store.flip_bit(idx, bit);
    }

    fn plt(&self, dim: HashDim) -> &ParityTable {
        match dim {
            HashDim::H1 => &self.plt1,
            HashDim::H2 => self.plt2.as_ref().expect("Hash-2 PLT enabled"),
        }
    }

    fn dims(&self) -> &'static [HashDim] {
        if self.config.scheme.second_hash_enabled() && !self.config.defer_hash2 {
            &[HashDim::H1, HashDim::H2]
        } else {
            &[HashDim::H1]
        }
    }

    /// Builds and emits one recovery event. Callers gate on
    /// `self.recorder.enabled()` so the disabled path never constructs the
    /// event.
    #[inline]
    fn emit(
        &mut self,
        line: u64,
        group: Option<(HashDim, u64)>,
        mechanism: Mechanism,
        outcome: Outcome,
        trials: u32,
    ) {
        recovery::emit_event(&mut self.recorder, line, group, mechanism, outcome, trials);
    }

    /// Writes `data` to line `idx`, updating every enabled PLT (the two
    /// read-modify-writes of paper §III-B).
    ///
    /// If the stored old value is faulty it is repaired (locally or via
    /// group recovery) before the parity delta is computed, so that faults
    /// never leak into the parity tables. Returns whether the old stored
    /// value was already consistent — `false` means the pre-check repaired
    /// it, possibly rewriting other lines of the Hash-1 group (callers
    /// mirroring the store must then refresh the whole group).
    pub fn write(&mut self, idx: u64, data: &LineData) -> bool {
        self.stats.writes += 1;
        let new = self.codec.encode(data);
        let (old, old_clean) = self.consistent_old_value(idx);
        let g1 = self.hashes.group_of(HashDim::H1, idx);
        self.plt1.apply_write(g1, &old, &new);
        if let Some(plt2) = self.plt2.as_mut() {
            let g2 = self.hashes.group_of(HashDim::H2, idx);
            plt2.apply_write(g2, &old, &new);
        }
        self.store.set_line(idx, new);
        old_clean
    }

    /// Best-effort recovery of the as-written value of `idx` for the write
    /// path's parity delta, with whether the stored value was already
    /// clean (no repair of any kind was needed).
    fn consistent_old_value(&mut self, idx: u64) -> (ProtectedLine, bool) {
        let stored = self.store.line(idx);
        if stored.is_zero() {
            return (stored, true); // the zero codeword is valid by linearity
        }
        self.stats.crc_checks += 1;
        match self.codec.scrub_check(&stored) {
            ReadCheck::Clean => return (stored, true),
            ReadCheck::Corrected { repaired, .. } => return (repaired, false),
            ReadCheck::MultiBit => {}
        }
        // Multi-bit old value: run group recovery, then fall back to the
        // RAID-4 erasure estimate if the line is still bad.
        let mut scratch = ScrubReport::default();
        let recovered = self.group_recovery([idx].into_iter().collect(), &mut scratch);
        if let Some(line) = recovered.get(&idx) {
            return (*line, false);
        }
        let stored = self.store.line(idx);
        self.stats.crc_checks += 1;
        if self.codec.validate(&stored) {
            return (stored, false);
        }
        self.stats.due_lines += 1;
        if self.recorder.enabled() {
            self.emit(idx, None, Mechanism::Due, Outcome::Failed, 0);
        }
        let g1 = self.hashes.group_of(HashDim::H1, idx);
        let mut estimate = *self.plt1.parity(g1);
        for m in self.hashes.members(HashDim::H1, g1) {
            if m != idx {
                estimate.xor_assign(&self.store.line(m));
            }
        }
        (estimate, false)
    }

    /// Reads line `idx`, repairing on demand (paper §III-B/C).
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] if every recovery level fails — a DUE.
    pub fn read(&mut self, idx: u64) -> Result<LineData, UncorrectableError> {
        self.stats.reads += 1;
        let stored = self.store.line(idx);
        if stored.is_zero() {
            return Ok(stored.data); // the zero codeword is valid by linearity
        }
        self.stats.crc_checks += 1;
        match self.codec.read_check(&stored) {
            ReadCheck::Clean => Ok(stored.data),
            ReadCheck::Corrected { repaired, kind } => {
                self.count_repair(idx, kind);
                self.store.set_line(idx, repaired);
                Ok(repaired.data)
            }
            ReadCheck::MultiBit => {
                self.stats.multibit_detections += 1;
                if self.recorder.enabled() {
                    self.emit(idx, None, Mechanism::CrcDetect, Outcome::Detected, 0);
                }
                let mut scratch = ScrubReport::default();
                let recovered = self.group_recovery([idx].into_iter().collect(), &mut scratch);
                if let Some(line) = recovered.get(&idx) {
                    return Ok(line.data);
                }
                // The line may have been healed as a side effect (or the
                // fault was in metadata only); give the local path one more
                // chance before declaring a DUE.
                let stored = self.store.line(idx);
                self.stats.crc_checks += 1;
                match self.codec.scrub_check(&stored) {
                    ReadCheck::Clean => Ok(stored.data),
                    ReadCheck::Corrected { repaired, kind } => {
                        self.count_repair(idx, kind);
                        self.store.set_line(idx, repaired);
                        Ok(repaired.data)
                    }
                    ReadCheck::MultiBit => {
                        self.stats.due_lines += 1;
                        if self.recorder.enabled() {
                            self.emit(idx, None, Mechanism::Due, Outcome::Failed, 0);
                        }
                        Err(UncorrectableError { line: idx })
                    }
                }
            }
        }
    }

    fn count_repair(&mut self, line: u64, kind: RepairKind) {
        recovery::record_repair(&mut self.stats, &mut self.recorder, line, kind);
    }

    /// Scrubs the entire cache (paper §II-D): every line is checked and
    /// repaired; group recovery handles multi-bit casualties.
    pub fn scrub(&mut self) -> ScrubReport {
        let n = self.store.n_lines();
        self.scrub_lines_impl((0..n).collect(), true)
    }

    /// Scrubs only the listed lines plus whatever group recovery pulls in.
    ///
    /// Semantically identical to [`SudokuCache::scrub`] whenever `hints`
    /// covers every faulty line — the fast path for sparse Monte-Carlo
    /// campaigns that know exactly where they injected faults.
    pub fn scrub_lines(&mut self, hints: &[u64]) -> ScrubReport {
        let set: BTreeSet<u64> = hints.iter().copied().collect();
        self.scrub_lines_impl(set, true)
    }

    /// Like [`SudokuCache::scrub_lines`] but with the all-zero-line fast
    /// path disabled: every visited line goes through the full CRC + ECC
    /// consistency check. Kept as a reference path so the optimization can
    /// be property-tested to produce identical [`ScrubReport`]s and stored
    /// lines (the `crc_checks` stat counter is the only observable
    /// difference).
    pub fn scrub_lines_reference(&mut self, hints: &[u64]) -> ScrubReport {
        let set: BTreeSet<u64> = hints.iter().copied().collect();
        self.scrub_lines_impl(set, false)
    }

    fn scrub_lines_impl(&mut self, lines: BTreeSet<u64>, fast: bool) -> ScrubReport {
        let mut report = ScrubReport::default();
        let multibit = self.scan_lines(lines, fast, &mut report);
        report.multibit_lines = multibit.len() as u64;
        self.group_recovery_impl(multibit, &mut report, fast);
        self.finish_scrub(&mut report);
        report
    }

    /// The per-line scan half of a scrub: check (and locally repair) every
    /// listed line, returning the multi-bit casualties that need group
    /// recovery. This is the shard-local phase of a sharded scrub — the
    /// caller then drives [`SudokuCache::recovery_pass`] /
    /// [`SudokuCache::finish_scrub`] explicitly.
    pub fn scrub_scan(
        &mut self,
        lines: impl IntoIterator<Item = u64>,
        fast: bool,
        report: &mut ScrubReport,
    ) -> BTreeSet<u64> {
        let set: BTreeSet<u64> = lines.into_iter().collect();
        let multibit = self.scan_lines(set, fast, report);
        report.multibit_lines += multibit.len() as u64;
        multibit
    }

    fn scan_lines(
        &mut self,
        lines: BTreeSet<u64>,
        fast: bool,
        report: &mut ScrubReport,
    ) -> BTreeSet<u64> {
        let mut multibit: BTreeSet<u64> = BTreeSet::new();
        for idx in lines {
            report.lines_checked += 1;
            self.stats.lines_scrubbed += 1;
            let stored = self.store.line(idx);
            if fast && stored.is_zero() {
                // The all-zero codeword is valid by linearity (zero data,
                // zero CRC, zero ECC), so the CRC check can be skipped —
                // the common case for golden-zero Monte-Carlo state.
                continue;
            }
            self.stats.crc_checks += 1;
            match self.codec.scrub_check(&stored) {
                ReadCheck::Clean => {}
                ReadCheck::Corrected { repaired, kind } => {
                    match kind {
                        RepairKind::PayloadBit(_) => report.ecc1_repairs += 1,
                        RepairKind::EccField => report.meta_repairs += 1,
                    }
                    self.count_repair(idx, kind);
                    self.store.set_line(idx, repaired);
                }
                ReadCheck::MultiBit => {
                    self.stats.multibit_detections += 1;
                    if self.recorder.enabled() {
                        self.emit(idx, None, Mechanism::CrcDetect, Outcome::Detected, 0);
                    }
                    multibit.insert(idx);
                }
            }
        }
        multibit
    }

    /// Ends a scrub whose group recovery was driven externally: counts the
    /// lines left in `report.unresolved` as DUEs and records their events
    /// — the accounting [`SudokuCache::scrub`] performs internally.
    pub fn finish_scrub(&mut self, report: &mut ScrubReport) {
        self.stats.due_lines += report.unresolved.len() as u64;
        if self.recorder.enabled() {
            for i in 0..report.unresolved.len() {
                self.emit(
                    report.unresolved[i],
                    None,
                    Mechanism::Due,
                    Outcome::Failed,
                    0,
                );
            }
        }
    }

    /// Drives the X/Y/Z recovery ladder to a fixpoint over a set of
    /// multi-bit-faulty lines.
    ///
    /// Returns the recovered value of every multi-bit casualty that was
    /// reconstructed. (For transient faults the store holds the same value
    /// after write-back; for *persistent* faults — stuck cells that corrupt
    /// every write-back — the returned map is the only place the recovered
    /// data exists, exactly like the controller's correction buffer in
    /// hardware.)
    fn group_recovery(
        &mut self,
        faulty: BTreeSet<u64>,
        report: &mut ScrubReport,
    ) -> BTreeMap<u64, ProtectedLine> {
        self.group_recovery_impl(faulty, report, true)
    }

    fn group_recovery_impl(
        &mut self,
        mut faulty: BTreeSet<u64>,
        report: &mut ScrubReport,
        fast: bool,
    ) -> BTreeMap<u64, ProtectedLine> {
        // Time the whole ladder as one `Recover` span (nested inside the
        // caller's `Scrub` span); the clock is only read when telemetry is
        // on and there is actual recovery work.
        let span_start =
            (self.recorder.enabled() && !faulty.is_empty()).then(std::time::Instant::now);
        let mut recovered: BTreeMap<u64, ProtectedLine> = BTreeMap::new();
        loop {
            if faulty.is_empty() {
                break;
            }
            let before = faulty.len();
            for &dim in self.dims() {
                if faulty.is_empty() {
                    break;
                }
                self.recovery_pass(dim, &mut faulty, &mut recovered, report, fast);
            }
            if faulty.len() >= before {
                break;
            }
        }
        report.unresolved = faulty.into_iter().collect();
        if let Some(start) = span_start {
            self.recorder
                .phases
                .add(Phase::Recover, start.elapsed().as_secs_f64());
        }
        recovered
    }

    /// One recovery pass over `faulty` in one hash dimension: repair every
    /// implicated group (ascending group order, exactly like the
    /// single-threaded ladder), then drop lines that are now clean or
    /// reconstructed. One iteration of the SuDoku-Z fixpoint — exposed so a
    /// sharded driver can interleave shard-local Hash-1 passes with
    /// coordinator-run Hash-2 passes.
    pub fn recovery_pass(
        &mut self,
        dim: HashDim,
        faulty: &mut BTreeSet<u64>,
        recovered: &mut BTreeMap<u64, ProtectedLine>,
        report: &mut ScrubReport,
        fast: bool,
    ) {
        if faulty.is_empty() {
            return;
        }
        let groups: BTreeSet<u64> = faulty
            .iter()
            .map(|&l| self.hashes.group_of(dim, l))
            .collect();
        for group in groups {
            self.repair_group(dim, group, report, recovered, fast);
        }
        self.retain_multibit(faulty, recovered);
    }

    /// Drops every line from `faulty` that is reconstructed (present in
    /// `recovered`) or whose stored copy no longer scrubs as multi-bit —
    /// the post-pass filter of the recovery fixpoint, with the same
    /// `crc_checks` accounting.
    pub fn retain_multibit(
        &mut self,
        faulty: &mut BTreeSet<u64>,
        recovered: &BTreeMap<u64, ProtectedLine>,
    ) {
        faulty.retain(|&l| {
            if recovered.contains_key(&l) {
                return false;
            }
            self.stats.crc_checks += 1;
            matches!(
                self.codec.scrub_check(&self.store.line(l)),
                ReadCheck::MultiBit
            )
        });
    }

    /// Repairs one RAID-Group by driving the shared [`RepairEngine`] over
    /// this cache's store (paper §III-C.2 pass 1, then RAID-4 or SDR).
    fn repair_group(
        &mut self,
        dim: HashDim,
        group: u64,
        report: &mut ScrubReport,
        recovered: &mut BTreeMap<u64, ProtectedLine>,
        fast: bool,
    ) {
        // Borrow the scratch buffers out of `self` for the duration of the
        // scan (restored below) so the per-group Vec allocations happen
        // only once per cache.
        let mut members = std::mem::take(&mut self.members_scratch);
        members.clear();
        members.extend(self.hashes.members(dim, group));
        let mut scratch = std::mem::take(&mut self.scratch);
        let parity = *self.plt(dim).parity(group);
        let mut view = CacheGroupView {
            store: &mut self.store,
            recovered,
            members: &members,
            parity,
        };
        let mut engine = RepairEngine {
            codec: self.codec,
            params: RepairParams::from_config(&self.config),
            stats: &mut self.stats,
            recorder: &mut self.recorder,
        };
        engine.repair_group(dim, group, &mut view, &mut scratch, report, fast);
        self.scratch = scratch;
        self.members_scratch = members;
    }

    /// Snapshot of a group's parity line (the PLT is only written by
    /// demand writes, so this is stable across a recovery). Cross-shard
    /// Hash-2 recovery XORs these snapshots across shards — parity is
    /// linear, so per-shard tables compose.
    pub fn group_parity(&self, dim: HashDim, group: u64) -> ProtectedLine {
        *self.plt(dim).parity(group)
    }

    /// Raw store write-back of a recovered line, deliberately skipping the
    /// parity update (recovery restores the as-written value; the PLT
    /// already reflects it). Used by cross-shard coordinators to commit
    /// reconstructions into the owning shard.
    pub fn set_stored_line(&mut self, idx: u64, line: ProtectedLine) {
        self.store.set_line(idx, line);
    }
}

impl<S: LineStore> fmt::Debug for SudokuCache<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SudokuCache")
            .field("scheme", &self.config.scheme)
            .field("lines", &self.config.geometry.lines())
            .field("group_lines", &self.config.group_lines)
            .finish()
    }
}

/// Convenience: is this scheme/line-count combination usable?
pub fn scheme_supported(scheme: Scheme, lines: u64, group: u32) -> bool {
    SudokuConfig::small(scheme, lines, group).validate().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with(bits: &[usize]) -> LineData {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    fn small_cache(scheme: Scheme) -> SudokuCache<DenseStore> {
        // 256 lines, groups of 16: satisfies the Z divisibility rule.
        SudokuCache::new(SudokuConfig::small(scheme, 256, 16)).unwrap()
    }

    fn populate(cache: &mut SudokuCache<DenseStore>) -> Vec<LineData> {
        let n = cache.config().geometry.lines();
        let mut golden = Vec::with_capacity(n as usize);
        for i in 0..n {
            let d = data_with(&[(i as usize * 37) % 512, (i as usize * 151 + 3) % 512]);
            cache.write(i, &d);
            golden.push(d);
        }
        golden
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut cache = small_cache(Scheme::Z);
        let golden = populate(&mut cache);
        for (i, d) in golden.iter().enumerate() {
            assert_eq!(cache.read(i as u64).unwrap(), *d);
        }
    }

    #[test]
    fn single_bit_fault_repaired_on_read() {
        let mut cache = small_cache(Scheme::X);
        let golden = populate(&mut cache);
        cache.inject_fault(10, 77);
        assert_eq!(cache.read(10).unwrap(), golden[10]);
        assert_eq!(cache.stats().ecc1_repairs, 1);
        assert!(cache.is_line_valid(10));
    }

    #[test]
    fn multibit_fault_repaired_by_raid4() {
        let mut cache = small_cache(Scheme::X);
        let golden = populate(&mut cache);
        for bit in [3, 88, 200, 452] {
            cache.inject_fault(33, bit);
        }
        assert_eq!(cache.read(33).unwrap(), golden[33]);
        assert_eq!(cache.stats().raid4_repairs, 1);
    }

    #[test]
    fn sudoku_x_fails_on_two_multibit_lines_in_one_group() {
        let mut cache = small_cache(Scheme::X);
        let _ = populate(&mut cache);
        // Lines 0 and 1 share a Hash-1 group (group of 16 consecutive).
        cache.inject_fault(0, 5);
        cache.inject_fault(0, 6);
        cache.inject_fault(1, 7);
        cache.inject_fault(1, 8);
        let report = cache.scrub();
        assert_eq!(report.unresolved.len(), 2, "{report:?}");
    }

    #[test]
    fn sudoku_y_sdr_repairs_two_double_fault_lines() {
        // Paper Figure 3(a): non-overlapping faults — SDR fixes one line,
        // RAID-4 fixes the other.
        let mut cache = small_cache(Scheme::Y);
        let golden = populate(&mut cache);
        cache.inject_fault(0, 5);
        cache.inject_fault(0, 6);
        cache.inject_fault(1, 7);
        cache.inject_fault(1, 8);
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert!(report.sdr_repairs >= 1);
        assert_eq!(cache.read(0).unwrap(), golden[0]);
        assert_eq!(cache.read(1).unwrap(), golden[1]);
    }

    #[test]
    fn sudoku_y_sdr_one_overlapping_fault() {
        // Paper Figure 3(b): one shared fault position still repairs.
        let mut cache = small_cache(Scheme::Y);
        let golden = populate(&mut cache);
        cache.inject_fault(2, 100);
        cache.inject_fault(2, 200);
        cache.inject_fault(3, 100); // overlap at 100
        cache.inject_fault(3, 300);
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert_eq!(cache.read(2).unwrap(), golden[2]);
        assert_eq!(cache.read(3).unwrap(), golden[3]);
    }

    #[test]
    fn sudoku_y_fails_on_fully_overlapping_faults() {
        // Paper Figure 3(c): both fault positions shared — no mismatches,
        // SDR cannot act, Y reports DUE.
        let mut cache = small_cache(Scheme::Y);
        let _ = populate(&mut cache);
        cache.inject_fault(4, 100);
        cache.inject_fault(4, 200);
        cache.inject_fault(5, 100);
        cache.inject_fault(5, 200);
        let report = cache.scrub();
        assert_eq!(report.unresolved, vec![4, 5]);
    }

    #[test]
    fn sudoku_z_recovers_fully_overlapping_faults_via_hash2() {
        // The same pattern Y cannot fix: under Hash-2 the two lines land in
        // different groups and each is the lone casualty there.
        let mut cache = small_cache(Scheme::Z);
        let golden = populate(&mut cache);
        cache.inject_fault(4, 100);
        cache.inject_fault(4, 200);
        cache.inject_fault(5, 100);
        cache.inject_fault(5, 200);
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert!(report.hash2_repairs >= 1, "{report:?}");
        assert_eq!(cache.read(4).unwrap(), golden[4]);
        assert_eq!(cache.read(5).unwrap(), golden[5]);
    }

    #[test]
    fn sudoku_z_figure6_scenario() {
        // Paper Figure 6: two lines with three faults each in one Hash-1
        // group; correction succeeds through Hash-2.
        let mut cache = small_cache(Scheme::Z);
        let golden = populate(&mut cache);
        for bit in [10, 20, 30] {
            cache.inject_fault(1, bit); // "line B"
        }
        for bit in [11, 21, 31] {
            cache.inject_fault(3, bit); // "line D"
        }
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert_eq!(cache.read(1).unwrap(), golden[1]);
        assert_eq!(cache.read(3).unwrap(), golden[3]);
    }

    #[test]
    fn three_faulty_lines_two_bits_each_repaired_by_y() {
        // Paper §IV-C: three two-bit-faulty lines → six mismatches; SDR
        // still succeeds (99.9% of the time; this pattern has no overlaps).
        let mut cache = small_cache(Scheme::Y);
        let golden = populate(&mut cache);
        cache.inject_fault(16, 1);
        cache.inject_fault(16, 2);
        cache.inject_fault(17, 3);
        cache.inject_fault(17, 4);
        cache.inject_fault(18, 5);
        cache.inject_fault(18, 6);
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        for idx in [16u64, 17, 18] {
            assert_eq!(cache.read(idx).unwrap(), golden[idx as usize]);
        }
    }

    #[test]
    fn pair_sdr_extension_rescues_two_triple_fault_lines_without_hash2() {
        // The pattern that defeats the paper's single-flip SDR under Y
        // (two 3-fault lines) but needs no second hash with pair trials.
        let build = |pair: bool| {
            let mut config = SudokuConfig::small(Scheme::Y, 256, 16);
            config.sdr_pair_trials = pair;
            let mut cache = SudokuCache::new(config).unwrap();
            let golden = populate(&mut cache);
            for bit in [10, 20, 30] {
                cache.inject_fault(1, bit);
            }
            for bit in [11, 21, 31] {
                cache.inject_fault(3, bit);
            }
            (cache, golden)
        };
        let (mut plain, _) = build(false);
        assert_eq!(plain.scrub().unresolved.len(), 2, "paper design fails");
        let (mut paired, golden) = build(true);
        let report = paired.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert_eq!(paired.read(1).unwrap(), golden[1]);
        assert_eq!(paired.read(3).unwrap(), golden[3]);
    }

    #[test]
    fn pair_sdr_does_not_regress_standard_cases() {
        let mut config = SudokuConfig::small(Scheme::Y, 256, 16);
        config.sdr_pair_trials = true;
        let mut cache = SudokuCache::new(config).unwrap();
        let golden = populate(&mut cache);
        cache.inject_fault(0, 5);
        cache.inject_fault(0, 6);
        cache.inject_fault(1, 7);
        cache.inject_fault(1, 8);
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert_eq!(cache.read(0).unwrap(), golden[0]);
        assert_eq!(cache.read(1).unwrap(), golden[1]);
    }

    #[test]
    fn sdr_respects_mismatch_cap() {
        // Four faulty lines × 2 bits = 8 mismatches > 6: SDR must not even
        // try (paper §IV-C), so Y leaves all four unresolved.
        let mut cache = small_cache(Scheme::Y);
        let _ = populate(&mut cache);
        for (line, base) in [(16u64, 1usize), (17, 3), (18, 5), (19, 7)] {
            cache.inject_fault(line, base);
            cache.inject_fault(line, base + 100);
        }
        let report = cache.scrub();
        assert_eq!(report.unresolved.len(), 4, "{report:?}");
        assert_eq!(report.sdr_repairs, 0);
    }

    #[test]
    fn write_to_faulty_line_keeps_parity_consistent() {
        let mut cache = small_cache(Scheme::Z);
        let golden = populate(&mut cache);
        // Corrupt line 8, then overwrite it logically.
        cache.inject_fault(8, 50);
        cache.inject_fault(8, 51);
        let new = data_with(&[9, 19, 29]);
        cache.write(8, &new);
        assert_eq!(cache.read(8).unwrap(), new);
        // Parity must still protect the *other* lines of the group.
        for bit in [101, 202, 303] {
            cache.inject_fault(9, bit);
        }
        assert_eq!(cache.read(9).unwrap(), golden[9]);
    }

    #[test]
    fn scrub_with_hints_equals_full_scrub() {
        let build = || {
            let mut c = small_cache(Scheme::Z);
            populate(&mut c);
            c.inject_fault(0, 1);
            c.inject_fault(0, 2);
            c.inject_fault(40, 7);
            c
        };
        let mut full = build();
        let mut hinted = build();
        let r1 = full.scrub();
        let r2 = hinted.scrub_lines(&[0, 40]);
        assert_eq!(r1.unresolved, r2.unresolved);
        assert_eq!(r1.sdr_repairs, r2.sdr_repairs);
        for i in 0..256 {
            assert_eq!(full.stored_line(i), hinted.stored_line(i), "line {i}");
        }
    }

    #[test]
    fn zero_fast_path_matches_reference_scrub() {
        // Dense store, golden-zero data: every clean group member is a
        // materialized all-zero line, which only the fast path may skip.
        let build = || {
            let config = SudokuConfig::small(Scheme::Z, 256, 16);
            let mut c = SudokuCache::new(config).unwrap();
            c.inject_fault(7, 1);
            c.inject_fault(7, 2);
            c.inject_fault(8, 3);
            c.inject_fault(8, 4);
            c.inject_fault(100, 550);
            c
        };
        let mut fast = build();
        let mut reference = build();
        let r1 = fast.scrub_lines(&[7, 8, 100]);
        let r2 = reference.scrub_lines_reference(&[7, 8, 100]);
        assert_eq!(r1, r2);
        for i in 0..256 {
            assert_eq!(fast.stored_line(i), reference.stored_line(i), "line {i}");
        }
        // The fast path must have skipped CRC work the reference performed.
        assert!(fast.stats().crc_checks < reference.stats().crc_checks);
    }

    #[test]
    fn uncorrectable_read_returns_error() {
        let mut cache = small_cache(Scheme::X);
        let _ = populate(&mut cache);
        // Two multibit lines in one group defeat SuDoku-X.
        cache.inject_fault(0, 5);
        cache.inject_fault(0, 6);
        cache.inject_fault(1, 7);
        cache.inject_fault(1, 8);
        assert_eq!(cache.read(0), Err(UncorrectableError { line: 0 }));
        assert!(cache.stats().due_lines >= 1);
    }

    #[test]
    fn plt_write_traffic_counts_both_tables() {
        let mut cache = small_cache(Scheme::Z);
        let _ = populate(&mut cache);
        // 256 writes × 2 PLTs.
        assert_eq!(cache.plt_write_count(), 512);
    }

    #[test]
    fn faults_in_metadata_region_are_recoverable_too() {
        let mut cache = small_cache(Scheme::Y);
        let golden = populate(&mut cache);
        // Multi-bit faults spanning CRC and ECC fields of two grouped lines.
        cache.inject_fault(0, 515);
        cache.inject_fault(0, 545);
        cache.inject_fault(1, 520);
        cache.inject_fault(1, 549);
        let report = cache.scrub();
        assert!(report.fully_repaired(), "{report:?}");
        assert_eq!(cache.read(0).unwrap(), golden[0]);
        assert_eq!(cache.read(1).unwrap(), golden[1]);
    }

    #[test]
    fn event_log_records_the_ladder() {
        let mut cache = small_cache(Scheme::Z);
        let golden = populate(&mut cache);
        cache.inject_fault(7, 100); // single
        let _ = cache.read(7);
        for bit in [1, 2, 3] {
            cache.inject_fault(20, bit); // RAID-4
        }
        let _ = cache.read(20);
        cache.inject_fault(32, 11);
        cache.inject_fault(32, 22);
        cache.inject_fault(33, 33);
        cache.inject_fault(33, 44);
        cache.scrub_lines(&[32, 33]); // SDR + RAID-4
        let repairs: Vec<Mechanism> = cache
            .events()
            .filter(|e| e.outcome == Outcome::Repaired)
            .map(|e| e.mechanism)
            .collect();
        assert!(repairs.contains(&Mechanism::Ecc1));
        assert!(repairs.contains(&Mechanism::Raid4));
        assert!(repairs.contains(&Mechanism::Sdr));
        assert!(cache.events().all(|e| e.mechanism != Mechanism::Due));
        // The multi-bit detections and the blocked-RAID-4 escalation are
        // part of the recorded chain too.
        assert!(cache
            .events()
            .any(|e| e.mechanism == Mechanism::CrcDetect && e.line == 20));
        assert!(cache
            .events()
            .any(|e| e.mechanism == Mechanism::Raid4 && e.outcome == Outcome::Blocked));
        assert_eq!(cache.read(32).unwrap(), golden[32]);
        cache.clear_events();
        assert!(cache.events().next().is_none());
    }

    #[test]
    fn event_log_records_due_with_line() {
        let mut cache = small_cache(Scheme::X);
        let _ = populate(&mut cache);
        cache.inject_fault(0, 1);
        cache.inject_fault(0, 2);
        cache.inject_fault(1, 3);
        cache.inject_fault(1, 4);
        cache.scrub();
        let dues: Vec<u64> = cache
            .events()
            .filter(|e| e.mechanism == Mechanism::Due)
            .map(|e| e.line)
            .collect();
        assert_eq!(dues, vec![0, 1]);
    }

    #[test]
    fn disabled_recorder_keeps_stats_and_results_identical() {
        let build = |recorder: Recorder| {
            let mut c = small_cache(Scheme::Z);
            let _ = c.set_recorder(recorder);
            populate(&mut c);
            c.inject_fault(4, 100);
            c.inject_fault(4, 200);
            c.inject_fault(5, 100);
            c.inject_fault(5, 200);
            let report = c.scrub();
            (c, report)
        };
        let (on, r_on) = build(Recorder::unbounded());
        let (off, r_off) = build(Recorder::disabled());
        assert_eq!(r_on, r_off);
        assert_eq!(on.stats(), off.stats());
        assert!(on.events().count() > 0);
        assert_eq!(off.events().count(), 0);
        assert!(off.recorder().hists.is_empty());
        assert!(off.recorder().phases.is_empty());
    }

    #[test]
    fn recorder_histograms_track_recovery_work() {
        let mut cache = small_cache(Scheme::Y);
        let _ = cache.set_recorder(Recorder::unbounded());
        let _ = populate(&mut cache);
        cache.inject_fault(0, 5);
        cache.inject_fault(0, 6);
        cache.inject_fault(1, 7);
        cache.inject_fault(1, 8);
        let report = cache.scrub();
        assert!(report.fully_repaired());
        let hists = &cache.recorder().hists;
        assert!(hists.sdr_trials_per_resurrection.count() >= 1);
        assert_eq!(hists.group_scan_lines.max(), 16);
        assert!(hists.line_recovery_ns.count() > 0);
        // The Recover span was timed.
        assert!(cache.recorder().phases.spans(Phase::Recover) >= 1);
        // SDR trial counts on events add up to the stats counter.
        let event_trials: u64 = cache
            .events()
            .filter(|e| e.mechanism == Mechanism::Sdr)
            .map(|e| e.trials as u64)
            .sum();
        assert_eq!(event_trials, cache.stats().sdr_trials);
    }

    #[test]
    fn reset_to_golden_zero_equals_fresh_cache() {
        let config = SudokuConfig::small(Scheme::Z, 256, 16);
        let mut reused = SudokuCache::new_sparse(config).unwrap();
        // Dirty everything: writes (PLT deltas), faults, a scrub, leftovers.
        reused.write(3, &data_with(&[1, 2, 3]));
        reused.inject_fault(9, 10);
        reused.inject_fault(9, 20);
        reused.inject_fault(10, 10);
        reused.inject_fault(10, 20);
        let _ = reused.scrub_lines(&[9, 10]);
        reused.reset_to_golden_zero();
        assert_eq!(reused.store().materialized(), 0);
        assert!(reused.events().next().is_none());

        // The reused arena must now behave exactly like a fresh cache.
        let mut fresh = SudokuCache::new_sparse(config).unwrap();
        for c in [&mut reused, &mut fresh] {
            c.inject_fault(7, 1);
            c.inject_fault(7, 2);
            c.inject_fault(8, 3);
            c.inject_fault(8, 4);
        }
        let r1 = reused.scrub_lines(&[7, 8]);
        let r2 = fresh.scrub_lines(&[7, 8]);
        assert_eq!(r1, r2);
        for i in 0..256 {
            assert_eq!(reused.stored_line(i), fresh.stored_line(i), "line {i}");
        }
    }

    #[test]
    fn sparse_cache_behaves_like_dense_for_zero_data() {
        let config = SudokuConfig::small(Scheme::Z, 256, 16);
        let mut cache = SudokuCache::new_sparse(config).unwrap();
        cache.inject_fault(7, 1);
        cache.inject_fault(7, 2);
        cache.inject_fault(8, 3);
        cache.inject_fault(8, 4);
        let report = cache.scrub_lines(&[7, 8]);
        assert!(report.fully_repaired(), "{report:?}");
        assert!(cache.is_line_valid(7) && cache.is_line_valid(8));
        assert_eq!(cache.store().materialized(), 0, "faults fully reverted");
    }
}
