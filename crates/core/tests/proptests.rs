//! Property-based tests for the SuDoku cache invariants.

use proptest::collection::{btree_set, vec};
use proptest::prelude::*;
use sudoku_codes::{LineData, TOTAL_BITS};
use sudoku_core::{HashDim, Scheme, SkewedHashes, SudokuCache, SudokuConfig};

const LINES: u64 = 256;
const GROUP: u32 = 16;

fn golden(i: u64) -> LineData {
    let mut d = LineData::zero();
    d.set_bit((i as usize * 41) % 512, true);
    d.set_bit((i as usize * 7 + 99) % 512, true);
    d
}

fn populated(scheme: Scheme) -> SudokuCache {
    let mut cache =
        SudokuCache::new(SudokuConfig::small(scheme, LINES, GROUP)).expect("valid config");
    for i in 0..LINES {
        cache.write(i, &golden(i));
    }
    cache
}

/// A random fault pattern: map line → set of distinct bit positions.
fn arb_faults(
    max_lines: usize,
    max_faults_per_line: usize,
) -> impl Strategy<Value = Vec<(u64, Vec<usize>)>> {
    vec(
        (
            0..LINES,
            btree_set(0usize..TOTAL_BITS, 1..=max_faults_per_line),
        ),
        0..=max_lines,
    )
    .prop_map(|v| {
        // Deduplicate lines, keeping the first pattern.
        let mut seen = std::collections::BTreeSet::new();
        v.into_iter()
            .filter(|(l, _)| seen.insert(*l))
            .map(|(l, s)| (l, s.into_iter().collect()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The fundamental safety invariant: with ≤7 faults per line (CRC-31's
    /// guaranteed detection range) the cache either restores golden data
    /// or reports a DUE — it never silently serves wrong data.
    #[test]
    fn never_silent_corruption(faults in arb_faults(12, 7)) {
        let mut cache = populated(Scheme::Z);
        let mut hints = Vec::new();
        for (line, bits) in &faults {
            for &b in bits {
                cache.inject_fault(*line, b);
            }
            hints.push(*line);
        }
        let report = cache.scrub_lines(&hints);
        for i in 0..LINES {
            match cache.read(i) {
                Ok(data) => prop_assert_eq!(data, golden(i), "line {} corrupted", i),
                Err(e) => prop_assert!(
                    report.unresolved.contains(&e.line),
                    "DUE for line {} not reported by scrub", e.line
                ),
            }
        }
    }

    /// Single-fault-per-line patterns are always fully repaired by ECC-1,
    /// regardless of how many lines are hit.
    #[test]
    fn all_single_faults_always_repaired(faults in arb_faults(40, 1)) {
        let mut cache = populated(Scheme::X);
        let mut hints = Vec::new();
        for (line, bits) in &faults {
            cache.inject_fault(*line, bits[0]);
            hints.push(*line);
        }
        let report = cache.scrub_lines(&hints);
        prop_assert!(report.fully_repaired(), "{:?}", report);
        for i in 0..LINES {
            prop_assert_eq!(cache.read(i).expect("readable"), golden(i));
        }
    }

    /// Scrub is idempotent: a second pass right after the first finds
    /// nothing new to repair (when the first pass repaired everything).
    #[test]
    fn scrub_idempotent_after_success(faults in arb_faults(6, 3)) {
        let mut cache = populated(Scheme::Z);
        for (line, bits) in &faults {
            for &b in bits {
                cache.inject_fault(*line, b);
            }
        }
        let first = cache.scrub();
        prop_assume!(first.fully_repaired());
        let second = cache.scrub();
        prop_assert_eq!(second.ecc1_repairs, 0);
        prop_assert_eq!(second.multibit_lines, 0);
        prop_assert!(second.fully_repaired());
    }

    /// Stronger schemes never resolve fewer lines than weaker ones on the
    /// identical fault pattern.
    #[test]
    fn ladder_monotone_on_any_pattern(faults in arb_faults(8, 4)) {
        let mut unresolved = Vec::new();
        for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
            let mut cache = populated(scheme);
            for (line, bits) in &faults {
                for &b in bits {
                    cache.inject_fault(*line, b);
                }
            }
            unresolved.push(cache.scrub().unresolved.len());
        }
        prop_assert!(unresolved[0] >= unresolved[1], "{:?}", unresolved);
        prop_assert!(unresolved[1] >= unresolved[2], "{:?}", unresolved);
    }

    /// Writes after arbitrary fault/scrub history always read back.
    #[test]
    fn writes_always_win(
        faults in arb_faults(6, 3),
        target in 0..LINES,
        payload_bit in 0usize..512
    ) {
        let mut cache = populated(Scheme::Z);
        for (line, bits) in &faults {
            for &b in bits {
                cache.inject_fault(*line, b);
            }
        }
        let mut d = LineData::zero();
        d.set_bit(payload_bit, true);
        cache.write(target, &d);
        prop_assert_eq!(cache.read(target).expect("just written"), d);
    }

    /// Skewed-hash disjointness at arbitrary valid sizes.
    #[test]
    fn skewed_hash_disjointness(bits in 2u32..5, mult in 1u64..5) {
        let group = 1u32 << bits;
        let lines = (group as u64 * group as u64) * mult;
        let h = SkewedHashes::new(lines, group).expect("valid");
        prop_assert!(h.hash2_guaranteed());
        // Sample pairs rather than the full quadratic space.
        for a in (0..lines).step_by(7) {
            for b in (a + 1..lines).step_by(11) {
                let same1 = h.group_of(HashDim::H1, a) == h.group_of(HashDim::H1, b);
                let same2 = h.group_of(HashDim::H2, a) == h.group_of(HashDim::H2, b);
                prop_assert!(!(same1 && same2), "{a} {b}");
            }
        }
    }

    /// The all-zero-word scrub fast path is observation-equivalent: on a
    /// golden-zero cache under any fault plan, the optimized scrub returns
    /// a byte-identical `ScrubReport` and stored lines vs the reference
    /// path that checks every line's CRC.
    #[test]
    fn zero_fast_path_reports_identical(faults in arb_faults(12, 7)) {
        let config = SudokuConfig::small(Scheme::Z, LINES, GROUP);
        let mut fast = SudokuCache::new(config).expect("valid config");
        let mut reference = SudokuCache::new(config).expect("valid config");
        let mut hints = Vec::new();
        for (line, bits) in &faults {
            for &b in bits {
                fast.inject_fault(*line, b);
                reference.inject_fault(*line, b);
            }
            hints.push(*line);
        }
        let r_fast = fast.scrub_lines(&hints);
        let r_ref = reference.scrub_lines_reference(&hints);
        prop_assert_eq!(r_fast, r_ref);
        for i in 0..LINES {
            prop_assert_eq!(fast.stored_line(i), reference.stored_line(i), "line {}", i);
        }
    }
}
