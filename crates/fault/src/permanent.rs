//! Permanent (stuck-at) fault support.
//!
//! The paper notes (§I, §VI) that while SuDoku targets transient faults, it
//! also tolerates permanent faults — e.g. SRAM cells that persistently fail
//! below V_min — without the boot-time testing prior schemes require. A
//! [`StuckBitMap`] models such cells: after every write, the stuck bits
//! reassert their stuck value.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use sudoku_codes::{ProtectedLine, TOTAL_BITS};

/// A stuck-at fault: the bit always reads back `stuck_value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckBit {
    /// Stored-bit position within the line (0..553).
    pub bit: u16,
    /// The value the cell is stuck at.
    pub stuck_value: bool,
}

/// Map from line index to that line's stuck bits.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckBitMap {
    faults: BTreeMap<u64, Vec<StuckBit>>,
}

impl StuckBitMap {
    /// An empty map (no permanent faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a map where each stored bit of each of `n_lines` lines is
    /// permanently faulty with probability `ber`, stuck at a random value.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n_lines: u64, ber: f64) -> Self {
        let mut faults: BTreeMap<u64, Vec<StuckBit>> = BTreeMap::new();
        let p_line = -((TOTAL_BITS as f64) * (-ber).ln_1p()).exp_m1();
        let n_faulty = crate::injector::sample_binomial(rng, n_lines, p_line);
        for line in crate::injector::choose_distinct(rng, n_lines, n_faulty) {
            let k = crate::injector::sample_binomial_at_least_one(rng, TOTAL_BITS as u64, ber);
            let bits = crate::injector::choose_distinct(rng, TOTAL_BITS as u64, k);
            faults.insert(
                line,
                bits.into_iter()
                    .map(|b| StuckBit {
                        bit: b as u16,
                        stuck_value: rng.gen(),
                    })
                    .collect(),
            );
        }
        StuckBitMap { faults }
    }

    /// Adds a stuck bit to a line.
    pub fn insert(&mut self, line: u64, bit: u16, stuck_value: bool) {
        assert!((bit as usize) < TOTAL_BITS, "bit index out of range");
        self.faults
            .entry(line)
            .or_default()
            .push(StuckBit { bit, stuck_value });
    }

    /// Number of lines with at least one stuck bit.
    pub fn faulty_lines(&self) -> usize {
        self.faults.len()
    }

    /// Total number of stuck bits.
    pub fn total_stuck_bits(&self) -> usize {
        self.faults.values().map(Vec::len).sum()
    }

    /// The stuck bits of `line`, if any.
    pub fn stuck_bits(&self, line: u64) -> Option<&[StuckBit]> {
        self.faults.get(&line).map(Vec::as_slice)
    }

    /// Whether `line` has at least one stuck bit.
    pub fn is_stuck(&self, line: u64) -> bool {
        self.faults.contains_key(&line)
    }

    /// Whether the map has no stuck bits at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The lines with at least one stuck bit, ascending.
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.faults.keys().copied()
    }

    /// A new map holding only the lines `keep` accepts — e.g. the slice of
    /// the physical fault population owned by one shard.
    pub fn subset<F: FnMut(u64) -> bool>(&self, mut keep: F) -> StuckBitMap {
        StuckBitMap {
            faults: self
                .faults
                .iter()
                .filter(|(&l, _)| keep(l))
                .map(|(&l, v)| (l, v.clone()))
                .collect(),
        }
    }

    /// Reasserts the stuck values onto a stored line (call after every
    /// write to that line). Returns how many bits actually changed.
    pub fn apply(&self, line: u64, stored: &mut ProtectedLine) -> usize {
        let Some(bits) = self.faults.get(&line) else {
            return 0;
        };
        let mut changed = 0;
        for sb in bits {
            if stored.bit(sb.bit as usize) != sb.stuck_value {
                stored.flip_bit(sb.bit as usize);
                changed += 1;
            }
        }
        changed
    }

    /// Iterates over `(line, stuck bits)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[StuckBit])> {
        self.faults.iter().map(|(l, v)| (*l, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sudoku_codes::{LineCodec, LineData};

    #[test]
    fn empty_map_changes_nothing() {
        let map = StuckBitMap::new();
        let mut line = LineCodec::shared().encode(&LineData::zero());
        let golden = line;
        assert_eq!(map.apply(0, &mut line), 0);
        assert_eq!(line, golden);
    }

    #[test]
    fn stuck_bit_reasserts_after_write() {
        let mut map = StuckBitMap::new();
        map.insert(7, 100, true);
        let codec = LineCodec::shared();
        let mut line = codec.encode(&LineData::zero()); // bit 100 is 0
        assert_eq!(map.apply(7, &mut line), 1);
        assert!(line.bit(100));
        // Re-applying is idempotent.
        assert_eq!(map.apply(7, &mut line), 0);
    }

    #[test]
    fn stuck_value_false_clears_set_bit() {
        let mut map = StuckBitMap::new();
        map.insert(0, 5, false);
        let codec = LineCodec::shared();
        let mut data = LineData::zero();
        data.set_bit(5, true);
        let mut line = codec.encode(&data);
        assert_eq!(map.apply(0, &mut line), 1);
        assert!(!line.bit(5));
    }

    #[test]
    fn random_map_density_matches_ber() {
        let mut rng = StdRng::seed_from_u64(11);
        let map = StuckBitMap::random(&mut rng, 10_000, 1e-3);
        // Expected stuck bits: 10_000 × 553 × 1e-3 ≈ 5530.
        let total = map.total_stuck_bits() as f64;
        assert!((4800.0..6300.0).contains(&total), "{total}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_rejected() {
        StuckBitMap::new().insert(0, 600, true);
    }

    #[test]
    fn subset_and_lookups() {
        let mut map = StuckBitMap::new();
        map.insert(1, 10, true);
        map.insert(4, 20, false);
        map.insert(9, 30, true);
        assert!(map.is_stuck(4));
        assert!(!map.is_stuck(5));
        assert!(!map.is_empty());
        assert_eq!(map.lines().collect::<Vec<_>>(), vec![1, 4, 9]);
        let odd = map.subset(|l| l % 2 == 1);
        assert_eq!(odd.lines().collect::<Vec<_>>(), vec![1, 9]);
        assert_eq!(odd.total_stuck_bits(), 2);
        assert!(StuckBitMap::new().is_empty());
    }
}
