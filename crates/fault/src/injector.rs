//! Seeded transient-fault injection.
//!
//! Transient retention failures strike every stored bit independently with
//! the per-interval BER (paper §II-B). The injector offers two granularities:
//!
//! * **per line** — flip each of the 553 stored bits with probability `ber`
//!   (used by functional tests and small caches);
//! * **per cache plan** — sample *which* lines are faulty and *how many*
//!   faults each has, without materializing clean lines. At BER 5.3×10⁻⁶
//!   a 64 MB cache sees only ≈ 1700 faulty lines per 20 ms interval out of
//!   a million, so Monte-Carlo campaigns over full-size caches stay cheap.
//!
//! All sampling is exact binomial (inversion from k = 0) when n·p is small
//! — always true per line — and switches to a normal approximation only for
//! cache-level counts with n·p > 10⁴, where the relative error is < 10⁻³.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sudoku_codes::{ProtectedLine, TOTAL_BITS};

/// Draws from Binomial(n, p) — exact inversion for small n·p, normal
/// approximation (continuity-corrected, clamped) for large n·p.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 || n == 0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    let np = n as f64 * p;
    if np <= 1e4 && p < 0.1 {
        // Exact inversion. pmf(0) = exp(n·ln(1−p)) does not underflow for
        // n·p ≤ 1e4 only when np ≲ 700; chain through Poisson-like scaling
        // otherwise by falling to the normal branch.
        if np <= 500.0 {
            let mut u: f64 = rng.gen();
            let q = p / (1.0 - p);
            let mut pmf = ((n as f64) * ln_one_minus(p)).exp();
            let mut k = 0u64;
            loop {
                if u <= pmf || k >= n {
                    return k;
                }
                u -= pmf;
                pmf *= (n - k) as f64 / (k + 1) as f64 * q;
                k += 1;
                if pmf < 1e-300 && u > 0.0 {
                    // Numerical tail exhaustion: extremely unlikely draw.
                    return k;
                }
            }
        }
    }
    // Normal approximation.
    let mean = np;
    let sd = (np * (1.0 - p)).sqrt();
    let z = standard_normal(rng);
    let k = (mean + sd * z).round();
    k.clamp(0.0, n as f64) as u64
}

/// Draws from Binomial(n, p) conditioned on the result being ≥ 1.
///
/// Used to populate the fault count of a line already known to be faulty.
pub fn sample_binomial_at_least_one<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    let p0 = ((n as f64) * ln_one_minus(p)).exp();
    let scale = 1.0 - p0; // P(K >= 1)
    let mut u: f64 = rng.gen::<f64>() * scale;
    let q = p / (1.0 - p);
    let mut pmf = p0 * n as f64 * q; // pmf(1)
    let mut k = 1u64;
    loop {
        if u <= pmf || k >= n {
            return k;
        }
        u -= pmf;
        pmf *= (n - k) as f64 / (k + 1) as f64 * q;
        k += 1;
        if pmf < 1e-300 {
            return k;
        }
    }
}

/// Box–Muller standard normal draw.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// ln(1 − p) without catastrophic cancellation for tiny p.
#[inline]
fn ln_one_minus(p: f64) -> f64 {
    (-p).ln_1p()
}

/// Chooses `k` distinct values in `0..n`, ascending.
pub fn choose_distinct<R: Rng + ?Sized>(rng: &mut R, n: u64, k: u64) -> Vec<u64> {
    assert!(k <= n, "cannot choose {k} distinct values from {n}");
    if k == 0 {
        return Vec::new();
    }
    if k == 1 {
        // A single draw cannot collide; skip the set machinery. Consumes
        // one `gen_range` like both general paths below, so the RNG stream
        // (and hence every downstream trial) is unchanged.
        return vec![rng.gen_range(0..n)];
    }
    if k * 3 >= n {
        // Dense: partial Fisher-Yates over an index vector.
        let mut idx: Vec<u64> = (0..n).collect();
        for i in 0..k as usize {
            let j = rng.gen_range(i..n as usize);
            idx.swap(i, j);
        }
        let mut out = idx[..k as usize].to_vec();
        out.sort_unstable();
        out
    } else if k <= 16 {
        // Sparse, tiny k: rejection sampling with a linear-scan dedup —
        // same accept/reject per draw as the set-based path, no heap
        // beyond the output vector.
        let mut out: Vec<u64> = Vec::with_capacity(k as usize);
        while (out.len() as u64) < k {
            let x = rng.gen_range(0..n);
            if !out.contains(&x) {
                out.push(x);
            }
        }
        out.sort_unstable();
        out
    } else {
        // Sparse: rejection sampling (hash set + one sort; the accepted
        // value sequence matches an ordered-set implementation exactly).
        let mut set = std::collections::HashSet::with_capacity(k as usize);
        while (set.len() as u64) < k {
            set.insert(rng.gen_range(0..n));
        }
        let mut out: Vec<u64> = set.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// One faulty line in a cache-level fault plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineFaults {
    /// Index of the faulty line within the cache.
    pub line: u64,
    /// Number of faulty stored bits (≥ 1, ≤ 553).
    pub faults: u32,
}

/// Records a sampled fault plan into `recorder`: one `Inject` event per
/// faulty line (`trials` = injected fault bits) plus the faults-per-line
/// histogram. Touches no RNG, so observing a plan never perturbs the
/// deterministic trial stream.
pub fn observe_plan(plan: &[LineFaults], recorder: &mut sudoku_obs::Recorder) {
    if !recorder.enabled() {
        return;
    }
    for lf in plan {
        recorder.emit(sudoku_obs::RecoveryEvent {
            interval: 0, // stamped by the recorder
            trace: 0,    // stamped by the recorder
            line: lf.line,
            group: None,
            hash_dim: None,
            mechanism: sudoku_obs::Mechanism::Inject,
            outcome: sudoku_obs::Outcome::Injected,
            trials: lf.faults,
        });
        recorder.hists.faults_per_line.record(lf.faults as u64);
    }
}

/// A deterministic, seeded transient-fault injector.
///
/// # Examples
///
/// ```
/// use sudoku_fault::FaultInjector;
/// use sudoku_codes::{LineCodec, LineData};
///
/// let mut injector = FaultInjector::new(5.3e-6, 42);
/// let mut line = LineCodec::shared().encode(&LineData::zero());
/// let flipped = injector.inject_line(&mut line);
/// // At this BER a single line almost never faults in one interval.
/// assert!(flipped.len() <= 553);
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    ber: f64,
    seed: u64,
    rng: StdRng,
}

impl FaultInjector {
    /// An injector flipping each stored bit with probability `ber` per
    /// injection round, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `[0, 1)`.
    pub fn new(ber: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&ber), "ber must be in [0, 1)");
        FaultInjector {
            ber,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// The seed this injector was created (or last reseeded) with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-seeds the injector in place, restoring the exact state of
    /// `FaultInjector::new(self.ber(), seed)` without reconstructing it.
    /// Campaign workers use this to reuse a per-worker injector across
    /// trials while keeping each trial's fault stream deterministic in its
    /// trial seed alone.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// A fresh injector with the same BER on an independent deterministic
    /// stream: stream `s` of seed `k` always yields the same injector, and
    /// distinct streams decorrelate via SplitMix64 mixing. A sharded
    /// service forks one injector per shard so concurrent injection stays
    /// reproducible regardless of thread interleaving.
    pub fn fork(&self, stream: u64) -> FaultInjector {
        FaultInjector::new(self.ber, splitmix64(self.seed ^ splitmix64(stream)))
    }

    /// Mutable access to the underlying RNG (for composed samplers).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Injects faults into every stored bit of one line; returns the flipped
    /// positions (ascending).
    pub fn inject_line(&mut self, line: &mut ProtectedLine) -> Vec<usize> {
        let k = sample_binomial(&mut self.rng, TOTAL_BITS as u64, self.ber);
        let positions = choose_distinct(&mut self.rng, TOTAL_BITS as u64, k);
        for &pos in &positions {
            line.flip_bit(pos as usize);
        }
        positions.into_iter().map(|p| p as usize).collect()
    }

    /// Injects exactly `k` faults at random distinct positions of one line.
    pub fn inject_exactly(&mut self, line: &mut ProtectedLine, k: u32) -> Vec<usize> {
        let positions = choose_distinct(&mut self.rng, TOTAL_BITS as u64, k as u64);
        for &pos in &positions {
            line.flip_bit(pos as usize);
        }
        positions.into_iter().map(|p| p as usize).collect()
    }

    /// Injects a *burst*: `width` adjacent stored bits flipped starting at
    /// a random position — the spatially correlated signature of particle
    /// strikes and disturb faults (paper §VI, Table V). Returns the flipped
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds the stored line length.
    pub fn inject_burst(&mut self, line: &mut ProtectedLine, width: u32) -> Vec<usize> {
        assert!(
            width >= 1 && (width as usize) <= TOTAL_BITS,
            "burst width must be in 1..=553"
        );
        let start = self.rng.gen_range(0..=(TOTAL_BITS - width as usize));
        let positions: Vec<usize> = (start..start + width as usize).collect();
        for &pos in &positions {
            line.flip_bit(pos);
        }
        positions
    }

    /// Samples a cache-level fault plan for one scrub interval: which of
    /// `n_lines` lines are faulty, and with how many faulty bits each.
    ///
    /// Equivalent in distribution to flipping every bit of every line
    /// independently, but only O(faulty lines) work.
    pub fn cache_plan(&mut self, n_lines: u64) -> Vec<LineFaults> {
        let p_line = -((TOTAL_BITS as f64) * (-self.ber).ln_1p()).exp_m1();
        let faulty = sample_binomial(&mut self.rng, n_lines, p_line);
        let lines = choose_distinct(&mut self.rng, n_lines, faulty);
        lines
            .into_iter()
            .map(|line| LineFaults {
                line,
                faults: sample_binomial_at_least_one(&mut self.rng, TOTAL_BITS as u64, self.ber)
                    as u32,
            })
            .collect()
    }

    /// A cache plan with the fault *positions* already drawn: the exact
    /// RNG stream of [`FaultInjector::cache_plan`] followed by one
    /// `choose_distinct` per faulty line in plan order — the sequence every
    /// Monte-Carlo campaign applies. Useful when the same faults must be
    /// applied to several caches (e.g. a sharded replica of a
    /// single-threaded reference).
    pub fn resolved_plan(&mut self, n_lines: u64) -> Vec<(u64, Vec<usize>)> {
        let plan = self.cache_plan(n_lines);
        plan.into_iter()
            .map(|lf| {
                let positions = choose_distinct(&mut self.rng, TOTAL_BITS as u64, lf.faults as u64)
                    .into_iter()
                    .map(|p| p as usize)
                    .collect();
                (lf.line, positions)
            })
            .collect()
    }
}

/// SplitMix64 finalizer — the standard seed-spreading mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_codes::{LineCodec, LineData};

    #[test]
    fn binomial_zero_p_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 1000, 0.0), 0);
    }

    #[test]
    fn binomial_mean_close_to_np() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, p, trials) = (553u64, 0.01, 20_000);
        let sum: u64 = (0..trials).map(|_| sample_binomial(&mut rng, n, p)).sum();
        let mean = sum as f64 / trials as f64;
        let expect = n as f64 * p;
        assert!((mean - expect).abs() < 0.15, "mean {mean} vs {expect}");
    }

    #[test]
    fn binomial_large_np_uses_normal_and_stays_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, p) = (1u64 << 30, 0.001);
        for _ in 0..100 {
            let k = sample_binomial(&mut rng, n, p);
            let mean = n as f64 * p;
            let sd = (mean * (1.0 - p)).sqrt();
            assert!((k as f64 - mean).abs() < 8.0 * sd, "k = {k}");
        }
    }

    #[test]
    fn conditional_binomial_always_at_least_one() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = sample_binomial_at_least_one(&mut rng, 553, 5.3e-6);
            assert!(k >= 1);
        }
    }

    #[test]
    fn conditional_binomial_multibit_fraction_matches_theory() {
        // P(K ≥ 2 | K ≥ 1) ≈ (n−1)p/2 for tiny p.
        let mut rng = StdRng::seed_from_u64(5);
        let p = 1e-3;
        let trials = 200_000;
        let multi = (0..trials)
            .filter(|_| sample_binomial_at_least_one(&mut rng, 553, p) >= 2)
            .count();
        let frac = multi as f64 / trials as f64;
        let theory = {
            let p0 = (553.0 * (1.0f64 - p).ln()).exp();
            let p1 = 553.0 * p * (552.0 * (1.0f64 - p).ln()).exp();
            (1.0 - p0 - p1) / (1.0 - p0)
        };
        assert!(
            (frac - theory).abs() < 0.01,
            "frac {frac} vs theory {theory}"
        );
    }

    #[test]
    fn choose_distinct_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let picks = choose_distinct(&mut rng, 100, 40);
        assert_eq!(picks.len(), 40);
        assert!(picks.windows(2).all(|w| w[0] < w[1]));
        assert!(picks.iter().all(|&v| v < 100));
    }

    #[test]
    fn choose_distinct_full_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let picks = choose_distinct(&mut rng, 10, 10);
        assert_eq!(picks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reseed_matches_fresh_injector() {
        let golden = LineCodec::shared().encode(&LineData::zero());
        let mut reused = FaultInjector::new(0.01, 1);
        // Burn some state, then reseed.
        let mut l = golden;
        let _ = reused.inject_line(&mut l);
        reused.reseed(77);
        let mut fresh = FaultInjector::new(0.01, 77);
        let mut a = golden;
        let mut b = golden;
        assert_eq!(reused.inject_line(&mut a), fresh.inject_line(&mut b));
        assert_eq!(reused.cache_plan(1 << 16), fresh.cache_plan(1 << 16));
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let codec = LineCodec::shared();
        let golden = codec.encode(&LineData::zero());
        let run = |seed| {
            let mut inj = FaultInjector::new(0.01, seed);
            let mut line = golden;
            inj.inject_line(&mut line)
        };
        assert_eq!(run(99), run(99));
        // Different seeds almost surely differ across many lines.
        let mut a = FaultInjector::new(0.01, 1);
        let mut b = FaultInjector::new(0.01, 2);
        let flips_a: Vec<_> = (0..50)
            .flat_map(|_| {
                let mut l = golden;
                a.inject_line(&mut l)
            })
            .collect();
        let flips_b: Vec<_> = (0..50)
            .flat_map(|_| {
                let mut l = golden;
                b.inject_line(&mut l)
            })
            .collect();
        assert_ne!(flips_a, flips_b);
    }

    #[test]
    fn inject_exactly_flips_exactly_k() {
        let codec = LineCodec::shared();
        let golden = codec.encode(&LineData::zero());
        let mut inj = FaultInjector::new(1e-6, 8);
        let mut line = golden;
        let flips = inj.inject_exactly(&mut line, 5);
        assert_eq!(flips.len(), 5);
        assert_eq!(line.diff_positions(&golden).len(), 5);
    }

    #[test]
    fn cache_plan_statistics_match_paper_expectations() {
        // 64 MB cache = 2^20 lines; at BER 5.3e-6 the paper expects ~2900
        // faulty bits and ~4 lines with 2+ faults per 20 ms interval.
        let mut inj = FaultInjector::new(5.3e-6, 10);
        let n_lines = 1u64 << 20;
        let mut total_bits = 0u64;
        let mut multi = 0u64;
        let rounds = 20;
        for _ in 0..rounds {
            let plan = inj.cache_plan(n_lines);
            total_bits += plan.iter().map(|lf| lf.faults as u64).sum::<u64>();
            multi += plan.iter().filter(|lf| lf.faults >= 2).count() as u64;
        }
        let bits_per_round = total_bits as f64 / rounds as f64;
        let multi_per_round = multi as f64 / rounds as f64;
        assert!(
            (2500.0..3700.0).contains(&bits_per_round),
            "bits {bits_per_round}"
        );
        assert!(
            (1.0..10.0).contains(&multi_per_round),
            "multi {multi_per_round}"
        );
    }

    #[test]
    fn burst_is_contiguous_and_in_range() {
        let codec = LineCodec::shared();
        let golden = codec.encode(&LineData::zero());
        let mut inj = FaultInjector::new(1e-6, 21);
        for width in [1u32, 2, 8, 31, 553] {
            let mut line = golden;
            let positions = inj.inject_burst(&mut line, width);
            assert_eq!(positions.len(), width as usize);
            assert!(positions.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");
            assert!(*positions.last().unwrap() < 553);
            assert_eq!(line.diff_positions(&golden).len(), width as usize);
        }
    }

    #[test]
    fn bursts_up_to_31_bits_always_detected_by_crc_or_ecc() {
        // A degree-31 CRC detects every burst of ≤31 bits confined to the
        // CRC-protected region; bursts touching the ECC field are caught by
        // the scrub path. Either way: never silently clean.
        let codec = LineCodec::shared();
        let golden = codec.encode(&LineData::zero());
        let mut inj = FaultInjector::new(1e-6, 22);
        for trial in 0..500 {
            let width = 2 + (trial % 30) as u32;
            let mut line = golden;
            inj.inject_burst(&mut line, width);
            assert_ne!(
                codec.scrub_check(&line),
                sudoku_codes::ReadCheck::Clean,
                "width {width} burst slipped through"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ber must be")]
    fn invalid_ber_rejected() {
        FaultInjector::new(1.5, 0);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let base = FaultInjector::new(1e-3, 42);
        let mut a1 = base.fork(3);
        let mut a2 = base.fork(3);
        let mut b = base.fork(4);
        assert_eq!(a1.seed(), a2.seed());
        let p1 = a1.cache_plan(1 << 12);
        let p2 = a2.cache_plan(1 << 12);
        assert_eq!(p1, p2, "same stream must replay identically");
        assert_ne!(p1, b.cache_plan(1 << 12), "streams must differ");
        // Forking must not disturb the parent's own stream.
        let mut parent = FaultInjector::new(1e-3, 42);
        let _ = parent.fork(9);
        let mut untouched = FaultInjector::new(1e-3, 42);
        assert_eq!(parent.cache_plan(1 << 12), untouched.cache_plan(1 << 12));
    }

    #[test]
    fn resolved_plan_matches_manual_resolution() {
        let mut a = FaultInjector::new(2e-3, 7);
        let mut b = FaultInjector::new(2e-3, 7);
        let resolved = a.resolved_plan(1 << 12);
        let plan = b.cache_plan(1 << 12);
        assert_eq!(resolved.len(), plan.len());
        for ((line, positions), lf) in resolved.iter().zip(plan.iter()) {
            assert_eq!(*line, lf.line);
            let expect: Vec<usize> = choose_distinct(b.rng(), TOTAL_BITS as u64, lf.faults as u64)
                .into_iter()
                .map(|p| p as usize)
                .collect();
            assert_eq!(*positions, expect);
        }
    }
}
