//! Scrub scheduling and bandwidth accounting (paper §II-D, §VII-E).
//!
//! STTRAM cannot be refreshed like DRAM: a thermally flipped cell holds the
//! *wrong* value, so each line must be read, ECC-checked/corrected, and
//! written back — a scrub. The scrub interval bounds how many faults can
//! accumulate per line and therefore sets the BER every correction scheme
//! must survive.

use serde::{Deserialize, Serialize};

/// Seconds in one hour.
pub const SECONDS_PER_HOUR: f64 = 3600.0;
/// Hours in the FIT reference period (10⁹ device-hours).
pub const FIT_HOURS: f64 = 1e9;

/// A periodic scrub schedule.
///
/// # Examples
///
/// ```
/// use sudoku_fault::ScrubSchedule;
///
/// let scrub = ScrubSchedule::new(20e-3);
/// assert_eq!(scrub.intervals_per_hour(), 180_000.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScrubSchedule {
    interval_s: f64,
}

impl ScrubSchedule {
    /// A schedule scrubbing the whole cache every `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0`.
    pub fn new(interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "scrub interval must be positive");
        ScrubSchedule { interval_s }
    }

    /// The paper's default 20 ms schedule.
    pub fn paper_default() -> Self {
        ScrubSchedule::new(20e-3)
    }

    /// Scrub interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Number of scrub intervals per hour.
    pub fn intervals_per_hour(&self) -> f64 {
        SECONDS_PER_HOUR / self.interval_s
    }

    /// Number of scrub intervals in the FIT reference period (10⁹ h).
    pub fn intervals_per_billion_hours(&self) -> f64 {
        self.intervals_per_hour() * FIT_HOURS
    }

    /// Converts a per-interval failure probability into a FIT rate
    /// (expected failures per 10⁹ hours). Uses the exact hazard-rate form
    /// `−ln(1−p)` so it stays meaningful when `p` is not small.
    pub fn fit_rate(&self, p_fail_per_interval: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p_fail_per_interval),
            "probability out of range"
        );
        if p_fail_per_interval >= 1.0 {
            return f64::INFINITY;
        }
        let hazard_per_interval = -(-p_fail_per_interval).ln_1p();
        hazard_per_interval * self.intervals_per_billion_hours()
    }

    /// Linearized FIT: `p × intervals-per-10⁹h`, the form the paper's
    /// tables use. Identical to [`ScrubSchedule::fit_rate`] for small `p`;
    /// for `p` near 1 it caps at one failure per interval instead of
    /// diverging (Table XI's CPPC row is in this regime).
    pub fn fit_rate_linear(&self, p_fail_per_interval: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p_fail_per_interval),
            "probability out of range"
        );
        p_fail_per_interval * self.intervals_per_billion_hours()
    }

    /// Mean time to failure in hours implied by a per-interval failure
    /// probability.
    pub fn mttf_hours(&self, p_fail_per_interval: f64) -> f64 {
        let fit = self.fit_rate(p_fail_per_interval);
        FIT_HOURS / fit
    }

    /// Fraction of time the cache is busy scrubbing, given a line count and
    /// the per-line scrub cost, assuming `banks` lines can be scrubbed in
    /// parallel (paper footnote 1 argues this stays at a few percent).
    pub fn bandwidth_fraction(&self, lines: u64, per_line_s: f64, banks: u32) -> f64 {
        assert!(banks >= 1, "at least one bank required");
        let serial = lines as f64 * per_line_s / banks as f64;
        serial / self.interval_s
    }
}

impl Default for ScrubSchedule {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_20ms() {
        assert_eq!(ScrubSchedule::default().interval_s(), 20e-3);
    }

    #[test]
    fn fit_of_small_probability_is_linear() {
        let s = ScrubSchedule::paper_default();
        let p = 1e-12;
        let fit = s.fit_rate(p);
        let expect = p * 180_000.0 * 1e9;
        assert!((fit / expect - 1.0).abs() < 1e-9, "{fit} vs {expect}");
    }

    #[test]
    fn fit_of_certain_failure_is_infinite() {
        assert!(ScrubSchedule::paper_default().fit_rate(1.0).is_infinite());
    }

    #[test]
    fn mttf_roundtrip_matches_paper_sudoku_x() {
        // Paper §III-F: an uncorrectable line every 3.71 s at 20 ms interval
        // corresponds to p_fail ≈ 0.02/3.71 per interval.
        let s = ScrubSchedule::paper_default();
        let p = 0.02 / 3.71;
        let mttf_s = s.mttf_hours(p) * 3600.0;
        assert!((3.4..4.1).contains(&mttf_s), "{mttf_s}");
    }

    #[test]
    fn bandwidth_64mb_with_banking_is_a_few_percent() {
        // 2^20 lines, 9 ns per line read, 32 banks, 20 ms interval.
        let s = ScrubSchedule::paper_default();
        let frac = s.bandwidth_fraction(1 << 20, 9e-9, 32);
        assert!((0.005..0.05).contains(&frac), "{frac}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        ScrubSchedule::new(0.0);
    }
}
