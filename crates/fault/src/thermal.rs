//! The STTRAM thermal retention-failure model (paper §II-B, Eq. 1).
//!
//! A cell with thermal stability factor ∆ flips spontaneously with rate
//! λ = f₀·e^(−∆) (f₀ = 1 GHz attempt frequency), so the probability it
//! fails within a window t_s is `p_cell = 1 − e^(−λ·t_s)`. Process
//! variation makes ∆ itself Gaussian with σ of up to 10% of the mean
//! (paper §I); the *effective* bit error rate is the expectation of
//! `p_cell` over that distribution, which the low-∆ tail dominates.

use serde::{Deserialize, Serialize};

/// Default thermal attempt frequency, 1 GHz (paper Eq. 1).
pub const ATTEMPT_FREQ_HZ: f64 = 1.0e9;

/// The paper's default scrub interval (20 ms, §II-D).
pub const DEFAULT_SCRUB_INTERVAL_S: f64 = 20e-3;

/// Gaussian-∆ thermal model of an STTRAM cell population.
///
/// # Examples
///
/// ```
/// use sudoku_fault::ThermalModel;
///
/// // The paper's 22 nm operating point: ∆ = 35, σ = 10 %.
/// let model = ThermalModel::new(35.0, 0.10);
/// let ber = model.ber(20e-3);
/// // Paper Table I: ≈ 5.3e-6 per 20 ms scrub interval.
/// assert!(ber > 3e-6 && ber < 9e-6, "ber = {ber}");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    delta_mean: f64,
    sigma_frac: f64,
    attempt_freq_hz: f64,
}

impl ThermalModel {
    /// A model with mean thermal stability `delta_mean` and a normalized
    /// standard deviation `sigma_frac` (e.g. `0.10` for the paper's 10%).
    ///
    /// # Panics
    ///
    /// Panics if `delta_mean <= 0` or `sigma_frac < 0`.
    pub fn new(delta_mean: f64, sigma_frac: f64) -> Self {
        Self::with_attempt_freq(delta_mean, sigma_frac, ATTEMPT_FREQ_HZ)
    }

    /// Like [`ThermalModel::new`] with an explicit attempt frequency.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive (σ may be zero).
    pub fn with_attempt_freq(delta_mean: f64, sigma_frac: f64, attempt_freq_hz: f64) -> Self {
        assert!(delta_mean > 0.0, "delta must be positive");
        assert!(sigma_frac >= 0.0, "sigma fraction must be non-negative");
        assert!(attempt_freq_hz > 0.0, "attempt frequency must be positive");
        ThermalModel {
            delta_mean,
            sigma_frac,
            attempt_freq_hz,
        }
    }

    /// The paper's default operating point: ∆ = 35, σ = 10% (22 nm node).
    pub fn paper_default() -> Self {
        ThermalModel::new(35.0, 0.10)
    }

    /// Mean thermal stability factor.
    pub fn delta_mean(&self) -> f64 {
        self.delta_mean
    }

    /// Normalized σ of the ∆ distribution.
    pub fn sigma_frac(&self) -> f64 {
        self.sigma_frac
    }

    /// Absolute σ of the ∆ distribution.
    pub fn sigma(&self) -> f64 {
        self.delta_mean * self.sigma_frac
    }

    /// Failure rate (per second) of a single cell with exact stability
    /// `delta`: λ = f₀ e^(−∆).
    pub fn cell_rate(&self, delta: f64) -> f64 {
        self.attempt_freq_hz * (-delta).exp()
    }

    /// Failure probability of a single cell with exact stability `delta`
    /// within `window_s` seconds (paper Eq. 1).
    pub fn p_cell_fixed(&self, delta: f64, window_s: f64) -> f64 {
        -(-self.cell_rate(delta) * window_s).exp_m1()
    }

    /// Population-average failure rate E\[λ\].
    ///
    /// λ is log-normal in ∆, so E\[λ\] = f₀·e^(−µ + σ²/2) in closed form.
    pub fn effective_rate(&self) -> f64 {
        let s = self.sigma();
        self.attempt_freq_hz * (-self.delta_mean + 0.5 * s * s).exp()
    }

    /// The population-average cell MTTF, 1 / E\[λ\], in seconds.
    ///
    /// For the paper's ∆=35, σ=10% this is about one hour (§I), versus
    /// ~18 days without variation.
    pub fn mean_cell_mttf_s(&self) -> f64 {
        1.0 / self.effective_rate()
    }

    /// Effective bit error rate within a window: E_∆\[1 − e^(−λ(∆)·t)\],
    /// integrated numerically over the Gaussian ∆ distribution.
    ///
    /// For λt ≪ 1 over the entire relevant ∆ range this approaches
    /// `effective_rate() * window_s`; the integral also captures the
    /// saturation of the deep low-∆ tail.
    pub fn ber(&self, window_s: f64) -> f64 {
        assert!(window_s >= 0.0, "window must be non-negative");
        if window_s == 0.0 {
            return 0.0;
        }
        let s = self.sigma();
        if s == 0.0 {
            return self.p_cell_fixed(self.delta_mean, window_s);
        }
        // Composite Simpson over ±10σ; the integrand is smooth and the
        // Gaussian kills both tails.
        let lo = self.delta_mean - 10.0 * s;
        let hi = self.delta_mean + 10.0 * s;
        let n = 4000usize; // even
        let h = (hi - lo) / n as f64;
        let norm = 1.0 / (s * (2.0 * std::f64::consts::PI).sqrt());
        let f = |delta: f64| {
            let z = (delta - self.delta_mean) / s;
            norm * (-0.5 * z * z).exp() * self.p_cell_fixed(delta, window_s)
        };
        let mut acc = f(lo) + f(hi);
        for i in 1..n {
            let x = lo + i as f64 * h;
            acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
        }
        (acc * h / 3.0).clamp(0.0, 1.0)
    }

    /// Expected number of failed bits among `bits` cells within a window.
    pub fn expected_failures(&self, bits: u64, window_s: f64) -> f64 {
        bits as f64 * self.ber(window_s)
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Low-voltage SRAM fault model for the paper's §VI / Table IV study:
/// below V_min cells fail persistently with a fixed per-bit probability.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SramVminModel {
    /// Per-bit failure probability at the chosen operating voltage.
    pub ber: f64,
}

impl SramVminModel {
    /// The paper's Table IV operating point: BER = 10⁻³ below 500 mV.
    pub fn below_500mv() -> Self {
        SramVminModel { ber: 1e-3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta35_cell_mttf_without_variation_is_about_18_days() {
        let m = ThermalModel::new(35.0, 0.0);
        let mttf_days = 1.0 / m.cell_rate(35.0) / 86_400.0;
        assert!((17.0..20.0).contains(&mttf_days), "{mttf_days} days");
    }

    #[test]
    fn delta35_sigma10_mean_mttf_is_about_an_hour() {
        let m = ThermalModel::paper_default();
        let mttf_h = m.mean_cell_mttf_s() / 3600.0;
        assert!((0.5..2.0).contains(&mttf_h), "{mttf_h} hours");
    }

    #[test]
    fn ber_matches_paper_table1_delta35() {
        let m = ThermalModel::paper_default();
        let ber = m.ber(20e-3);
        // Paper: 5.3e-6. Our integral gives the same order and ~10%
        // agreement with the linearized estimate.
        assert!((3e-6..9e-6).contains(&ber), "ber = {ber}");
    }

    #[test]
    fn ber_matches_paper_table1_delta60_order() {
        let m = ThermalModel::new(60.0, 0.10);
        let ber = m.ber(20e-3);
        // Paper: 2.7e-12; we accept the same decade neighbourhood.
        assert!(ber > 1e-13 && ber < 1e-10, "ber = {ber}");
    }

    #[test]
    fn ber_scales_almost_linearly_with_window() {
        let m = ThermalModel::paper_default();
        let b10 = m.ber(10e-3);
        let b20 = m.ber(20e-3);
        let ratio = b20 / b10;
        assert!((1.9..2.1).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn ber_increases_as_delta_decreases() {
        let windows = 20e-3;
        let b35 = ThermalModel::new(35.0, 0.10).ber(windows);
        let b34 = ThermalModel::new(34.0, 0.10).ber(windows);
        let b33 = ThermalModel::new(33.0, 0.10).ber(windows);
        assert!(b33 > b34 && b34 > b35);
    }

    #[test]
    fn zero_window_has_zero_ber() {
        assert_eq!(ThermalModel::paper_default().ber(0.0), 0.0);
    }

    #[test]
    fn sigma_zero_matches_fixed_formula() {
        let m = ThermalModel::new(35.0, 0.0);
        let direct = m.p_cell_fixed(35.0, 0.02);
        assert!((m.ber(0.02) - direct).abs() < 1e-18);
    }

    #[test]
    fn expected_failures_64mb_is_thousands_of_bits() {
        // Paper §I: ~2880 faulty bits per 20 ms in a 64 MB cache.
        let m = ThermalModel::paper_default();
        let data_bits = 64u64 * 1024 * 1024 * 8;
        let expected = m.expected_failures(data_bits, 20e-3);
        assert!((1000.0..10000.0).contains(&expected), "{expected}");
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn non_positive_delta_rejected() {
        ThermalModel::new(0.0, 0.1);
    }
}
