//! # sudoku-fault
//!
//! Fault models for the SuDoku STTRAM reproduction (DSN 2019):
//!
//! * [`ThermalModel`] — the paper's Eq. 1 retention-failure model with
//!   Gaussian ∆ process variation, reproducing Table I's BER figures;
//! * [`FaultInjector`] — exact, seeded transient-fault injection at line or
//!   cache granularity;
//! * [`ScrubSchedule`] — scrub-interval bookkeeping and FIT/MTTF
//!   conversions;
//! * [`StuckBitMap`] — permanent (stuck-at) faults for the SRAM V_min study
//!   (§VI, Table IV).
//!
//! # Example
//!
//! ```
//! use sudoku_fault::{FaultInjector, ScrubSchedule, ThermalModel};
//!
//! let thermal = ThermalModel::paper_default(); // ∆ = 35, σ = 10 %
//! let scrub = ScrubSchedule::paper_default(); // 20 ms
//! let ber = thermal.ber(scrub.interval_s());
//! let mut injector = FaultInjector::new(ber, 0xC0FFEE);
//! let plan = injector.cache_plan(1 << 20); // one 64 MB-cache interval
//! assert!(plan.len() < 10_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod injector;
mod permanent;
mod scrub;
mod thermal;

pub use injector::{
    choose_distinct, observe_plan, sample_binomial, sample_binomial_at_least_one, FaultInjector,
    LineFaults,
};
pub use permanent::{StuckBit, StuckBitMap};
pub use scrub::{ScrubSchedule, FIT_HOURS, SECONDS_PER_HOUR};
pub use thermal::{SramVminModel, ThermalModel, ATTEMPT_FREQ_HZ, DEFAULT_SCRUB_INTERVAL_S};
