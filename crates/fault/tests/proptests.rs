//! Property-based tests for the fault models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sudoku_fault::{
    choose_distinct, sample_binomial, sample_binomial_at_least_one, FaultInjector, ScrubSchedule,
    StuckBitMap, ThermalModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BER is a probability and monotone in the window length.
    #[test]
    fn ber_is_probability_and_monotone(
        delta in 25.0f64..70.0,
        sigma in 0.0f64..0.2,
        w1 in 1e-4f64..1e-1,
        scale in 1.01f64..10.0
    ) {
        let m = ThermalModel::new(delta, sigma);
        let b1 = m.ber(w1);
        let b2 = m.ber(w1 * scale);
        prop_assert!((0.0..=1.0).contains(&b1));
        prop_assert!(b2 >= b1, "ber must grow with the window: {b1} vs {b2}");
    }

    /// BER is monotone decreasing in ∆.
    #[test]
    fn ber_decreases_with_delta(delta in 26.0f64..60.0, sigma in 0.01f64..0.15) {
        let lo = ThermalModel::new(delta, sigma).ber(20e-3);
        let hi = ThermalModel::new(delta + 1.0, sigma).ber(20e-3);
        prop_assert!(hi <= lo, "∆+1 must not be less reliable: {hi} vs {lo}");
    }

    /// Binomial samples stay within range for arbitrary parameters.
    #[test]
    fn binomial_in_range(seed in any::<u64>(), n in 1u64..100_000, p in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = sample_binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    /// Conditional binomial is ≥ 1 and ≤ n.
    #[test]
    fn conditional_binomial_in_range(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = sample_binomial_at_least_one(&mut rng, n, 1e-4);
        prop_assert!((1..=n).contains(&k));
    }

    /// choose_distinct returns exactly k strictly increasing in-range values.
    #[test]
    fn choose_distinct_contract(seed in any::<u64>(), n in 1u64..5_000, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as u64).min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let picks = choose_distinct(&mut rng, n, k);
        prop_assert_eq!(picks.len() as u64, k);
        prop_assert!(picks.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(picks.iter().all(|&v| v < n));
    }

    /// A cache plan never lists a line twice and respects fault bounds.
    #[test]
    fn cache_plan_contract(seed in any::<u64>(), ber in 1e-7f64..1e-3) {
        let mut injector = FaultInjector::new(ber, seed);
        let plan = injector.cache_plan(1 << 14);
        for pair in plan.windows(2) {
            prop_assert!(pair[0].line < pair[1].line, "plan must be sorted/unique");
        }
        prop_assert!(plan.iter().all(|lf| lf.faults >= 1 && lf.faults <= 553));
    }

    /// FIT and MTTF are consistent inverses.
    #[test]
    fn fit_mttf_inverse(p in 1e-12f64..0.5, interval in 1e-3f64..0.1) {
        let s = ScrubSchedule::new(interval);
        let fit = s.fit_rate(p);
        let mttf_h = s.mttf_hours(p);
        prop_assert!((fit * mttf_h / 1e9 - 1.0).abs() < 1e-9);
    }

    /// Stuck-bit application is idempotent.
    #[test]
    fn stuck_apply_idempotent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let map = StuckBitMap::random(&mut rng, 64, 5e-3);
        let mut line = sudoku_codes::ProtectedLine::zero();
        for l in 0..64u64 {
            map.apply(l, &mut line);
            let snapshot = line;
            prop_assert_eq!(map.apply(l, &mut line), 0);
            prop_assert_eq!(line, snapshot);
        }
    }
}

/// Statistical check (not proptest): the empirical binomial mean and
/// variance match theory within tolerance.
#[test]
fn binomial_moments_match_theory() {
    let (n, p, trials) = (553u64, 5e-3, 60_000usize);
    let mut rng = StdRng::seed_from_u64(12345);
    let samples: Vec<f64> = (0..trials)
        .map(|_| sample_binomial(&mut rng, n, p) as f64)
        .collect();
    let mean = samples.iter().sum::<f64>() / trials as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trials as f64;
    let expect_mean = n as f64 * p;
    let expect_var = n as f64 * p * (1.0 - p);
    assert!(
        (mean / expect_mean - 1.0).abs() < 0.03,
        "mean {mean} vs {expect_mean}"
    );
    assert!(
        (var / expect_var - 1.0).abs() < 0.08,
        "var {var} vs {expect_var}"
    );
}
