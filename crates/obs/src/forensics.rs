//! Escalation-chain reconstruction over a recovery event log.
//!
//! Grouping a campaign's events by `(interval, line)` and keeping emission
//! order yields, per faulty line, the exact ladder the engine walked —
//! e.g. `Inject → CrcDetect → Raid4:Blocked → Sdr:Repaired@H1`, or the
//! cross-hash rescue `… → Sdr:Failed@H1 → Raid4:Repaired@H2`. The
//! [`Breakdown`] then aggregates chains into the signature table the
//! `forensics` benchmark binary prints.

use crate::event::{Dim, Mechanism, Outcome, RecoveryEvent};
use std::collections::BTreeMap;

/// Every event observed for one line within one interval, emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// The interval (campaign trial) the chain belongs to.
    pub interval: u64,
    /// The affected line.
    pub line: u64,
    /// The events, oldest first.
    pub events: Vec<RecoveryEvent>,
}

impl Chain {
    /// Compact signature, e.g.
    /// `Inject→CrcDetect→Raid4:Blocked→Sdr:Repaired@H1`.
    pub fn signature(&self) -> String {
        self.events
            .iter()
            .map(|e| {
                let mut part = match (e.mechanism, e.outcome) {
                    // The unmarked outcomes for the common steps keep
                    // signatures short.
                    (Mechanism::Inject, Outcome::Injected) => "Inject".to_string(),
                    (Mechanism::CrcDetect, Outcome::Detected) => "CrcDetect".to_string(),
                    (m, o) => format!("{m}:{o}"),
                };
                if let Some(dim) = e.hash_dim {
                    part.push('@');
                    part.push_str(&dim.to_string());
                }
                part
            })
            .collect::<Vec<_>>()
            .join("→")
    }

    /// The event that settled the line: the last `Repaired` or `Due`.
    pub fn resolution(&self) -> Option<&RecoveryEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.outcome == Outcome::Repaired || e.mechanism == Mechanism::Due)
    }

    /// Whether the line ended detectably uncorrectable.
    pub fn is_due(&self) -> bool {
        self.resolution()
            .is_some_and(|e| e.mechanism == Mechanism::Due)
    }

    /// Whether an SDR resurrection settled the line.
    pub fn resolved_by_sdr(&self) -> bool {
        self.resolution()
            .is_some_and(|e| e.mechanism == Mechanism::Sdr && e.outcome == Outcome::Repaired)
    }

    /// Whether the settling repair ran in the Hash-2 dimension — the
    /// SuDoku-Z cross-resolution path.
    pub fn resolved_via_hash2(&self) -> bool {
        self.resolution()
            .is_some_and(|e| e.outcome == Outcome::Repaired && e.hash_dim == Some(Dim::H2))
    }

    /// Whether the chain is *complete*: it starts at a root cause
    /// (injection record or CRC detection) and ends settled.
    pub fn is_complete(&self) -> bool {
        let starts_at_root = self
            .events
            .first()
            .is_some_and(|e| matches!(e.mechanism, Mechanism::Inject | Mechanism::CrcDetect));
        starts_at_root && self.resolution().is_some()
    }

    /// Total SDR flip-and-check trials along the chain.
    pub fn sdr_trials(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.mechanism == Mechanism::Sdr)
            .map(|e| e.trials as u64)
            .sum()
    }
}

/// Groups an event log into per-`(interval, line)` escalation chains,
/// preserving emission order within each chain. Chains are returned in
/// `(interval, line)` order.
pub fn chains(events: &[RecoveryEvent]) -> Vec<Chain> {
    let mut by_key: BTreeMap<(u64, u64), Vec<RecoveryEvent>> = BTreeMap::new();
    for &e in events {
        by_key.entry((e.interval, e.line)).or_default().push(e);
    }
    by_key
        .into_iter()
        .map(|((interval, line), events)| Chain {
            interval,
            line,
            events,
        })
        .collect()
}

/// Aggregated view of a chain set: counts per signature and per resolving
/// mechanism.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Chain count per signature, descending by count (ties: signature
    /// order).
    pub signatures: Vec<(String, u64)>,
    /// Chain count per resolving mechanism name (`"unresolved"` when a
    /// chain has no settling event — e.g. only an injection record for a
    /// line ECC-1 silently fixed... which still emits, so in practice:
    /// detection-only chains).
    pub resolutions: BTreeMap<String, u64>,
    /// Chains settled through the Hash-2 dimension.
    pub hash2_resolved: u64,
    /// Chains that ended as DUEs.
    pub due_chains: u64,
    /// Total chains.
    pub total: u64,
}

/// Builds the [`Breakdown`] for a chain set.
pub fn breakdown(chains: &[Chain]) -> Breakdown {
    let mut sig_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut out = Breakdown {
        total: chains.len() as u64,
        ..Breakdown::default()
    };
    for chain in chains {
        *sig_counts.entry(chain.signature()).or_default() += 1;
        let res = match chain.resolution() {
            Some(e) if e.mechanism == Mechanism::Due => "Due".to_string(),
            Some(e) => {
                let mut name = e.mechanism.to_string();
                if let Some(d) = e.hash_dim {
                    name.push('@');
                    name.push_str(&d.to_string());
                }
                name
            }
            None => "unresolved".to_string(),
        };
        *out.resolutions.entry(res).or_default() += 1;
        out.hash2_resolved += chain.resolved_via_hash2() as u64;
        out.due_chains += chain.is_due() as u64;
    }
    out.signatures = sig_counts.into_iter().collect();
    out.signatures
        .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

impl Breakdown {
    /// Multi-line human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} escalation chains ({} via Hash-2, {} DUE)\n",
            self.total, self.hash2_resolved, self.due_chains
        ));
        out.push_str("\nresolution breakdown:\n");
        for (name, count) in &self.resolutions {
            out.push_str(&format!(
                "  {name:<14} {count:>8}  ({:>6.2}%)\n",
                *count as f64 / self.total.max(1) as f64 * 100.0
            ));
        }
        out.push_str("\nchain signatures:\n");
        for (sig, count) in &self.signatures {
            out.push_str(&format!("  {count:>8}  {sig}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        interval: u64,
        line: u64,
        mechanism: Mechanism,
        outcome: Outcome,
        hash_dim: Option<Dim>,
        trials: u32,
    ) -> RecoveryEvent {
        RecoveryEvent {
            interval,
            trace: 0,
            line,
            group: hash_dim.map(|_| 3),
            hash_dim,
            mechanism,
            outcome,
            trials,
        }
    }

    /// The paper's §IV scenario as an event stream: two 2-fault lines in
    /// one group; SDR resurrects line 1, RAID-4 finishes line 2.
    fn sdr_story() -> Vec<RecoveryEvent> {
        vec![
            ev(0, 1, Mechanism::Inject, Outcome::Injected, None, 2),
            ev(0, 2, Mechanism::Inject, Outcome::Injected, None, 2),
            ev(0, 1, Mechanism::CrcDetect, Outcome::Detected, None, 0),
            ev(0, 2, Mechanism::CrcDetect, Outcome::Detected, None, 0),
            ev(0, 1, Mechanism::Raid4, Outcome::Blocked, Some(Dim::H1), 2),
            ev(0, 2, Mechanism::Raid4, Outcome::Blocked, Some(Dim::H1), 2),
            ev(0, 1, Mechanism::Sdr, Outcome::Repaired, Some(Dim::H1), 5),
            ev(0, 2, Mechanism::Raid4, Outcome::Repaired, Some(Dim::H1), 0),
        ]
    }

    #[test]
    fn chains_group_by_interval_and_line() {
        let mut events = sdr_story();
        events.push(ev(1, 1, Mechanism::Ecc1, Outcome::Repaired, None, 0));
        let chains = chains(&events);
        assert_eq!(chains.len(), 3); // (0,1), (0,2), (1,1)
        assert_eq!(chains[0].events.len(), 4);
        assert_eq!(chains[2].interval, 1);
    }

    #[test]
    fn sdr_chain_reconstructs_the_ladder() {
        let chains = chains(&sdr_story());
        let c1 = &chains[0];
        assert_eq!(
            c1.signature(),
            "Inject→CrcDetect→Raid4:Blocked@H1→Sdr:Repaired@H1"
        );
        assert!(c1.is_complete());
        assert!(c1.resolved_by_sdr());
        assert!(!c1.resolved_via_hash2());
        assert!(!c1.is_due());
        assert_eq!(c1.sdr_trials(), 5);
        let c2 = &chains[1];
        assert!(!c2.resolved_by_sdr());
        assert!(c2.is_complete());
    }

    #[test]
    fn hash2_rescue_detected() {
        let events = vec![
            ev(0, 7, Mechanism::CrcDetect, Outcome::Detected, None, 0),
            ev(0, 7, Mechanism::Sdr, Outcome::Failed, Some(Dim::H1), 12),
            ev(0, 7, Mechanism::Raid4, Outcome::Repaired, Some(Dim::H2), 0),
        ];
        let chains = chains(&events);
        assert!(chains[0].resolved_via_hash2());
        assert!(chains[0].is_complete());
    }

    #[test]
    fn due_chain_detected() {
        let events = vec![
            ev(0, 9, Mechanism::CrcDetect, Outcome::Detected, None, 0),
            ev(0, 9, Mechanism::Due, Outcome::Failed, None, 0),
        ];
        let chains = chains(&events);
        assert!(chains[0].is_due());
        assert!(chains[0].is_complete());
    }

    #[test]
    fn breakdown_counts_everything() {
        let mut events = sdr_story();
        events.extend([
            ev(1, 9, Mechanism::CrcDetect, Outcome::Detected, None, 0),
            ev(1, 9, Mechanism::Due, Outcome::Failed, None, 0),
            ev(2, 5, Mechanism::CrcDetect, Outcome::Detected, None, 0),
            ev(2, 5, Mechanism::Sdr, Outcome::Repaired, Some(Dim::H2), 3),
        ]);
        let b = breakdown(&chains(&events));
        assert_eq!(b.total, 4);
        assert_eq!(b.due_chains, 1);
        assert_eq!(b.hash2_resolved, 1);
        assert_eq!(b.resolutions.get("Sdr@H1"), Some(&1));
        assert_eq!(b.resolutions.get("Due"), Some(&1));
        let rendered = b.render();
        assert!(rendered.contains("4 escalation chains"));
        assert!(rendered.contains("Sdr:Repaired@H2"));
    }
}
