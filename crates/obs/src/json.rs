//! Minimal JSON rendering helpers.
//!
//! The workspace's `serde` is an offline no-op shim (see `compat/serde`),
//! so machine-readable output is hand-rendered. These helpers keep every
//! producer consistent: stable field order, escaped strings, `null` for
//! non-finite floats.

/// Escapes a string for inclusion in a JSON document (quotes not included).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value (`null` for NaN/∞, which raw JSON
/// cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object builder with stable insertion order.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&esc(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_key(key);
        self.buf.push('"');
        self.buf.push_str(&esc(value));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(&num(value));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn field_array_u64(
        &mut self,
        key: &str,
        values: impl IntoIterator<Item = u64>,
    ) -> &mut Self {
        self.push_key(key);
        self.buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Adds a pre-rendered JSON value (object, array, or literal) verbatim.
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn object_builder_renders_in_order() {
        let mut obj = JsonObject::new();
        obj.field_str("name", "x");
        obj.field_u64("n", 3);
        obj.field_f64("rate", 0.5);
        obj.field_raw("inner", "{\"a\":1}");
        assert_eq!(
            obj.finish(),
            "{\"name\":\"x\",\"n\":3,\"rate\":0.5,\"inner\":{\"a\":1}}"
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn bool_and_array_fields() {
        let mut obj = JsonObject::new();
        obj.field_bool("ok", true);
        obj.field_bool("bad", false);
        obj.field_array_u64("xs", [3u64, 1, 4]);
        obj.field_array_u64("empty", []);
        assert_eq!(
            obj.finish(),
            "{\"ok\":true,\"bad\":false,\"xs\":[3,1,4],\"empty\":[]}"
        );
    }
}
