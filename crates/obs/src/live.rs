//! Lock-free live metrics: atomic counters, gauges, and a shard-striped
//! power-of-two histogram.
//!
//! The offline telemetry of this crate ([`Histogram`], [`Recorder`]) is
//! owned by one thread and merged at the end of a run. A *live* telemetry
//! plane needs the opposite: many writer threads updating the same metric
//! wait-free on the hot path, and a reader (a sampler or a `/metrics`
//! scrape) snapshotting at any moment without stopping the world.
//!
//! * [`Counter`] / [`Gauge`] — one relaxed atomic each. A counter only
//!   grows; successive snapshots of it are monotone.
//! * [`AtomicHist`] — the pow2 bucket layout of [`Histogram`], striped
//!   over several independent bucket arrays so concurrent writers on
//!   different stripes never contend on a cache line. `record` is one
//!   bucket `fetch_add` plus sum/min/max updates; `snapshot` folds the
//!   stripes into an ordinary [`Histogram`] whose `count` is **derived
//!   from the bucket counts**, so `count == sum(buckets)` holds in every
//!   snapshot no matter how the reads interleave with writers.
//!
//! [`Recorder`]: crate::Recorder

use crate::hist::{bucket_index, Histogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing event count, updatable wait-free from any
/// thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, pool occupancy, liveness bit):
/// settable and steppable wait-free from any thread.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Steps the level up by one, returning the previous value.
    #[inline]
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Steps the level down by one, returning the previous value. The
    /// caller pairs every `dec` with an earlier `inc` (the gauge does not
    /// guard against underflow, exactly like the depth accounting it
    /// replaces).
    #[inline]
    pub fn dec(&self) -> u64 {
        self.0.fetch_sub(1, Ordering::Relaxed)
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of independent bucket-array stripes. Eight covers the worker
/// counts the service runs with; more threads than stripes just share.
const STRIPES: usize = 8;

/// Round-robin stripe assignment: each thread picks its stripe once, on
/// first use, and keeps it for life — no per-record hashing.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// One stripe: a private bucket array plus a private sum. Separate heap
/// allocations per stripe keep concurrent writers off each other's cache
/// lines.
#[derive(Debug)]
struct Stripe {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

/// A lock-free, multi-writer histogram with the same power-of-two bucket
/// layout as [`Histogram`] (`Histogram::pow2(max_exp)`).
///
/// Writers call [`AtomicHist::record`] wait-free; any thread can call
/// [`AtomicHist::snapshot`] at any time and gets a coherent [`Histogram`]
/// whose `count` equals the sum of its bucket counts.
///
/// # Examples
///
/// ```
/// use sudoku_obs::AtomicHist;
///
/// let h = AtomicHist::pow2(20);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for v in 0..1000u64 {
///                 h.record(v);
///             }
///         });
///     }
/// });
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4000);
/// ```
#[derive(Debug)]
pub struct AtomicHist {
    stripes: Box<[Stripe]>,
    max_exp: u32,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    /// A histogram with buckets `0..=1, 2, 4, …, 2^max_exp` plus overflow —
    /// the exact layout of [`Histogram::pow2`], so snapshots merge with
    /// offline histograms of the same `max_exp`.
    pub fn pow2(max_exp: u32) -> Self {
        assert!((1..=63).contains(&max_exp), "max_exp must be in 1..=63");
        let n_buckets = max_exp as usize + 2;
        let stripes = (0..STRIPES)
            .map(|_| Stripe {
                counts: (0..n_buckets).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            })
            .collect();
        AtomicHist {
            stripes,
            max_exp,
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample, wait-free: one `fetch_add` on the calling
    /// thread's stripe bucket, one on its stripe sum, and two relaxed
    /// min/max updates.
    #[inline]
    pub fn record(&self, v: u64) {
        let stripe = &self.stripes[MY_STRIPE.with(|s| *s)];
        stripe.counts[bucket_index(v, self.max_exp)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of buckets (`max_exp + 2`: `0..=1`, each power of two up to
    /// `2^max_exp`, plus overflow). Indexes returned by
    /// [`AtomicHist::bucket_of`] are always `< n_buckets()`.
    pub fn n_buckets(&self) -> usize {
        self.max_exp as usize + 2
    }

    /// The bucket index a sample of value `v` lands in — the same mapping
    /// [`AtomicHist::record`] uses. Exposed so callers can maintain
    /// per-bucket side tables (e.g. exemplar trace IDs keyed by latency
    /// bucket) that stay aligned with this histogram's layout.
    #[inline]
    pub fn bucket_of(&self, v: u64) -> usize {
        bucket_index(v, self.max_exp)
    }

    /// Upper bound of bucket `i` (`u64::MAX` for the overflow bucket) —
    /// the `le` value a Prometheus rendering of this bucket would carry.
    pub fn bucket_bound(&self, i: usize) -> u64 {
        if i as u32 > self.max_exp {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Folds the stripes into an ordinary [`Histogram`] without blocking
    /// writers. The snapshot's `count` is derived from its bucket counts
    /// (never from a separately-raced total), so
    /// `snapshot.count() == sum(buckets)` holds unconditionally, and —
    /// because every bucket only grows — successive snapshots from one
    /// reader thread have monotone counts.
    pub fn snapshot(&self) -> Histogram {
        let n_buckets = self.max_exp as usize + 2;
        let mut counts = vec![0u64; n_buckets];
        let mut sum = 0u64;
        for stripe in self.stripes.iter() {
            for (total, c) in counts.iter_mut().zip(stripe.counts.iter()) {
                *total += c.load(Ordering::Relaxed);
            }
            sum += stripe.sum.load(Ordering::Relaxed);
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        Histogram::from_parts(counts, self.max_exp, sum, min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.inc(), 7);
        assert_eq!(g.dec(), 8);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn atomic_hist_matches_sequential_histogram() {
        let atomic = AtomicHist::pow2(8);
        let mut reference = Histogram::pow2(8);
        for v in [0u64, 1, 2, 3, 5, 16, 17, 300, 1 << 20] {
            atomic.record(v);
            reference.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap, reference, "same layout, same buckets, same stats");
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let atomic = AtomicHist::pow2(8);
        let snap = atomic.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.try_quantile(0.5), None);
    }

    #[test]
    fn snapshot_merges_into_offline_histogram() {
        let atomic = AtomicHist::pow2(8);
        atomic.record(5);
        let mut offline = Histogram::pow2(8);
        offline.record(9);
        offline.merge(&atomic.snapshot());
        assert_eq!(offline.count(), 2);
        assert_eq!(offline.sum(), 14);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let h = AtomicHist::pow2(16);
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1000 + i % 100);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8 * per_thread);
        let bucket_total: u64 = snap.all_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(snap.count(), bucket_total);
    }
}
