//! # sudoku-obs
//!
//! Structured recovery telemetry for the SuDoku reproduction.
//!
//! The correction engines in `sudoku-core` surface end-of-run aggregates
//! ([`CacheStats`-style counters]); this crate adds the *forensic* layer the
//! field-fault literature calls for — per-event records from which a DUE
//! line's full escalation chain (ECC-1 miss → CRC detect → RAID-4 blocked →
//! SDR trials → Hash-2 retry) can be reconstructed after the fact:
//!
//! * [`RecoveryEvent`] — one structured record per repair attempt, with
//!   interval, line, group, hash dimension, mechanism, trial count, and
//!   outcome; serializable to/from JSONL without external dependencies;
//! * [`EventSink`] / [`Recorder`] — emission is gated behind a sink
//!   resolved at construction: the disabled recorder costs one branch per
//!   emission site and nothing else (no event construction, no recording);
//! * [`Histogram`] / [`RecoveryHistograms`] — fixed-bucket, allocation-free
//!   on the hot path: SDR trials per resurrection, group-scan sizes, faults
//!   per line, and estimated per-line recovery latency;
//! * [`Counter`] / [`Gauge`] / [`AtomicHist`] — the *live* plane: lock-free
//!   metrics that worker threads update wait-free and a sampler or
//!   `/metrics` scrape snapshots without stopping the world;
//! * [`PhaseTimes`] — span timing for campaign phases (inject / scrub /
//!   recover / reset), merged across workers;
//! * [`forensics`] — escalation-chain reconstruction and breakdowns over a
//!   drained or replayed event log.
//!
//! [`CacheStats`-style counters]: RecoveryEvent

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alert;
mod event;
pub mod forensics;
mod hist;
pub mod json;
mod live;
mod sink;
mod span;

pub use alert::{Alert, AlertClass, AlertLog, Severity};
pub use event::{Dim, Mechanism, Outcome, RecoveryEvent};
pub use hist::{Histogram, RecoveryHistograms, ServiceHistograms};
pub use live::{AtomicHist, Counter, Gauge};
pub use sink::{EventSink, JsonlSink, MemorySink, NullSink, Recorder};
pub use span::{Phase, PhaseTimes, PHASES};
