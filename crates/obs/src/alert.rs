//! Structured anomaly alerts: the watchdog's output stream.
//!
//! The live plane ([`crate::Counter`], [`crate::Gauge`], [`crate::AtomicHist`])
//! answers "what is the level right now"; this module answers "when did a
//! level cross a line, and which line". An [`Alert`] is one threshold
//! crossing — scrub deadline missed, tick lag breached, daemon silent,
//! queue pinned at its bound, error budget burning too fast — with enough
//! context (shard, observed value, threshold) to act on without replaying
//! a flight recording.
//!
//! [`AlertLog`] is the shared sink: a bounded ring any thread can raise
//! into and any scraper can read, per-class lock-free counters for cheap
//! `/metrics` exposition, and an optional line-flushed JSONL file so a
//! crash loses nothing (alerts are rare; one `flush` per alert is cheap).

use crate::live::Counter;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What kind of threshold crossing an alert reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlertClass {
    /// A line-range packet's achieved scrub interval exceeded the hard
    /// deadline the BER math assumes (the paper's 20 ms guarantee).
    DeadlineMiss,
    /// The scrub daemon's tick started later than the configured lag
    /// budget — scrub cadence is slipping under load.
    TickLagBreach,
    /// A shard's queue sat at its configured bound across consecutive
    /// flight-recorder snapshots — sustained saturation, not a blip.
    QueueSaturation,
    /// The scrub daemon thread died (panicked) — no scrub is running.
    DaemonDead,
    /// The daemon thread is alive but its tick counter stopped advancing —
    /// a stall (stuck lock, livelock), distinct from death.
    DaemonStuck,
    /// A shard was quarantined (worker panic or poisoned lock).
    ShardQuarantined,
    /// The live reliability estimator projects DUE-rate above the
    /// configured error-budget envelope on a sustained window.
    BudgetBurn,
}

impl AlertClass {
    /// Every class with its wire name, in a fixed exposition order.
    pub const ALL: &'static [(AlertClass, &'static str)] = &[
        (AlertClass::DeadlineMiss, "deadline_miss"),
        (AlertClass::TickLagBreach, "tick_lag_breach"),
        (AlertClass::QueueSaturation, "queue_saturation"),
        (AlertClass::DaemonDead, "daemon_dead"),
        (AlertClass::DaemonStuck, "daemon_stuck"),
        (AlertClass::ShardQuarantined, "shard_quarantined"),
        (AlertClass::BudgetBurn, "budget_burn"),
    ];

    /// The wire name (snake_case, stable across releases).
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|&&(c, _)| c == self)
            .map(|&(_, n)| n)
            .unwrap_or("?")
    }

    /// Parses a wire name back to a class.
    pub fn parse(s: &str) -> Option<AlertClass> {
        Self::ALL.iter().find(|(_, n)| *n == s).map(|&(c, _)| c)
    }

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&(c, _)| c == self)
            .unwrap_or(Self::ALL.len() - 1)
    }
}

impl fmt::Display for AlertClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How urgent an alert is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Degradation that the service survives (slipped deadline, burn rate
    /// trending over budget) — investigate, no page.
    Warning,
    /// A reliability guarantee is void (daemon dead/stuck, sustained
    /// deadline misses) — page.
    Critical,
}

impl Severity {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One threshold crossing.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// Monotone sequence number within the owning [`AlertLog`] (1-based).
    /// Scrapers poll `/alerts.json` and dedupe on this.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at raise time.
    pub unix_ms: u64,
    /// What crossed.
    pub class: AlertClass,
    /// How urgent.
    pub severity: Severity,
    /// The shard concerned, if the condition is per-shard.
    pub shard: Option<usize>,
    /// The observed value (units depend on `class`: ns of staleness, ns of
    /// tick lag, queue depth, projected FIT …).
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Human-readable one-liner with the units spelled out.
    pub message: String,
}

impl Alert {
    /// Serializes the alert as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let shard = match self.shard {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\":{},\"unix_ms\":{},\"class\":\"{}\",\"severity\":\"{}\",\
             \"shard\":{},\"value\":{},\"threshold\":{},\"message\":\"{}\"}}",
            self.seq,
            self.unix_ms,
            self.class,
            self.severity,
            shard,
            fmt_f64(self.value),
            fmt_f64(self.threshold),
            escape(&self.message),
        )
    }
}

/// Finite floats as shortest-roundtrip decimal; non-finite as null (JSON
/// has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct LogInner {
    ring: VecDeque<Alert>,
    dropped: u64,
    jsonl: Option<std::io::BufWriter<std::fs::File>>,
}

/// The shared alert stream: bounded ring + per-class counters + optional
/// JSONL file, all behind one short mutex (alerts are rare events; the
/// counters alone are lock-free for `/metrics`).
pub struct AlertLog {
    inner: Mutex<LogInner>,
    capacity: usize,
    next_seq: AtomicU64,
    by_class: Vec<Counter>,
    criticals: Counter,
}

impl fmt::Debug for AlertLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlertLog")
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .finish()
    }
}

impl AlertLog {
    /// A log retaining the most recent `capacity` alerts in memory.
    pub fn ring(capacity: usize) -> Self {
        AlertLog {
            inner: Mutex::new(LogInner {
                ring: VecDeque::new(),
                dropped: 0,
                jsonl: None,
            }),
            capacity,
            next_seq: AtomicU64::new(0),
            by_class: (0..AlertClass::ALL.len()).map(|_| Counter::new()).collect(),
            criticals: Counter::new(),
        }
    }

    /// A ring that additionally appends every alert to a freshly created
    /// JSONL file, flushed per line (an alert that never hits disk before
    /// a crash is an alert that never happened).
    pub fn with_jsonl(capacity: usize, path: &Path) -> std::io::Result<Self> {
        let log = Self::ring(capacity);
        log.inner.lock().unwrap().jsonl =
            Some(std::io::BufWriter::new(std::fs::File::create(path)?));
        Ok(log)
    }

    /// Raises one alert; returns its sequence number.
    pub fn raise(
        &self,
        class: AlertClass,
        severity: Severity,
        shard: Option<usize>,
        value: f64,
        threshold: f64,
        message: impl Into<String>,
    ) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let alert = Alert {
            seq,
            unix_ms,
            class,
            severity,
            shard,
            value,
            threshold,
            message: message.into(),
        };
        self.by_class[class.index()].inc();
        if severity == Severity::Critical {
            self.criticals.inc();
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(out) = inner.jsonl.as_mut() {
            let _ = writeln!(out, "{}", alert.to_json());
            let _ = out.flush();
        }
        if self.capacity == 0 {
            inner.dropped += 1;
        } else {
            if inner.ring.len() == self.capacity {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(alert);
        }
        seq
    }

    /// Total alerts ever raised (including any evicted from the ring).
    pub fn total(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Alerts raised for one class (lock-free).
    pub fn count(&self, class: AlertClass) -> u64 {
        self.by_class[class.index()].get()
    }

    /// Critical-severity alerts raised (lock-free).
    pub fn criticals(&self) -> u64 {
        self.criticals.get()
    }

    /// Alerts evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Clones of the most recent `n` retained alerts, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Alert> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Retained alerts with `seq > after`, oldest first — the polling
    /// contract of `/alerts.json?after=N`.
    pub fn since(&self, after: u64) -> Vec<Alert> {
        let inner = self.inner.lock().unwrap();
        inner
            .ring
            .iter()
            .filter(|a| a.seq > after)
            .cloned()
            .collect()
    }

    /// The whole log as a JSON document: totals per class plus the
    /// retained ring (most recent `limit`).
    pub fn to_json(&self, limit: usize) -> String {
        let mut out = String::from("{\"total\":");
        out.push_str(&self.total().to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.dropped().to_string());
        out.push_str(",\"by_class\":{");
        for (i, &(class, name)) in AlertClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", self.count(class)));
        }
        out.push_str("},\"alerts\":[");
        for (i, alert) in self.recent(limit).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&alert.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Flushes the JSONL file, if any.
    pub fn flush(&self) {
        if let Some(out) = self.inner.lock().unwrap().jsonl.as_mut() {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_counts_and_ring() {
        let log = AlertLog::ring(2);
        let s1 = log.raise(
            AlertClass::DeadlineMiss,
            Severity::Warning,
            Some(1),
            25e6,
            20e6,
            "packet 3 scrubbed 25ms late",
        );
        assert_eq!(s1, 1);
        log.raise(
            AlertClass::DaemonDead,
            Severity::Critical,
            None,
            1.0,
            0.0,
            "daemon dead",
        );
        log.raise(
            AlertClass::DeadlineMiss,
            Severity::Warning,
            Some(2),
            30e6,
            20e6,
            "again",
        );
        assert_eq!(log.total(), 3);
        assert_eq!(log.count(AlertClass::DeadlineMiss), 2);
        assert_eq!(log.count(AlertClass::DaemonDead), 1);
        assert_eq!(log.criticals(), 1);
        assert_eq!(log.dropped(), 1);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[1].seq, 3);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(2)[0].seq, 3);
        assert!(log.since(3).is_empty());
    }

    #[test]
    fn json_shapes() {
        let log = AlertLog::ring(8);
        log.raise(
            AlertClass::TickLagBreach,
            Severity::Warning,
            Some(0),
            5.5e6,
            2e6,
            "tick started 5.5ms late \"quoted\"",
        );
        let doc = log.to_json(8);
        assert!(doc.contains("\"class\":\"tick_lag_breach\""));
        assert!(doc.contains("\"severity\":\"warning\""));
        assert!(doc.contains("\"shard\":0"));
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("\"by_class\""));
        let alert = &log.recent(1)[0];
        assert!(alert.to_json().starts_with("{\"seq\":1,"));
        // Non-finite values must stay valid JSON.
        let a = Alert {
            value: f64::INFINITY,
            ..alert.clone()
        };
        assert!(a.to_json().contains("\"value\":null"));
    }

    #[test]
    fn class_names_roundtrip() {
        for &(c, name) in AlertClass::ALL {
            assert_eq!(AlertClass::parse(name), Some(c));
            assert_eq!(c.name(), name);
        }
        assert_eq!(AlertClass::parse("nope"), None);
    }

    #[test]
    fn jsonl_file_gets_every_alert() {
        let dir = std::env::temp_dir().join(format!("sudoku_alert_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alerts.jsonl");
        let log = AlertLog::with_jsonl(4, &path).unwrap();
        log.raise(
            AlertClass::DaemonStuck,
            Severity::Critical,
            None,
            3.0,
            1.0,
            "no tick in 3 periods",
        );
        // Per-line flush: visible without dropping the log.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("daemon_stuck"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
