//! Span timing for campaign phases.

use crate::json::JsonObject;
use std::fmt;

/// The four phases a Monte-Carlo campaign trial cycles through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Sampling the fault plan and flipping the planned bits.
    Inject,
    /// The scrub pass over hinted lines (includes recovery — see
    /// [`Phase::Recover`], which is the nested portion).
    Scrub,
    /// Group recovery (RAID-4 / SDR / cross-hash), a sub-span of `Scrub`
    /// timed inside the cache.
    Recover,
    /// Returning the reused arena to the golden-zero state.
    Reset,
}

/// All phases, in display order.
pub const PHASES: [Phase; 4] = [Phase::Inject, Phase::Scrub, Phase::Recover, Phase::Reset];

impl Phase {
    #[inline]
    fn idx(self) -> usize {
        match self {
            Phase::Inject => 0,
            Phase::Scrub => 1,
            Phase::Recover => 2,
            Phase::Reset => 3,
        }
    }

    /// Lower-case phase name (JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Inject => "inject",
            Phase::Scrub => "scrub",
            Phase::Recover => "recover",
            Phase::Reset => "reset",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated wall-clock per phase (seconds) and span counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    secs: [f64; 4],
    spans: [u64; 4],
}

impl PhaseTimes {
    /// Adds one span of `secs` seconds to a phase.
    #[inline]
    pub fn add(&mut self, phase: Phase, secs: f64) {
        self.secs[phase.idx()] += secs;
        self.spans[phase.idx()] += 1;
    }

    /// Total seconds recorded for a phase.
    pub fn secs(&self, phase: Phase) -> f64 {
        self.secs[phase.idx()]
    }

    /// Number of spans recorded for a phase.
    pub fn spans(&self, phase: Phase) -> u64 {
        self.spans[phase.idx()]
    }

    /// Sum over the top-level phases. `Recover` is excluded: it is nested
    /// inside `Scrub` and would double-count.
    pub fn total_secs(&self) -> f64 {
        self.secs(Phase::Inject) + self.secs(Phase::Scrub) + self.secs(Phase::Reset)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.iter().all(|&s| s == 0)
    }

    /// Merges another accumulator (e.g. a worker's) into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for i in 0..4 {
            self.secs[i] += other.secs[i];
            self.spans[i] += other.spans[i];
        }
    }

    /// JSON object `{"inject_s":…, "scrub_s":…, …, "inject_spans":…, …}`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for phase in PHASES {
            obj.field_f64(&format!("{}_s", phase.name()), self.secs(phase));
        }
        for phase in PHASES {
            obj.field_u64(&format!("{}_spans", phase.name()), self.spans(phase));
        }
        obj.finish()
    }

    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        PHASES
            .iter()
            .map(|&p| format!("{} {:.4}s/{}", p.name(), self.secs(p), self.spans(p)))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = PhaseTimes::default();
        a.add(Phase::Inject, 0.5);
        a.add(Phase::Scrub, 1.0);
        a.add(Phase::Recover, 0.25);
        let mut b = PhaseTimes::default();
        b.add(Phase::Scrub, 2.0);
        b.add(Phase::Reset, 0.1);
        a.merge(&b);
        assert_eq!(a.secs(Phase::Scrub), 3.0);
        assert_eq!(a.spans(Phase::Scrub), 2);
        // Recover excluded from the top-level total.
        assert!((a.total_secs() - 3.6).abs() < 1e-12);
        assert!(!a.is_empty());
    }

    #[test]
    fn json_has_every_phase() {
        let mut t = PhaseTimes::default();
        t.add(Phase::Reset, 0.25);
        let json = t.to_json();
        for phase in PHASES {
            assert!(json.contains(&format!("\"{}_s\"", phase.name())), "{json}");
        }
        assert!(json.contains("\"reset_spans\":1"));
    }
}
