//! Event sinks and the per-cache [`Recorder`].

use crate::event::RecoveryEvent;
use crate::hist::RecoveryHistograms;
use crate::span::PhaseTimes;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Destination for emitted [`RecoveryEvent`]s.
///
/// Implementations must be cheap per event; campaign hot paths call
/// `record` once per repair attempt. Custom sinks (sockets, channels,
/// compressed files) plug in via [`Recorder::custom`].
pub trait EventSink: Send {
    /// Accepts one event.
    fn record(&mut self, event: &RecoveryEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Discards everything. Used by [`Recorder::disabled`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: &RecoveryEvent) {}
}

/// In-memory sink: bounded ring buffer or unbounded vector.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: VecDeque<RecoveryEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl MemorySink {
    /// Keeps at most `capacity` recent events, evicting the oldest.
    pub fn ring(capacity: usize) -> Self {
        MemorySink {
            events: VecDeque::new(),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Keeps every event (campaign forensics; memory grows with the log).
    pub fn unbounded() -> Self {
        MemorySink {
            events: VecDeque::new(),
            capacity: None,
            dropped: 0,
        }
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RecoveryEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or suppressed by a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns every retained event, oldest first.
    pub fn drain(&mut self) -> Vec<RecoveryEvent> {
        self.events.drain(..).collect()
    }

    /// Clears the retained events (the dropped counter survives).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &RecoveryEvent) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(*event);
    }
}

/// Streams events as JSON Lines to any writer (typically a file).
///
/// Durability: buffered lines are flushed on [`Drop`] (so a panic that
/// unwinds past the owner still lands the tail of the log on disk) and
/// every [`JsonlSink::FLUSH_EVERY`] records (so even a `process::exit`
/// path, which skips destructors, truncates at most one batch — forensics
/// reads this log after crashes, a mostly-written log beats an empty one).
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
    written: u64,
}

impl JsonlSink {
    /// Records between forced flushes of the underlying writer.
    pub const FLUSH_EVERY: u64 = 256;

    /// A sink appending JSONL records to `writer`.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(writer),
            written: 0,
        }
    }

    /// A sink writing to a freshly created (truncated) file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("written", &self.written)
            .finish()
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, event: &RecoveryEvent) {
        let _ = writeln!(self.out, "{}", event.to_jsonl());
        self.written += 1;
        if self.written.is_multiple_of(Self::FLUSH_EVERY) {
            let _ = self.out.flush();
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[derive(Default)]
enum SinkKind {
    #[default]
    Null,
    Memory(MemorySink),
    Custom(Box<dyn EventSink>),
}

impl std::fmt::Debug for SinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkKind::Null => f.write_str("Null"),
            SinkKind::Memory(m) => f.debug_tuple("Memory").field(m).finish(),
            SinkKind::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// The telemetry attachment a cache (or campaign worker) owns: an event
/// sink resolved at construction, the recovery histograms, the phase-span
/// accumulator, and the current interval stamp.
///
/// The whole recorder is gated on [`Recorder::enabled`]: every emission
/// site checks it first, so a disabled recorder costs one predictable
/// branch — no event is constructed, no histogram touched, no clock read.
#[derive(Debug, Default)]
pub struct Recorder {
    sink: SinkKind,
    enabled: bool,
    interval: u64,
    trace: u64,
    /// Histograms populated by the recovery paths.
    pub hists: RecoveryHistograms,
    /// Phase spans populated by campaigns (and the in-cache recover span).
    pub phases: PhaseTimes,
}

impl Recorder {
    fn with_sink(sink: SinkKind, enabled: bool) -> Self {
        Recorder {
            sink,
            enabled,
            interval: 0,
            trace: 0,
            hists: RecoveryHistograms::default(),
            phases: PhaseTimes::default(),
        }
    }

    /// The zero-cost recorder: nothing is collected.
    pub fn disabled() -> Self {
        Self::with_sink(SinkKind::Null, false)
    }

    /// Collects into a bounded in-memory ring of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Self::with_sink(SinkKind::Memory(MemorySink::ring(capacity)), true)
    }

    /// Collects every event in memory (campaign forensics).
    pub fn unbounded() -> Self {
        Self::with_sink(SinkKind::Memory(MemorySink::unbounded()), true)
    }

    /// Streams events to a JSONL file, truncating it first.
    pub fn jsonl(path: &Path) -> std::io::Result<Self> {
        Ok(Self::with_sink(
            SinkKind::Custom(Box::new(JsonlSink::create(path)?)),
            true,
        ))
    }

    /// Routes events to a caller-supplied sink.
    pub fn custom(sink: Box<dyn EventSink>) -> Self {
        Self::with_sink(SinkKind::Custom(sink), true)
    }

    /// Whether emission sites should do any work at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Stamps subsequent events with `interval` (campaign trial index).
    pub fn set_interval(&mut self, interval: u64) {
        self.interval = interval;
    }

    /// The current interval stamp.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Stamps subsequent events with the causal trace ID of the demand
    /// request currently driving this recorder's cache (0 = background
    /// work). The service sets this before a traced read/write and clears
    /// it afterwards, so scrub-time repairs are never mis-attributed.
    #[inline]
    pub fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    /// The current trace stamp.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Emits one event, stamping it with the current interval. Call only
    /// when [`Recorder::enabled`] — emitting on a disabled recorder is a
    /// silent no-op, but the caller has then already paid to build the
    /// event.
    #[inline]
    pub fn emit(&mut self, mut event: RecoveryEvent) {
        if !self.enabled {
            return;
        }
        event.interval = self.interval;
        event.trace = self.trace;
        match &mut self.sink {
            SinkKind::Null => {}
            SinkKind::Memory(m) => m.record(&event),
            SinkKind::Custom(c) => c.record(&event),
        }
    }

    /// Retained events, oldest first (empty for non-memory sinks).
    pub fn events(&self) -> impl Iterator<Item = &RecoveryEvent> {
        match &self.sink {
            SinkKind::Memory(m) => Some(m.iter()),
            _ => None,
        }
        .into_iter()
        .flatten()
    }

    /// Number of retained events (0 for non-memory sinks).
    pub fn events_len(&self) -> usize {
        match &self.sink {
            SinkKind::Memory(m) => m.len(),
            _ => 0,
        }
    }

    /// Events evicted from a bounded memory ring so far.
    pub fn events_dropped(&self) -> u64 {
        match &self.sink {
            SinkKind::Memory(m) => m.dropped(),
            _ => 0,
        }
    }

    /// Removes and returns retained events (empty for non-memory sinks).
    pub fn drain_events(&mut self) -> Vec<RecoveryEvent> {
        match &mut self.sink {
            SinkKind::Memory(m) => m.drain(),
            _ => Vec::new(),
        }
    }

    /// Clears retained events; histograms and phase times survive.
    pub fn clear_events(&mut self) {
        if let SinkKind::Memory(m) = &mut self.sink {
            m.clear();
        }
    }

    /// Flushes a streaming sink.
    pub fn flush(&mut self) {
        match &mut self.sink {
            SinkKind::Custom(c) => c.flush(),
            SinkKind::Null | SinkKind::Memory(_) => {}
        }
    }

    /// Merges a child recorder (typically a shard worker's) into this one:
    /// histograms and phase spans accumulate, and the child's *retained*
    /// events are appended to this recorder's sink with their original
    /// interval stamps preserved (unlike [`Recorder::emit`], which
    /// restamps). Events already streamed by the child, and its
    /// dropped-event count, have nothing to transfer.
    pub fn absorb(&mut self, mut child: Recorder) {
        self.hists.merge(&child.hists);
        self.phases.merge(&child.phases);
        for event in child.drain_events() {
            if !self.enabled {
                break;
            }
            match &mut self.sink {
                SinkKind::Null => {}
                SinkKind::Memory(m) => m.record(&event),
                SinkKind::Custom(c) => c.record(&event),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Mechanism, Outcome};

    fn ev(line: u64) -> RecoveryEvent {
        RecoveryEvent {
            interval: 0,
            trace: 0,
            line,
            group: None,
            hash_dim: None,
            mechanism: Mechanism::Ecc1,
            outcome: Outcome::Repaired,
            trials: 0,
        }
    }

    #[test]
    fn ring_is_bounded_fifo() {
        let mut r = Recorder::ring(3);
        for line in 0..5 {
            r.emit(ev(line));
        }
        assert_eq!(r.events_len(), 3);
        assert_eq!(r.events_dropped(), 2);
        let lines: Vec<u64> = r.events().map(|e| e.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
        r.clear_events();
        assert_eq!(r.events_len(), 0);
        assert_eq!(r.events_dropped(), 2);
    }

    #[test]
    fn zero_capacity_ring_suppresses() {
        let mut r = Recorder::ring(0);
        r.emit(ev(1));
        assert_eq!(r.events_len(), 0);
        assert_eq!(r.events_dropped(), 1);
    }

    #[test]
    fn disabled_recorder_collects_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.enabled());
        r.emit(ev(1));
        assert_eq!(r.events_len(), 0);
        assert!(r.drain_events().is_empty());
    }

    #[test]
    fn trace_stamping_set_and_cleared() {
        let mut r = Recorder::unbounded();
        r.set_trace(99);
        r.emit(ev(1));
        r.set_trace(0);
        r.emit(ev(2));
        let traces: Vec<u64> = r.events().map(|e| e.trace).collect();
        assert_eq!(traces, vec![99, 0]);
    }

    #[test]
    fn interval_stamping_and_drain() {
        let mut r = Recorder::unbounded();
        r.set_interval(9);
        r.emit(ev(5));
        r.set_interval(10);
        r.emit(ev(6));
        let events = r.drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].interval, 9);
        assert_eq!(events[1].interval, 10);
        assert_eq!(r.events_len(), 0);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        {
            let mut sink = JsonlSink::new(Box::new(buf.clone()));
            sink.record(&ev(42));
            sink.record(&ev(43));
            assert_eq!(sink.written(), 2);
            sink.flush();
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .map(|l| RecoveryEvent::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].line, 42);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop_without_explicit_flush() {
        // Regression: an early-exit path that drops the recorder without
        // calling flush() must not truncate the event log forensics reads.
        let dir = std::env::temp_dir().join(format!("sudoku_obs_drop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let mut r = Recorder::jsonl(&path).unwrap();
            r.emit(ev(7));
            r.emit(ev(8));
            // No flush: the drop path is the one under test.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "buffered lines lost on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_sink_flushes_periodically() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        for line in 0..JsonlSink::FLUSH_EVERY {
            sink.record(&ev(line));
        }
        // The periodic flush fired without drop or an explicit flush():
        // even a destructor-skipping exit loses at most one batch.
        let seen = buf.0.lock().unwrap().len();
        assert!(seen > 0, "no bytes reached the writer after a full batch");
        std::mem::forget(sink); // simulate process::exit: no Drop
        let lines = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(lines.lines().count() as u64, JsonlSink::FLUSH_EVERY);
    }

    #[test]
    fn absorb_merges_hists_phases_and_events() {
        let mut parent = Recorder::unbounded();
        parent.set_interval(3);
        parent.emit(ev(1));
        parent.hists.faults_per_line.record(2);
        let mut child = Recorder::ring(16);
        child.set_interval(7);
        child.emit(ev(2));
        child.hists.faults_per_line.record(5);
        child.phases.add(crate::span::Phase::Scrub, 0.25);
        parent.absorb(child);
        assert_eq!(parent.hists.faults_per_line.count(), 2);
        assert_eq!(parent.phases.spans(crate::span::Phase::Scrub), 1);
        let intervals: Vec<u64> = parent.events().map(|e| e.interval).collect();
        // The child's stamp survives absorption; the parent's own event
        // keeps its stamp too.
        assert_eq!(intervals, vec![3, 7]);
    }

    #[test]
    fn custom_sink_receives_events() {
        struct Counter(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl EventSink for Counter {
            fn record(&mut self, _event: &RecoveryEvent) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let n = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut r = Recorder::custom(Box::new(Counter(n.clone())));
        r.emit(ev(1));
        r.emit(ev(2));
        r.flush();
        assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
