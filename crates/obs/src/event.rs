//! The structured recovery event: one record per repair attempt.

use std::fmt;

/// Which hash dimension a group-level mechanism operated in.
///
/// Mirrors `sudoku_core::HashDim` without depending on it — `sudoku-obs`
/// sits below every other crate in the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// Hash-1: consecutive-line RAID-Groups (SuDoku-X/Y/Z).
    H1,
    /// Hash-2: skewed RAID-Groups (SuDoku-Z only).
    H2,
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dim::H1 => "H1",
            Dim::H2 => "H2",
        })
    }
}

/// Which mechanism of the recovery ladder an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// Transient faults injected into a line (campaign injection record).
    Inject,
    /// Per-line ECC-1 acting on a payload bit.
    Ecc1,
    /// Regeneration of the ECC metadata field itself.
    EccField,
    /// CRC flagged the line as multi-bit faulty (detection, not repair).
    CrcDetect,
    /// RAID-4 reconstruction from the group parity.
    Raid4,
    /// Sequential Data Resurrection (parity-guided bit-flip trials).
    Sdr,
    /// The line was declared detectably uncorrectable.
    Due,
}

impl Mechanism {
    const ALL: &'static [(Mechanism, &'static str)] = &[
        (Mechanism::Inject, "Inject"),
        (Mechanism::Ecc1, "Ecc1"),
        (Mechanism::EccField, "EccField"),
        (Mechanism::CrcDetect, "CrcDetect"),
        (Mechanism::Raid4, "Raid4"),
        (Mechanism::Sdr, "Sdr"),
        (Mechanism::Due, "Due"),
    ];

    fn parse(s: &str) -> Option<Mechanism> {
        Self::ALL.iter().find(|(_, n)| *n == s).map(|&(m, _)| m)
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = Self::ALL
            .iter()
            .find(|&&(m, _)| m == *self)
            .map(|&(_, n)| n)
            .unwrap_or("?");
        f.write_str(name)
    }
}

/// What an event's mechanism actually did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Faults were injected (paired with [`Mechanism::Inject`]).
    Injected,
    /// The mechanism detected corruption without repairing it.
    Detected,
    /// The line was restored to a valid codeword.
    Repaired,
    /// The mechanism could not run (e.g. RAID-4 with ≥2 casualties).
    Blocked,
    /// The mechanism ran and gave up (e.g. SDR exhausted its trials).
    Failed,
}

impl Outcome {
    const ALL: &'static [(Outcome, &'static str)] = &[
        (Outcome::Injected, "Injected"),
        (Outcome::Detected, "Detected"),
        (Outcome::Repaired, "Repaired"),
        (Outcome::Blocked, "Blocked"),
        (Outcome::Failed, "Failed"),
    ];

    fn parse(s: &str) -> Option<Outcome> {
        Self::ALL.iter().find(|(_, n)| *n == s).map(|&(o, _)| o)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = Self::ALL
            .iter()
            .find(|&&(o, _)| o == *self)
            .map(|&(_, n)| n)
            .unwrap_or("?");
        f.write_str(name)
    }
}

/// One structured record of a repair attempt (or injection, or DUE).
///
/// Collecting every event of a campaign and grouping by `(interval, line)`
/// reconstructs each line's escalation chain — see [`crate::forensics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Scrub interval (campaign trial) the event belongs to; stamped by the
    /// owning [`crate::Recorder`].
    pub interval: u64,
    /// Causal trace ID of the demand request this repair ran under, stamped
    /// by the owning [`crate::Recorder`] (0 = background work: scrub
    /// sweeps, campaigns, and anything not attributable to one request).
    /// A service's `/traces.json` sample and a shard's event ring share
    /// this ID, so a sampled DUE can be reconstructed end to end.
    pub trace: u64,
    /// The affected cache line.
    pub line: u64,
    /// RAID-Group id the mechanism operated on (`None` for per-line
    /// mechanisms that never consulted a group).
    pub group: Option<u64>,
    /// Hash dimension of `group` (`None` for per-line mechanisms).
    pub hash_dim: Option<Dim>,
    /// Which ladder rung acted.
    pub mechanism: Mechanism,
    /// What it did.
    pub outcome: Outcome,
    /// Work spent: flip-and-check trials for SDR, injected fault bits for
    /// `Inject`, blocked-casualty count for `Raid4`/`Blocked`, else 0.
    pub trials: u32,
}

impl RecoveryEvent {
    /// Serializes the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let group = match self.group {
            Some(g) => g.to_string(),
            None => "null".to_string(),
        };
        let dim = match self.hash_dim {
            Some(d) => format!("\"{d}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"interval\":{},\"trace\":{},\"line\":{},\"group\":{},\"hash_dim\":{},\
             \"mechanism\":\"{}\",\"outcome\":\"{}\",\"trials\":{}}}",
            self.interval,
            self.trace,
            self.line,
            group,
            dim,
            self.mechanism,
            self.outcome,
            self.trials
        )
    }

    /// Parses one JSONL line produced by [`RecoveryEvent::to_jsonl`].
    ///
    /// Returns `None` on any malformed or missing field. The parser is a
    /// deliberate subset of JSON (flat object, no escapes, no nesting) —
    /// exactly the shape `to_jsonl` emits.
    pub fn from_jsonl(line: &str) -> Option<RecoveryEvent> {
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\":");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim())
        };
        let unquote = |v: &str| -> Option<String> {
            v.strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_string)
        };
        let group = match field("group")? {
            "null" => None,
            v => Some(v.parse().ok()?),
        };
        let hash_dim = match field("hash_dim")? {
            "null" => None,
            v => Some(match unquote(v)?.as_str() {
                "H1" => Dim::H1,
                "H2" => Dim::H2,
                _ => return None,
            }),
        };
        Some(RecoveryEvent {
            interval: field("interval")?.parse().ok()?,
            // Absent in pre-trace logs: default to "background work".
            trace: field("trace").and_then(|v| v.parse().ok()).unwrap_or(0),
            line: field("line")?.parse().ok()?,
            group,
            hash_dim,
            mechanism: Mechanism::parse(&unquote(field("mechanism")?)?)?,
            outcome: Outcome::parse(&unquote(field("outcome")?)?)?,
            trials: field("trials")?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecoveryEvent {
        RecoveryEvent {
            interval: 7,
            trace: 42,
            line: 12345,
            group: Some(24),
            hash_dim: Some(Dim::H2),
            mechanism: Mechanism::Sdr,
            outcome: Outcome::Repaired,
            trials: 9,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let ev = sample();
        assert_eq!(RecoveryEvent::from_jsonl(&ev.to_jsonl()), Some(ev));
    }

    #[test]
    fn jsonl_roundtrip_with_nulls() {
        let ev = RecoveryEvent {
            group: None,
            hash_dim: None,
            mechanism: Mechanism::Ecc1,
            outcome: Outcome::Repaired,
            trials: 0,
            ..sample()
        };
        let text = ev.to_jsonl();
        assert!(text.contains("\"group\":null"));
        assert_eq!(RecoveryEvent::from_jsonl(&text), Some(ev));
    }

    #[test]
    fn missing_trace_defaults_to_background() {
        // Pre-trace logs (PR ≤ 6) have no "trace" key; they must still parse.
        let legacy = sample().to_jsonl().replace("\"trace\":42,", "");
        let ev = RecoveryEvent::from_jsonl(&legacy).expect("legacy line parses");
        assert_eq!(ev.trace, 0);
        assert_eq!(ev.line, 12345);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert_eq!(RecoveryEvent::from_jsonl(""), None);
        assert_eq!(RecoveryEvent::from_jsonl("{\"interval\":1}"), None);
        assert_eq!(
            RecoveryEvent::from_jsonl(&sample().to_jsonl().replace("Sdr", "Nope")),
            None
        );
    }

    #[test]
    fn mechanism_and_outcome_display_parse() {
        for &(m, name) in Mechanism::ALL {
            assert_eq!(Mechanism::parse(name), Some(m));
            assert_eq!(m.to_string(), name);
        }
        for &(o, name) in Outcome::ALL {
            assert_eq!(Outcome::parse(name), Some(o));
            assert_eq!(o.to_string(), name);
        }
    }
}
