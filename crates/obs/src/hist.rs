//! Fixed-bucket histograms, allocation-free on the hot path.

use crate::json::JsonObject;

/// A power-of-two-bucketed histogram over `u64` samples.
///
/// Bucket `i` covers `(bounds[i-1], bounds[i]]` with `bounds[i] = 2^i`
/// (bucket 0 covers `0..=1`); one final overflow bucket catches everything
/// above the largest bound. `record` is two compares, a leading-zeros
/// instruction, and four integer adds — no allocation, no branching on
/// sample magnitude beyond the clamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    max_exp: u32,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with buckets `0..=1, 2, 4, …, 2^max_exp` plus overflow.
    pub fn pow2(max_exp: u32) -> Self {
        assert!((1..=63).contains(&max_exp), "max_exp must be in 1..=63");
        Histogram {
            counts: vec![0; max_exp as usize + 2],
            max_exp,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reassembles a histogram from raw parts (an [`AtomicHist`] snapshot).
    /// The sample count is *derived* from the bucket counts, so a snapshot
    /// always satisfies `count == sum(buckets)` even when the source was
    /// being written concurrently.
    ///
    /// [`AtomicHist`]: crate::AtomicHist
    pub(crate) fn from_parts(counts: Vec<u64>, max_exp: u32, sum: u64, min: u64, max: u64) -> Self {
        let count = counts.iter().sum();
        Histogram {
            counts,
            max_exp,
            count,
            sum,
            min,
            max,
        }
    }

    /// Bucket index of a sample: `ceil(log2(v))`, clamped to the overflow
    /// bucket.
    #[inline]
    fn bucket(&self, v: u64) -> usize {
        bucket_index(v, self.max_exp)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let bucket = self.bucket(v);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
    fn bucket_bound(&self, i: usize) -> u64 {
        if i as u32 > self.max_exp {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`), or
    /// `None` when the histogram is empty — an empty histogram has no
    /// quantiles, and conflating "no samples" with "0 ns" hides outages
    /// from dashboards.
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(self.bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the
    /// bucket bound below which at least `q · count` samples fall. Exact
    /// values are not retained, so this is conservative by up to one
    /// power-of-two bucket. Returns 0 on an empty histogram; callers that
    /// must distinguish "no samples" from "fast" use
    /// [`Histogram::try_quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    /// Merges another histogram (same bucket layout) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.max_exp, other.max_exp, "bucket layouts must match");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_bound(i), c))
            .collect()
    }

    /// Every bucket (zero counts included) as `(upper_bound, count)` pairs,
    /// ascending; the final bound is `u64::MAX` (the overflow bucket). The
    /// shape a Prometheus exposition needs for cumulative `le` buckets.
    pub fn all_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bucket_bound(i), c))
            .collect()
    }

    fn quantile_json(&self, q: f64) -> String {
        match self.try_quantile(q) {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        }
    }

    /// Compact JSON rendering: summary statistics plus non-empty buckets.
    /// Quantiles render as `null` when the histogram is empty, so consumers
    /// can tell "no samples" from "fast" (the `count` field agrees).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(bound, c)| {
                if bound == u64::MAX {
                    format!("[\"overflow\",{c}]")
                } else {
                    format!("[{bound},{c}]")
                }
            })
            .collect();
        let mut obj = JsonObject::new();
        obj.field_u64("count", self.count);
        obj.field_u64("sum", self.sum);
        obj.field_f64("mean", self.mean());
        obj.field_u64("min", self.min());
        obj.field_u64("max", self.max);
        obj.field_raw("p50", &self.quantile_json(0.50));
        obj.field_raw("p90", &self.quantile_json(0.90));
        obj.field_raw("p99", &self.quantile_json(0.99));
        obj.field_raw("p999", &self.quantile_json(0.999));
        obj.field_raw("buckets", &format!("[{}]", buckets.join(",")));
        obj.finish()
    }
}

/// Bucket index of sample `v` in a pow2 layout with `max_exp`:
/// `ceil(log2(v))`, clamped to the overflow bucket. Shared by [`Histogram`]
/// and the lock-free [`AtomicHist`](crate::AtomicHist) so their layouts can
/// never drift apart.
#[inline]
pub(crate) fn bucket_index(v: u64, max_exp: u32) -> usize {
    let exp = if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    };
    (exp.min(max_exp + 1)) as usize
}

/// The histogram set a concurrent cache service populates: end-to-end
/// request latencies (queueing included), scrub-tick durations, cross-shard
/// escalation durations, and sampled per-shard queue depths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceHistograms {
    /// Demand-read latency in ns, send to reply.
    pub read_latency_ns: Histogram,
    /// Demand-write latency in ns, send to reply.
    pub write_latency_ns: Histogram,
    /// Wall-clock duration of one shard scrub tick, ns.
    pub scrub_tick_ns: Histogram,
    /// Wall-clock duration of one cross-shard escalation, ns.
    pub escalation_ns: Histogram,
    /// Sampled per-shard request-queue depth.
    pub queue_depth: Histogram,
}

impl Default for ServiceHistograms {
    fn default() -> Self {
        ServiceHistograms {
            read_latency_ns: Histogram::pow2(40),
            write_latency_ns: Histogram::pow2(40),
            scrub_tick_ns: Histogram::pow2(40),
            escalation_ns: Histogram::pow2(40),
            queue_depth: Histogram::pow2(20),
        }
    }
}

impl ServiceHistograms {
    /// Merges another set (e.g. a worker's) into this one.
    pub fn merge(&mut self, other: &ServiceHistograms) {
        self.read_latency_ns.merge(&other.read_latency_ns);
        self.write_latency_ns.merge(&other.write_latency_ns);
        self.scrub_tick_ns.merge(&other.scrub_tick_ns);
        self.escalation_ns.merge(&other.escalation_ns);
        self.queue_depth.merge(&other.queue_depth);
    }

    /// Whether every histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.read_latency_ns.is_empty()
            && self.write_latency_ns.is_empty()
            && self.scrub_tick_ns.is_empty()
            && self.escalation_ns.is_empty()
            && self.queue_depth.is_empty()
    }

    /// JSON object with one entry per histogram.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_raw("read_latency_ns", &self.read_latency_ns.to_json());
        obj.field_raw("write_latency_ns", &self.write_latency_ns.to_json());
        obj.field_raw("scrub_tick_ns", &self.scrub_tick_ns.to_json());
        obj.field_raw("escalation_ns", &self.escalation_ns.to_json());
        obj.field_raw("queue_depth", &self.queue_depth.to_json());
        obj.finish()
    }
}

/// The named histogram set the SuDoku recovery paths populate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryHistograms {
    /// SDR flip-and-check trials spent per successful resurrection.
    pub sdr_trials_per_resurrection: Histogram,
    /// Members read per RAID-Group scan.
    pub group_scan_lines: Histogram,
    /// Injected faulty bits per faulty line (campaign injection records).
    pub faults_per_line: Histogram,
    /// Estimated per-line repair latency in ns, derived from the §VII-B
    /// cost constants (`STT_READ_NS` / `STT_WRITE_NS` / syndrome cycles).
    pub line_recovery_ns: Histogram,
}

impl Default for RecoveryHistograms {
    fn default() -> Self {
        RecoveryHistograms {
            sdr_trials_per_resurrection: Histogram::pow2(16),
            group_scan_lines: Histogram::pow2(16),
            faults_per_line: Histogram::pow2(10),
            line_recovery_ns: Histogram::pow2(32),
        }
    }
}

impl RecoveryHistograms {
    /// Merges another set into this one.
    pub fn merge(&mut self, other: &RecoveryHistograms) {
        self.sdr_trials_per_resurrection
            .merge(&other.sdr_trials_per_resurrection);
        self.group_scan_lines.merge(&other.group_scan_lines);
        self.faults_per_line.merge(&other.faults_per_line);
        self.line_recovery_ns.merge(&other.line_recovery_ns);
    }

    /// Whether every histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.sdr_trials_per_resurrection.is_empty()
            && self.group_scan_lines.is_empty()
            && self.faults_per_line.is_empty()
            && self.line_recovery_ns.is_empty()
    }

    /// JSON object with one entry per histogram.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_raw(
            "sdr_trials_per_resurrection",
            &self.sdr_trials_per_resurrection.to_json(),
        );
        obj.field_raw("group_scan_lines", &self.group_scan_lines.to_json());
        obj.field_raw("faults_per_line", &self.faults_per_line.to_json());
        obj.field_raw("line_recovery_ns", &self.line_recovery_ns.to_json());
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_ceil_log2() {
        let mut h = Histogram::pow2(4);
        for v in [0, 1, 2, 3, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        // 0,1 → bucket 0; 2 → 1; 3,4 → 2; 5 → 3; 16 → 4; 17,1000 → overflow.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1, 2), (2, 1), (4, 2), (8, 1), (16, 1), (u64::MAX, 2)]
        );
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut h = Histogram::pow2(10);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) >= 50 && h.quantile(0.5) <= 64);
        assert_eq!(h.quantile(1.0), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::pow2(8);
        let mut b = Histogram::pow2(8);
        let mut c = Histogram::pow2(8);
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            c.record(v);
        }
        for v in [3u64, 300, 4] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::pow2(8);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.try_quantile(0.99), None, "no samples ⇒ no quantile");
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        let json = h.to_json();
        assert!(json.contains("\"count\":0"), "{json}");
        assert!(
            json.contains("\"p50\":null") && json.contains("\"p999\":null"),
            "empty quantiles must be null, not 0: {json}"
        );
    }

    #[test]
    fn populated_histogram_reports_p90() {
        let mut h = Histogram::pow2(10);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.try_quantile(0.90), Some(h.quantile(0.90)));
        assert!(h.quantile(0.90) >= 90);
        let json = h.to_json();
        assert!(json.contains("\"p90\":"), "{json}");
        assert!(
            !json.contains("null"),
            "populated quantiles are numeric: {json}"
        );
    }

    #[test]
    fn all_buckets_includes_zero_counts_and_overflow() {
        let mut h = Histogram::pow2(4);
        h.record(3);
        let buckets = h.all_buckets();
        assert_eq!(buckets.len(), 6, "max_exp + 2 buckets");
        assert_eq!(buckets.last(), Some(&(u64::MAX, 0)));
        assert_eq!(buckets[2], (4, 1));
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn service_set_merge_and_json() {
        let mut a = ServiceHistograms::default();
        assert!(a.is_empty());
        a.read_latency_ns.record(1_500);
        a.queue_depth.record(3);
        let mut b = ServiceHistograms::default();
        b.read_latency_ns.record(9_000);
        a.merge(&b);
        assert_eq!(a.read_latency_ns.count(), 2);
        assert!(!a.is_empty());
        let json = a.to_json();
        assert!(json.contains("read_latency_ns") && json.contains("queue_depth"));
        assert!(json.contains("\"p999\""));
    }

    #[test]
    fn recovery_set_merge_and_json() {
        let mut a = RecoveryHistograms::default();
        assert!(a.is_empty());
        a.sdr_trials_per_resurrection.record(5);
        a.line_recovery_ns.record(4_600);
        let mut b = RecoveryHistograms::default();
        b.sdr_trials_per_resurrection.record(7);
        a.merge(&b);
        assert_eq!(a.sdr_trials_per_resurrection.count(), 2);
        assert!(a.to_json().contains("sdr_trials_per_resurrection"));
    }
}
