//! Loom-free concurrency soak of the live metrics plane: writer threads
//! hammer a [`Counter`] and an [`AtomicHist`] while a reader snapshots
//! continuously. The invariants under test are exactly the ones the
//! `/metrics` scrape path depends on:
//!
//! * counters observed by a single reader are **monotone** — a later
//!   snapshot never shows a smaller value;
//! * every histogram snapshot is **internally coherent** — its `count`
//!   equals the sum of its bucket counts, no matter how the reader's
//!   bucket loads interleave with concurrent `record` calls (the snapshot
//!   derives `count` from the buckets rather than racing a separate
//!   total);
//! * nothing is lost: after the writers join, the final snapshot accounts
//!   for every recorded sample, with the exact sum.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use sudoku_obs::{AtomicHist, Counter, Gauge};

const WRITERS: usize = 8;
const PER_WRITER: u64 = 50_000;

#[test]
fn snapshots_stay_coherent_under_writer_fire() {
    let hist = Arc::new(AtomicHist::pow2(24));
    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS as u64)
            .map(|w| {
                let hist = Arc::clone(&hist);
                let counter = Arc::clone(&counter);
                let gauge = Arc::clone(&gauge);
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        // A spread of bucket targets, different per writer
                        // so stripes and buckets both see contention.
                        hist.record((w * 1_000 + i) % 65_536);
                        counter.inc();
                        gauge.inc();
                        gauge.dec();
                    }
                })
            })
            .collect();

        // The reader races the writers for the whole soak.
        let reader = {
            let hist = Arc::clone(&hist);
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut last_count = 0u64;
                let mut last_counter = 0u64;
                let mut snapshots = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = hist.snapshot();
                    let bucket_sum: u64 = snap.all_buckets().iter().map(|&(_, c)| c).sum();
                    assert_eq!(
                        snap.count(),
                        bucket_sum,
                        "histogram count must equal the sum of its buckets in every snapshot"
                    );
                    assert!(
                        snap.count() >= last_count,
                        "histogram count went backwards: {} -> {}",
                        last_count,
                        snap.count()
                    );
                    last_count = snap.count();
                    let c = counter.get();
                    assert!(
                        c >= last_counter,
                        "counter went backwards: {last_counter} -> {c}"
                    );
                    last_counter = c;
                    snapshots += 1;
                }
                snapshots
            })
        };

        // The reader races the writers for their entire lifetime, then
        // gets the stop signal.
        for writer in writers {
            writer.join().expect("writers never panic");
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = reader.join().expect("reader never panics");
        assert!(snapshots > 0, "the reader must have raced at least once");
    });

    // Quiesced: exact accounting.
    let total = (WRITERS as u64) * PER_WRITER;
    let snap = hist.snapshot();
    assert_eq!(snap.count(), total, "no recorded sample may be lost");
    let expect_sum: u64 = (0..WRITERS as u64)
        .flat_map(|w| (0..PER_WRITER).map(move |i| (w * 1_000 + i) % 65_536))
        .sum();
    assert_eq!(snap.sum(), expect_sum, "sums must survive striping exactly");
    assert_eq!(counter.get(), total);
    assert_eq!(gauge.get(), 0, "paired inc/dec must cancel");
}

#[test]
fn concurrent_snapshots_from_many_readers_are_each_coherent() {
    let hist = Arc::new(AtomicHist::pow2(16));
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for i in 0..20_000u64 {
                    hist.record(w * 7 + i % 1_024);
                }
            });
        }
        for _ in 0..3 {
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for _ in 0..200 {
                    let snap = hist.snapshot();
                    let bucket_sum: u64 = snap.all_buckets().iter().map(|&(_, c)| c).sum();
                    assert_eq!(snap.count(), bucket_sum);
                }
            });
        }
    });
    assert_eq!(hist.snapshot().count(), 80_000);
}
