//! Property-based tests for the performance simulator.

use proptest::prelude::*;
use sudoku_sim::{
    resolve_workload, CacheMode, CoreSpec, Machine, OverheadConfig, SystemConfig, Workload,
};

fn arb_spec() -> impl Strategy<Value = CoreSpec> {
    (
        1.0f64..50.0,  // apki
        0.05f64..0.6,  // write_frac
        1u64..500_000, // footprint_lines
        64u64..50_000, // hot_lines
        0.0f64..0.95,  // hot_frac
    )
        .prop_map(
            |(apki, write_frac, footprint_lines, hot_lines, hot_frac)| CoreSpec {
                apki,
                write_frac,
                footprint_lines,
                hot_lines,
                hot_frac,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SuDoku replay is never faster than ideal on identical resolved
    /// traces — the monotonicity the Figure-8 normalization relies on —
    /// and its overhead stays sub-3% across random workload shapes.
    #[test]
    fn sudoku_overhead_positive_and_bounded(spec in arb_spec(), seed in any::<u64>()) {
        let sys = SystemConfig::paper_default();
        let w = Workload::rate("prop", spec, 2);
        let resolved = resolve_workload(&sys, &w, 4_000, seed);
        let ideal = Machine::new(sys, CacheMode::Ideal, OverheadConfig::paper_default())
            .simulate(&resolved);
        let sudoku = Machine::new(sys, CacheMode::sudoku_z(), OverheadConfig::paper_default())
            .simulate(&resolved);
        let ratio = sudoku.exec_time_ns / ideal.exec_time_ns;
        prop_assert!(ratio >= 1.0, "ratio {ratio}");
        prop_assert!(ratio < 1.03, "ratio {ratio}");
    }

    /// Functional outcomes are identical across modes and deterministic.
    #[test]
    fn functional_pass_mode_independent(spec in arb_spec(), seed in any::<u64>()) {
        let sys = SystemConfig::paper_default();
        let w = Workload::rate("prop", spec, 2);
        let r1 = resolve_workload(&sys, &w, 2_000, seed);
        let r2 = resolve_workload(&sys, &w, 2_000, seed);
        prop_assert_eq!(&r1, &r2);
        let a = Machine::new(sys, CacheMode::Ideal, OverheadConfig::paper_default())
            .simulate(&r1);
        let b = Machine::new(sys, CacheMode::sudoku_z(), OverheadConfig::paper_default())
            .simulate(&r1);
        prop_assert_eq!(a.llc_hits, b.llc_hits);
        prop_assert_eq!(a.llc_misses, b.llc_misses);
        prop_assert_eq!(a.llc_accesses(), 2 * 2_000);
    }

    /// Accounting identities hold for any workload: hits + misses =
    /// accesses, writebacks ≤ misses, instructions ≥ accesses.
    #[test]
    fn metric_identities(spec in arb_spec(), seed in any::<u64>()) {
        let sys = SystemConfig::paper_default();
        let w = Workload::rate("prop", spec, 3);
        let r = resolve_workload(&sys, &w, 3_000, seed);
        let m = Machine::new(sys, CacheMode::sudoku_z(), OverheadConfig::paper_default())
            .simulate(&r);
        prop_assert_eq!(m.llc_hits + m.llc_misses, m.llc_accesses());
        prop_assert!(m.writebacks <= m.llc_misses);
        prop_assert!(m.instructions >= m.llc_accesses());
        prop_assert!(m.exec_time_ns > 0.0);
        // Two PLTs per store/fill, never more than 2 per access.
        prop_assert!(m.plt_writes <= 2 * m.llc_accesses());
    }

    /// A strictly hotter (more cache-resident) variant of the same
    /// workload never runs slower under the ideal mode.
    #[test]
    fn more_hits_never_slower(spec in arb_spec(), seed in any::<u64>()) {
        let sys = SystemConfig::paper_default();
        let cold = Workload::rate("cold", CoreSpec { hot_frac: 0.0, ..spec }, 2);
        let hot = Workload::rate("hot", CoreSpec { hot_frac: 0.9, hot_lines: 1_000, ..spec }, 2);
        let rc = resolve_workload(&sys, &cold, 3_000, seed);
        let rh = resolve_workload(&sys, &hot, 3_000, seed);
        let mc = Machine::new(sys, CacheMode::Ideal, OverheadConfig::paper_default())
            .simulate(&rc);
        let mh = Machine::new(sys, CacheMode::Ideal, OverheadConfig::paper_default())
            .simulate(&rh);
        prop_assert!(mh.hit_rate() >= mc.hit_rate());
    }
}
