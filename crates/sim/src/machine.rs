//! The trace-driven timing model: multicore front-ends, a banked STTRAM
//! LLC with LRU sets, banked SRAM PLTs, a DDR3-like backend, and the
//! SuDoku-specific overheads (syndrome cycle, PLT write traffic, scrub
//! bank occupancy, repair windows) of paper §VII-B/C/I.
//!
//! Simulation is two-pass: a *functional* pass interleaves the per-core
//! traces round-robin through a real LRU cache model, fixing every access's
//! hit/miss/writeback outcome; the *timing* pass then replays those
//! outcomes under a cache mode. Both modes of a comparison therefore see
//! byte-identical access streams, so the Figure-8 ratios measure SuDoku's
//! overheads rather than interleaving noise.

use crate::config::SystemConfig;
use crate::trace::{TraceGen, Workload};
use serde::{Deserialize, Serialize};

/// What error-protection machinery the LLC carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheMode {
    /// Idealized error-free cache: no detection, no scrub, no parity —
    /// the normalization baseline of Figures 8 and 9.
    Ideal,
    /// SuDoku-protected cache.
    Sudoku {
        /// Number of PLTs written per store (1 for X/Y, 2 for Z).
        plts: u32,
    },
}

impl CacheMode {
    /// The Figure 8/9 configuration: SuDoku-Z with two PLTs.
    pub fn sudoku_z() -> Self {
        CacheMode::Sudoku { plts: 2 }
    }

    fn is_sudoku(&self) -> bool {
        matches!(self, CacheMode::Sudoku { .. })
    }
}

/// SuDoku background-activity parameters for the timing model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverheadConfig {
    /// Scrub interval in seconds (20 ms).
    pub scrub_interval_s: f64,
    /// Expected RAID-4 repairs per interval (paper: ~4 per 20 ms).
    pub repairs_per_interval: u32,
    /// Lines read per repair (the RAID-Group size).
    pub repair_group_lines: u32,
}

impl OverheadConfig {
    /// The paper's operating point.
    pub fn paper_default() -> Self {
        OverheadConfig {
            scrub_interval_s: 20e-3,
            repairs_per_interval: 4,
            repair_group_lines: 512,
        }
    }
}

impl Default for OverheadConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Counters and derived times produced by a timing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Wall-clock of the simulated execution in ns (max over cores).
    pub exec_time_ns: f64,
    /// LLC read accesses.
    pub llc_reads: u64,
    /// LLC write accesses.
    pub llc_writes: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Dirty evictions written back to DRAM.
    pub writebacks: u64,
    /// DRAM row-buffer hits among the misses.
    pub dram_row_hits: u64,
    /// PLT update operations issued.
    pub plt_writes: u64,
    /// Cumulative demand-access delay caused by scrub bank conflicts (ns).
    pub scrub_stall_ns: f64,
    /// Cumulative delay caused by repair windows (ns).
    pub repair_stall_ns: f64,
    /// Cumulative extra syndrome-check time on reads (ns).
    pub syndrome_ns: f64,
}

impl Metrics {
    /// Total LLC accesses.
    pub fn llc_accesses(&self) -> u64 {
        self.llc_reads + self.llc_writes
    }

    /// LLC hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.llc_hits as f64 / self.llc_accesses().max(1) as f64
    }

    /// Serializes every counter (plus the derived hit rate) as a JSON
    /// object, for the bench bins' `--metrics-json` export.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("instructions", self.instructions)
            .field_f64("exec_time_ns", self.exec_time_ns)
            .field_u64("llc_reads", self.llc_reads)
            .field_u64("llc_writes", self.llc_writes)
            .field_u64("llc_hits", self.llc_hits)
            .field_u64("llc_misses", self.llc_misses)
            .field_f64("llc_hit_rate", self.hit_rate())
            .field_u64("writebacks", self.writebacks)
            .field_u64("dram_row_hits", self.dram_row_hits)
            .field_u64("plt_writes", self.plt_writes)
            .field_f64("scrub_stall_ns", self.scrub_stall_ns)
            .field_f64("repair_stall_ns", self.repair_stall_ns)
            .field_f64("syndrome_ns", self.syndrome_ns);
        obj.finish()
    }
}

/// One functionally resolved access, ready for timing replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolvedAccess {
    /// Non-memory instructions since the previous access of this core.
    pub gap_instrs: u32,
    /// LLC bank index.
    pub bank: u32,
    /// DRAM channel index.
    pub channel: u32,
    /// Store or load.
    pub is_write: bool,
    /// LLC hit (functional, mode-independent).
    pub hit: bool,
    /// The miss evicted a dirty line.
    pub dirty_evict: bool,
    /// On a miss: whether the DRAM access hits the open row buffer of its
    /// bank (resolved by a real per-bank open-row model in global order).
    pub dram_row_hit: bool,
}

/// A workload resolved through the functional LLC model: one access vector
/// per core.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolvedWorkload {
    /// Workload name.
    pub name: String,
    /// Per-core resolved access streams.
    pub cores: Vec<Vec<ResolvedAccess>>,
}

#[derive(Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u32,
}

/// Per-bank open-row tracker for the resolve pass (open-page policy).
struct FunctionalDram {
    open_rows: Vec<Option<u64>>,
    banks: u64,
    row_lines: u64,
}

impl FunctionalDram {
    fn new(sys: &SystemConfig) -> Self {
        FunctionalDram {
            open_rows: vec![None; sys.dram_banks() as usize],
            banks: sys.dram_banks() as u64,
            row_lines: sys.dram_row_lines.max(1),
        }
    }

    /// Returns whether this line address hits the currently open row of
    /// its bank, then leaves that row open.
    fn access(&mut self, line_addr: u64) -> bool {
        let row = line_addr / self.row_lines;
        let bank = (row % self.banks) as usize;
        let hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        hit
    }
}

/// Functional LRU LLC used by the resolve pass.
struct FunctionalLlc {
    sets: Vec<Way>,
    n_sets: u64,
    ways: usize,
    clock: u32,
}

impl FunctionalLlc {
    fn new(sys: &SystemConfig) -> Self {
        let n_sets = sys.llc_sets();
        let ways = sys.llc_ways as usize;
        FunctionalLlc {
            sets: vec![Way::default(); (n_sets * ways as u64) as usize],
            n_sets,
            ways,
            clock: 0,
        }
    }

    /// Returns `(hit, dirty_eviction)`.
    fn access(&mut self, line_addr: u64, is_write: bool) -> (bool, bool) {
        let set = ((line_addr ^ (line_addr >> 17)) % self.n_sets) as usize;
        self.clock = self.clock.wrapping_add(1);
        let base = set * self.ways;
        let slice = &mut self.sets[base..base + self.ways];
        for way in slice.iter_mut() {
            if way.valid && way.tag == line_addr {
                way.lru = self.clock;
                way.dirty |= is_write;
                return (true, false);
            }
        }
        let victim = slice
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru as u64 + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one way");
        let dirty_evict = slice[victim].valid && slice[victim].dirty;
        slice[victim] = Way {
            tag: line_addr,
            valid: true,
            dirty: is_write,
            lru: self.clock,
        };
        (false, dirty_evict)
    }
}

/// Functional pass: interleaves the cores round-robin through a real LRU
/// LLC and fixes every access outcome. Mode-independent by construction.
pub fn resolve_workload(
    sys: &SystemConfig,
    workload: &Workload,
    accesses_per_core: u64,
    seed: u64,
) -> ResolvedWorkload {
    let mut llc = FunctionalLlc::new(sys);
    let mut dram = FunctionalDram::new(sys);
    let mut gens: Vec<TraceGen> = workload
        .cores
        .iter()
        .enumerate()
        .map(|(c, spec)| TraceGen::new(*spec, c as u32, seed))
        .collect();
    let n_cores = workload.cores.len();
    let mut cores: Vec<Vec<ResolvedAccess>> =
        vec![Vec::with_capacity(accesses_per_core as usize); n_cores];
    for _ in 0..accesses_per_core {
        for (c, gen) in gens.iter_mut().enumerate() {
            let acc = gen.next_access();
            let (hit, dirty_evict) = llc.access(acc.line_addr, acc.is_write);
            let dram_row_hit = if hit {
                false
            } else {
                dram.access(acc.line_addr)
            };
            cores[c].push(ResolvedAccess {
                gap_instrs: acc.gap_instrs,
                bank: (acc.line_addr % sys.llc_banks as u64) as u32,
                channel: (acc.line_addr % sys.dram_channels as u64) as u32,
                is_write: acc.is_write,
                hit,
                dirty_evict,
                dram_row_hit,
            });
        }
    }
    ResolvedWorkload {
        name: workload.name.clone(),
        cores,
    }
}

/// The timing engine: replays a [`ResolvedWorkload`] under a cache mode.
///
/// Contention is modelled deterministically: per-bank and per-channel
/// utilizations are measured from the resolved stream, and every access
/// pays the corresponding expected M/D/1 queueing delay. The model is
/// monotone in the per-access service times, so adding SuDoku's overheads
/// (syndrome cycle, scrub occupancy, repair windows, PLT traffic) can only
/// lengthen the replayed execution — exactly the property the Figure-8
/// normalization needs.
pub struct Machine {
    sys: SystemConfig,
    mode: CacheMode,
    overhead: OverheadConfig,
}

/// Fraction of loads whose consumers stall the core until data returns
/// (dependent loads); the remainder are fully overlapped by the ROB.
const CRITICAL_READ_FRAC: u32 = 4; // one in four

impl Machine {
    /// Builds a timing machine.
    pub fn new(sys: SystemConfig, mode: CacheMode, overhead: OverheadConfig) -> Self {
        Machine {
            sys,
            mode,
            overhead,
        }
    }

    /// Fraction of each bank-interval the scrub engine occupies
    /// (lines/banks reads per interval; paper footnote 1 and §VII-E).
    fn scrub_occupancy(&self) -> f64 {
        if !self.mode.is_sudoku() {
            return 0.0;
        }
        let interval_ns = self.overhead.scrub_interval_s * 1e9;
        let ops_per_bank = (self.sys.llc_lines() / self.sys.llc_banks as u64) as f64;
        ops_per_bank * self.sys.stt_read_ns / interval_ns
    }

    /// Expected per-access delay from RAID-4 repair windows: the chance of
    /// landing in a window on one's own bank times the mean residual wait
    /// (paper §III-D: ≈4 repairs × group×9 ns per 20 ms).
    fn expected_repair_delay(&self) -> f64 {
        if !self.mode.is_sudoku() || self.overhead.repairs_per_interval == 0 {
            return 0.0;
        }
        let interval_ns = self.overhead.scrub_interval_s * 1e9;
        let window_ns = self.overhead.repair_group_lines as f64 * self.sys.stt_read_ns;
        let p_hit = self.overhead.repairs_per_interval as f64 * window_ns
            / (interval_ns * self.sys.llc_banks as f64);
        p_hit * window_ns / 2.0
    }

    /// Expected M/D/1 waiting time for utilization `rho` and service `s`.
    fn queue_wait(rho: f64, s: f64) -> f64 {
        let rho = rho.min(0.95);
        rho * s / (2.0 * (1.0 - rho))
    }

    /// Replays the resolved workload and returns the timing metrics.
    pub fn simulate(&self, resolved: &ResolvedWorkload) -> Metrics {
        let sys = self.sys;
        let cycle = sys.cycle_ns();
        let is_sudoku = self.mode.is_sudoku();
        let plts = match self.mode {
            CacheMode::Sudoku { plts } => plts,
            CacheMode::Ideal => 0,
        };
        let syndrome = if is_sudoku { cycle } else { 0.0 };

        // ---- Pass 1: busy time per bank/channel for the utilization
        // estimate, and a zero-contention horizon per core.
        let mut bank_busy = vec![0.0f64; sys.llc_banks as usize];
        let mut chan_busy = vec![0.0f64; sys.dram_channels as usize];
        let mut horizon = 0.0f64;
        for core in &resolved.cores {
            let mut t = 0.0f64;
            for acc in core {
                t += acc.gap_instrs as f64 * cycle / sys.width as f64;
                let service = if acc.is_write {
                    sys.stt_write_ns
                } else {
                    sys.stt_read_ns + syndrome
                };
                bank_busy[acc.bank as usize] += if acc.hit {
                    service
                } else {
                    sys.stt_read_ns + sys.stt_write_ns // probe + fill
                };
                if !acc.hit {
                    chan_busy[acc.channel as usize] +=
                        sys.dram_burst_ns * (1 + acc.dirty_evict as u64) as f64;
                    let dram_ns = if acc.dram_row_hit {
                        sys.dram_row_hit_ns
                    } else {
                        sys.dram_row_miss_ns
                    };
                    t += dram_ns / sys.mlp as f64;
                }
            }
            horizon = horizon.max(t);
        }
        // Memory-bound streams are throttled by the banks/channels
        // themselves; keep estimated utilizations out of the saturated
        // regime the M/D/1 form cannot represent.
        let max_bank = bank_busy.iter().cloned().fold(0.0f64, f64::max);
        let max_chan = chan_busy.iter().cloned().fold(0.0f64, f64::max);
        let horizon = horizon.max(max_bank / 0.7).max(max_chan / 0.7).max(1.0);
        let scrub_rho = self.scrub_occupancy();
        let bank_wait: Vec<f64> = bank_busy
            .iter()
            .map(|b| {
                let rho = b / horizon + scrub_rho;
                Self::queue_wait(rho, sys.stt_read_ns)
            })
            .collect();
        let ideal_bank_wait: Vec<f64> = bank_busy
            .iter()
            .map(|b| Self::queue_wait(b / horizon, sys.stt_read_ns))
            .collect();
        let chan_wait: Vec<f64> = chan_busy
            .iter()
            .map(|b| Self::queue_wait(b / horizon, sys.dram_burst_ns))
            .collect();
        let repair_delay = self.expected_repair_delay();

        // ---- Pass 2: per-core replay with fixed expected waits.
        let mut m = Metrics::default();
        let mut exec = 0.0f64;
        for core in &resolved.cores {
            let mut t = 0.0f64;
            let mut outstanding: std::collections::VecDeque<f64> =
                std::collections::VecDeque::new();
            let mut read_seq = 0u32;
            for acc in core {
                m.instructions += acc.gap_instrs as u64 + 1;
                t += acc.gap_instrs as f64 * cycle / sys.width as f64;
                while outstanding.len() >= sys.mlp as usize {
                    let oldest = outstanding.pop_front().expect("non-empty");
                    if oldest > t {
                        t = oldest;
                    }
                }
                let bank = acc.bank as usize;
                if acc.is_write {
                    m.llc_writes += 1;
                } else {
                    m.llc_reads += 1;
                }
                let wait = bank_wait[bank] + repair_delay;
                m.scrub_stall_ns += bank_wait[bank] - ideal_bank_wait[bank];
                m.repair_stall_ns += repair_delay;
                let service = if acc.is_write {
                    sys.stt_write_ns
                } else {
                    m.syndrome_ns += syndrome;
                    sys.stt_read_ns + syndrome
                };
                let completion = if acc.hit {
                    m.llc_hits += 1;
                    t + wait + service
                } else {
                    m.llc_misses += 1;
                    m.dram_row_hits += acc.dram_row_hit as u64;
                    if acc.dirty_evict {
                        m.writebacks += 1;
                    }
                    let dram_ns = if acc.dram_row_hit {
                        sys.dram_row_hit_ns
                    } else {
                        sys.dram_row_miss_ns
                    };
                    t + wait
                        + sys.stt_read_ns // probe
                        + chan_wait[acc.channel as usize]
                        + dram_ns
                        + sys.dram_burst_ns
                };
                if plts > 0 && (acc.is_write || !acc.hit) {
                    m.plt_writes += plts as u64;
                    // SRAM PLT updates drain faster than STTRAM writes
                    // arrive (1 ns vs 18 ns per §VII-I): never a stall.
                }
                // Dependent loads stall the core until data returns.
                if !acc.is_write {
                    read_seq += 1;
                    if read_seq.is_multiple_of(CRITICAL_READ_FRAC) && completion > t {
                        t = completion;
                    }
                }
                outstanding.push_back(completion);
            }
            let drained = outstanding.iter().cloned().fold(0.0f64, f64::max);
            exec = exec.max(t.max(drained));
        }
        m.exec_time_ns = exec;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{paper_workloads, CoreSpec, Workload};

    fn tiny_workload() -> Workload {
        Workload::rate(
            "test",
            CoreSpec {
                apki: 20.0,
                write_frac: 0.3,
                footprint_lines: 100_000,
                hot_lines: 2_000,
                hot_frac: 0.6,
            },
            4,
        )
    }

    fn resolved() -> ResolvedWorkload {
        resolve_workload(&SystemConfig::paper_default(), &tiny_workload(), 20_000, 1)
    }

    fn run(resolved: &ResolvedWorkload, mode: CacheMode) -> Metrics {
        Machine::new(
            SystemConfig::paper_default(),
            mode,
            OverheadConfig::paper_default(),
        )
        .simulate(resolved)
    }

    #[test]
    fn resolve_is_deterministic() {
        assert_eq!(resolved(), resolved());
    }

    #[test]
    fn simulation_is_deterministic() {
        let r = resolved();
        assert_eq!(
            run(&r, CacheMode::sudoku_z()),
            run(&r, CacheMode::sudoku_z())
        );
    }

    #[test]
    fn functional_outcomes_are_mode_independent() {
        let r = resolved();
        let ideal = run(&r, CacheMode::Ideal);
        let sudoku = run(&r, CacheMode::sudoku_z());
        assert_eq!(ideal.llc_hits, sudoku.llc_hits);
        assert_eq!(ideal.llc_misses, sudoku.llc_misses);
        assert_eq!(ideal.writebacks, sudoku.writebacks);
    }

    #[test]
    fn sudoku_slowdown_is_tiny_but_positive() {
        let r = resolved();
        let ideal = run(&r, CacheMode::Ideal);
        let sudoku = run(&r, CacheMode::sudoku_z());
        let ratio = sudoku.exec_time_ns / ideal.exec_time_ns;
        // Paper Figure 8: ~0.1% average slowdown; the model must show a
        // positive but sub-2% effect.
        assert!(ratio >= 1.0, "ratio = {ratio}");
        assert!(ratio < 1.02, "ratio = {ratio}");
    }

    #[test]
    fn plt_writes_track_stores_and_fills() {
        let r = resolved();
        let sudoku = run(&r, CacheMode::sudoku_z());
        // Every store or fill updates both PLTs exactly once each.
        assert!(sudoku.plt_writes >= 2 * sudoku.llc_writes.max(sudoku.llc_misses));
        assert!(sudoku.plt_writes.is_multiple_of(2), "two PLTs per update");
        let ideal = run(&r, CacheMode::Ideal);
        assert_eq!(ideal.plt_writes, 0);
    }

    #[test]
    fn hit_rate_is_sane_and_misses_cost_time() {
        let m = run(&resolved(), CacheMode::Ideal);
        assert!(
            m.hit_rate() > 0.1 && m.hit_rate() < 0.999,
            "{}",
            m.hit_rate()
        );
        assert!(m.llc_misses > 0);
        assert!(m.exec_time_ns > 0.0);
    }

    #[test]
    fn ideal_mode_has_no_sudoku_overheads() {
        let m = run(&resolved(), CacheMode::Ideal);
        assert_eq!(m.scrub_stall_ns, 0.0);
        assert_eq!(m.repair_stall_ns, 0.0);
        assert_eq!(m.syndrome_ns, 0.0);
    }

    #[test]
    fn streaming_workload_hits_dram_rows() {
        // A pure streaming core sweeps lines sequentially: consecutive
        // misses land in the same 128-line DRAM row, so the row-buffer hit
        // rate among misses must be high.
        let sys = SystemConfig::paper_default();
        let w = Workload::rate(
            "stream",
            CoreSpec {
                apki: 30.0,
                write_frac: 0.0,
                footprint_lines: 1_000_000,
                hot_lines: 64,
                hot_frac: 0.0,
            },
            1,
        );
        let r = resolve_workload(&sys, &w, 20_000, 5);
        let m = Machine::new(sys, CacheMode::Ideal, OverheadConfig::paper_default()).simulate(&r);
        assert!(m.llc_misses > 10_000);
        let row_hit_rate = m.dram_row_hits as f64 / m.llc_misses as f64;
        assert!(row_hit_rate > 0.9, "streaming row-hit rate {row_hit_rate}");
    }

    #[test]
    fn random_access_workload_misses_dram_rows() {
        let sys = SystemConfig::paper_default();
        let w = Workload::rate(
            "randomish",
            CoreSpec {
                apki: 30.0,
                write_frac: 0.0,
                footprint_lines: 64,
                hot_lines: 10_000_000, // huge "hot" region accessed uniformly
                hot_frac: 1.0,
            },
            1,
        );
        let r = resolve_workload(&sys, &w, 20_000, 5);
        let m = Machine::new(sys, CacheMode::Ideal, OverheadConfig::paper_default()).simulate(&r);
        assert!(m.llc_misses > 10_000);
        let row_hit_rate = m.dram_row_hits as f64 / m.llc_misses as f64;
        assert!(row_hit_rate < 0.2, "random row-hit rate {row_hit_rate}");
    }

    #[test]
    fn all_paper_workloads_simulate() {
        let sys = SystemConfig::paper_default();
        let mut total_ratio = 0.0;
        let workloads = paper_workloads(2);
        for w in workloads.iter().take(4) {
            let r = resolve_workload(&sys, w, 5_000, 3);
            let mi = run(&r, CacheMode::Ideal);
            let ms = run(&r, CacheMode::sudoku_z());
            let ratio = ms.exec_time_ns / mi.exec_time_ns;
            assert!(ratio >= 1.0, "{}: {ratio}", w.name);
            total_ratio += ratio;
        }
        let avg = total_ratio / 4.0;
        assert!((1.0..1.05).contains(&avg), "avg ratio {avg}");
    }
}
