//! System energy and EDP accounting (paper §VII-D, Figure 9).

use crate::config::{EnergyModel, SystemConfig};
use crate::machine::{CacheMode, Metrics, OverheadConfig};
use serde::{Deserialize, Serialize};

/// Energy breakdown of a simulated run, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core busy energy (dominates the system total).
    pub cores_j: f64,
    /// LLC dynamic energy (reads + writes + fills).
    pub llc_dynamic_j: f64,
    /// LLC static (leakage) energy.
    pub llc_static_j: f64,
    /// PLT dynamic + static energy.
    pub plt_j: f64,
    /// CRC/ECC codec energy.
    pub codec_j: f64,
    /// DRAM access energy.
    pub dram_j: f64,
    /// Scrub read/write energy.
    pub scrub_j: f64,
}

impl EnergyBreakdown {
    /// Total system energy in joules.
    pub fn total_j(&self) -> f64 {
        self.cores_j
            + self.llc_dynamic_j
            + self.llc_static_j
            + self.plt_j
            + self.codec_j
            + self.dram_j
            + self.scrub_j
    }

    /// Energy-delay product in joule-seconds for a given execution time.
    pub fn edp(&self, exec_time_ns: f64) -> f64 {
        self.total_j() * exec_time_ns * 1e-9
    }

    /// Serializes the breakdown (plus the derived total) as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_f64("cores_j", self.cores_j)
            .field_f64("llc_dynamic_j", self.llc_dynamic_j)
            .field_f64("llc_static_j", self.llc_static_j)
            .field_f64("plt_j", self.plt_j)
            .field_f64("codec_j", self.codec_j)
            .field_f64("dram_j", self.dram_j)
            .field_f64("scrub_j", self.scrub_j)
            .field_f64("total_j", self.total_j());
        obj.finish()
    }
}

/// Computes the energy breakdown for a run's metrics.
pub fn energy_of(
    sys: &SystemConfig,
    model: &EnergyModel,
    mode: CacheMode,
    overhead: &OverheadConfig,
    metrics: &Metrics,
) -> EnergyBreakdown {
    let time_s = metrics.exec_time_ns * 1e-9;
    let nj = 1e-9;
    let is_sudoku = matches!(mode, CacheMode::Sudoku { .. });

    let cores_j = model.core_power_w * sys.cores as f64 * time_s;

    // Dynamic LLC: every access reads the array; misses add a fill write;
    // dirty evictions add a victim read.
    let reads = metrics.llc_reads + metrics.writebacks;
    let writes = metrics.llc_writes + metrics.llc_misses;
    let llc_dynamic_j =
        (reads as f64 * model.stt_read_nj + writes as f64 * model.stt_write_nj) * nj;

    let llc_cells = (sys.llc_bytes * 8) as f64;
    let llc_static_j = llc_cells * model.stt_static_nw_per_cell * 1e-9 * time_s;

    // PLT: read-modify-write per update plus SRAM leakage (256 KB for Z).
    let plt_j = if is_sudoku {
        let dynamic = metrics.plt_writes as f64 * (model.sram_read_nj + model.sram_write_nj) * nj;
        let plts = match mode {
            CacheMode::Sudoku { plts } => plts as f64,
            CacheMode::Ideal => 0.0,
        };
        let plt_cells = plts * (sys.llc_bytes / 512) as f64 * 8.0;
        dynamic + plt_cells * model.sram_static_nw_per_cell * 1e-9 * time_s
    } else {
        0.0
    };

    // Codec energy on every access (encode on write, check on read).
    let codec_j = if is_sudoku {
        metrics.llc_accesses() as f64 * model.codec_nj * nj
    } else {
        0.0
    };

    let row_misses = metrics.llc_misses - metrics.dram_row_hits;
    let dram_j = ((metrics.llc_misses + metrics.writebacks) as f64 * model.dram_access_nj
        + row_misses as f64 * model.dram_activate_nj)
        * nj;

    // Scrub: read every line once per interval (plus codec per line).
    let scrub_j = if is_sudoku {
        let intervals = time_s / overhead.scrub_interval_s;
        let per_interval = sys.llc_lines() as f64 * (model.stt_read_nj + model.codec_nj) * nj;
        intervals * per_interval
    } else {
        0.0
    };

    EnergyBreakdown {
        cores_j,
        llc_dynamic_j,
        llc_static_j,
        plt_j,
        codec_j,
        dram_j,
        scrub_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_metrics() -> Metrics {
        Metrics {
            instructions: 1_000_000,
            exec_time_ns: 1e6, // 1 ms
            llc_reads: 10_000,
            llc_writes: 5_000,
            llc_hits: 12_000,
            llc_misses: 3_000,
            writebacks: 500,
            plt_writes: 16_000,
            ..Metrics::default()
        }
    }

    #[test]
    fn cores_dominate_total() {
        let sys = SystemConfig::paper_default();
        let model = EnergyModel::paper_default();
        let e = energy_of(
            &sys,
            &model,
            CacheMode::sudoku_z(),
            &OverheadConfig::paper_default(),
            &fake_metrics(),
        );
        assert!(e.cores_j > 0.5 * e.total_j(), "{e:?}");
    }

    #[test]
    fn sudoku_energy_overhead_is_small() {
        let sys = SystemConfig::paper_default();
        let model = EnergyModel::paper_default();
        let overhead = OverheadConfig::paper_default();
        let m = fake_metrics();
        let ideal = energy_of(&sys, &model, CacheMode::Ideal, &overhead, &m);
        let sudoku = energy_of(&sys, &model, CacheMode::sudoku_z(), &overhead, &m);
        let ratio = sudoku.total_j() / ideal.total_j();
        // Paper Figure 9: ≤0.4% EDP increase; energy alone stays ≤2%.
        assert!(ratio > 1.0 && ratio < 1.02, "ratio = {ratio}");
    }

    #[test]
    fn ideal_mode_has_no_plt_or_codec_energy() {
        let sys = SystemConfig::paper_default();
        let model = EnergyModel::paper_default();
        let e = energy_of(
            &sys,
            &model,
            CacheMode::Ideal,
            &OverheadConfig::paper_default(),
            &fake_metrics(),
        );
        assert_eq!(e.plt_j, 0.0);
        assert_eq!(e.codec_j, 0.0);
        assert_eq!(e.scrub_j, 0.0);
    }

    #[test]
    fn edp_scales_with_time() {
        let e = EnergyBreakdown {
            cores_j: 1.0,
            ..EnergyBreakdown::default()
        };
        assert!((e.edp(2e9) - 2.0).abs() < 1e-12);
    }
}
