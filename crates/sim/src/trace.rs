//! Synthetic workload traces.
//!
//! The paper drives its performance study with SPEC CPU2006, PARSEC,
//! BioBench and the MSC commercial traces (§VII-A). Those traces are not
//! redistributable, so this module generates *synthetic* LLC access streams
//! whose first-order statistics — LLC accesses per kilo-instruction, write
//! fraction, footprint, and hot-set reuse — are set per named workload to
//! mimic each suite's published LLC behaviour. Figures 8 and 9 report
//! SuDoku-Z *normalized to an ideal cache on the same trace*, which depends
//! on these rates rather than on instruction semantics, so the substitution
//! preserves the quantities under study (see DESIGN.md §3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One LLC access emitted by a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Non-memory instructions retired since the previous access.
    pub gap_instrs: u32,
    /// Line address (64-byte granule).
    pub line_addr: u64,
    /// Whether this is a write (dirty install / store miss).
    pub is_write: bool,
}

/// Statistical shape of one core's access stream.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Total footprint in lines (cold/streaming region).
    pub footprint_lines: u64,
    /// Hot-set size in lines (reused region; drives the LLC hit rate).
    pub hot_lines: u64,
    /// Probability an access goes to the hot set.
    pub hot_frac: f64,
}

/// A named multiprogrammed workload: one [`CoreSpec`] per core.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Display name (suite-like identifier).
    pub name: String,
    /// Per-core stream shapes.
    pub cores: Vec<CoreSpec>,
}

impl Workload {
    /// A rate-mode workload: the same spec on every core (the paper runs
    /// multiprogrammed copies for SPEC/BIO/COMM).
    pub fn rate(name: &str, spec: CoreSpec, cores: u32) -> Self {
        Workload {
            name: name.to_string(),
            cores: vec![spec; cores as usize],
        }
    }
}

/// Deterministic per-core access generator.
#[derive(Clone, Debug)]
pub struct TraceGen {
    spec: CoreSpec,
    rng: StdRng,
    /// Line-address offset so different cores do not share data.
    base: u64,
    stream_cursor: u64,
}

impl TraceGen {
    /// A generator for `spec`, seeded deterministically; `core_id`
    /// partitions the address space between cores.
    pub fn new(spec: CoreSpec, core_id: u32, seed: u64) -> Self {
        TraceGen {
            spec,
            rng: StdRng::seed_from_u64(seed ^ (core_id as u64).wrapping_mul(0x9E37_79B9)),
            base: (core_id as u64) << 40,
            stream_cursor: 0,
        }
    }

    /// Produces the next access.
    pub fn next_access(&mut self) -> Access {
        let s = &self.spec;
        // Geometric-ish gap with mean 1000/apki instructions.
        let mean_gap = (1000.0 / s.apki).max(1.0);
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (-u.ln() * mean_gap).min(100_000.0) as u32;
        let is_write = self.rng.gen_bool(s.write_frac);
        let line = if self.rng.gen_bool(s.hot_frac) {
            // Hot set: uniform reuse within a compact region.
            self.rng.gen_range(0..s.hot_lines.max(1))
        } else {
            // Cold/streaming: sequential sweep through the footprint —
            // realistic for lbm/libquantum-style workloads and guarantees
            // capacity misses once the footprint exceeds the LLC share.
            self.stream_cursor = (self.stream_cursor + 1) % s.footprint_lines.max(1);
            s.hot_lines + self.stream_cursor
        };
        Access {
            gap_instrs: gap,
            line_addr: self.base + line,
            is_write,
        }
    }
}

/// Deterministic Zipfian line-address generator.
///
/// Ranks follow an approximate Zipf(θ) law over `0..n` via the continuous
/// inverse-CDF `x = (1 + u·(n^{1-θ} − 1))^{1/(1-θ)}` (with the `n^u` limit
/// at θ = 1) — the standard skewed-popularity model for cache front-end
/// load generators: rank 0 is the hottest line, tail mass decays as a power
/// law. Exact for the quantities a load test cares about (skew, hot-set
/// concentration), O(1) per draw, no per-rank tables.
#[derive(Clone, Debug)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    // Precomputed inverse-CDF constants: `n^{1-θ} − 1` and `1/(1-θ)`
    // (unused in the θ → 1 limit). Halves the powf count per draw.
    span_pow: f64,
    inv_one_t: f64,
    rng: StdRng,
}

impl ZipfGen {
    /// A generator over `0..n` with skew `theta` (0 = uniform, 0.99 =
    /// classic YCSB-style skew), seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "need a non-empty range");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite, >= 0"
        );
        let one_t = 1.0 - theta;
        ZipfGen {
            n,
            theta,
            span_pow: (n as f64).powf(one_t) - 1.0,
            inv_one_t: 1.0 / one_t,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next rank in `0..n` (0 = most popular).
    pub fn next_rank(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = if (self.theta - 1.0).abs() < 1e-9 {
            // θ → 1 limit of the inverse CDF: n^u.
            (self.n as f64).powf(u)
        } else {
            (1.0 + u * self.span_pow).powf(self.inv_one_t)
        };
        (x as u64).clamp(1, self.n) - 1
    }
}

const MB_LINES: u64 = (1024 * 1024) / 64;

fn spec(apki: f64, write_frac: f64, foot_mb: u64, hot_kb: u64, hot_frac: f64) -> CoreSpec {
    CoreSpec {
        apki,
        write_frac,
        footprint_lines: foot_mb * MB_LINES,
        hot_lines: (hot_kb * 1024 / 64).max(64),
        hot_frac,
    }
}

/// The workload list of Figure 8: SPEC2006-, PARSEC-, BioBench- and
/// commercial-like mixes plus four random MIXes, each named after the suite
/// member whose LLC behaviour it mimics.
pub fn paper_workloads(cores: u32) -> Vec<Workload> {
    // Hot sets are sized against each core's ~8 MB share of the 64 MB LLC:
    // small enough to be cache-resident, so `hot_frac` sets the hit rate.
    let presets: Vec<(&str, CoreSpec)> = vec![
        // SPEC2006-like.
        ("lbm", spec(30.0, 0.45, 400, 128, 0.15)),
        ("mcf", spec(45.0, 0.25, 1700, 1024, 0.40)),
        ("milc", spec(18.0, 0.30, 600, 256, 0.25)),
        ("soplex", spec(22.0, 0.25, 250, 512, 0.50)),
        ("libquantum", spec(25.0, 0.30, 32, 0, 0.00)),
        ("omnetpp", spec(12.0, 0.35, 150, 768, 0.65)),
        ("gcc", spec(4.0, 0.30, 60, 256, 0.85)),
        ("bwaves", spec(15.0, 0.20, 800, 128, 0.20)),
        ("gems", spec(20.0, 0.25, 700, 512, 0.30)),
        ("xalanc", spec(8.0, 0.30, 100, 512, 0.75)),
        // PARSEC-like.
        ("canneal", spec(14.0, 0.20, 900, 512, 0.35)),
        ("streamcluster", spec(16.0, 0.15, 120, 256, 0.55)),
        ("ferret", spec(6.0, 0.25, 80, 384, 0.80)),
        // BioBench-like.
        ("mummer", spec(24.0, 0.15, 500, 256, 0.30)),
        ("tigr", spec(28.0, 0.15, 650, 128, 0.20)),
        // Commercial-like (MSC suite).
        ("comm1", spec(10.0, 0.40, 300, 1024, 0.60)),
        ("comm2", spec(13.0, 0.45, 450, 768, 0.50)),
    ];
    let mut out: Vec<Workload> = presets
        .iter()
        .map(|(name, s)| Workload::rate(name, *s, cores))
        .collect();
    // Four MIXes: rotate through the presets per core.
    for (mi, stride) in [(1usize, 3usize), (2, 5), (3, 7), (4, 11)] {
        let mut mix_cores = Vec::with_capacity(cores as usize);
        for c in 0..cores as usize {
            mix_cores.push(presets[(c * stride + mi) % presets.len()].1);
        }
        out.push(Workload {
            name: format!("mix{mi}"),
            cores: mix_cores,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let s = spec(20.0, 0.3, 100, 4, 0.5);
        let run = || {
            let mut g = TraceGen::new(s, 1, 42);
            (0..100).map(|_| g.next_access()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cores_use_disjoint_address_ranges() {
        let s = spec(20.0, 0.3, 100, 4, 0.5);
        let mut g0 = TraceGen::new(s, 0, 1);
        let mut g1 = TraceGen::new(s, 1, 1);
        for _ in 0..50 {
            let a0 = g0.next_access().line_addr >> 40;
            let a1 = g1.next_access().line_addr >> 40;
            assert_eq!(a0, 0);
            assert_eq!(a1, 1);
        }
    }

    #[test]
    fn write_fraction_statistically_respected() {
        let s = spec(20.0, 0.4, 100, 4, 0.5);
        let mut g = TraceGen::new(s, 0, 9);
        let writes = (0..20_000).filter(|_| g.next_access().is_write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.4).abs() < 0.02, "{frac}");
    }

    #[test]
    fn gap_mean_tracks_apki() {
        let s = spec(10.0, 0.3, 100, 4, 0.5); // mean gap = 100 instrs
        let mut g = TraceGen::new(s, 0, 3);
        let total: u64 = (0..50_000).map(|_| g.next_access().gap_instrs as u64).sum();
        let mean = total as f64 / 50_000.0;
        assert!((80.0..120.0).contains(&mean), "{mean}");
    }

    #[test]
    fn zipf_is_deterministic_and_in_range() {
        let run = || {
            let mut z = ZipfGen::new(1000, 0.99, 7);
            (0..500).map(|_| z.next_rank()).collect::<Vec<_>>()
        };
        let ranks = run();
        assert_eq!(ranks, run());
        assert!(ranks.iter().all(|&r| r < 1000));
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        // With θ = 0.99 over 10k items, a large share of draws must land in
        // the top 1% of ranks; with θ = 0 the distribution is uniform.
        let mut hot = 0u64;
        let mut z = ZipfGen::new(10_000, 0.99, 11);
        let draws = 20_000;
        for _ in 0..draws {
            if z.next_rank() < 100 {
                hot += 1;
            }
        }
        let frac = hot as f64 / draws as f64;
        assert!(frac > 0.35, "zipf 0.99 top-1% share {frac}");
        let mut uni = ZipfGen::new(10_000, 0.0, 11);
        let mut hot_u = 0u64;
        for _ in 0..draws {
            if uni.next_rank() < 100 {
                hot_u += 1;
            }
        }
        let frac_u = hot_u as f64 / draws as f64;
        assert!(
            (frac_u - 0.01).abs() < 0.005,
            "uniform top-1% share {frac_u}"
        );
    }

    #[test]
    fn paper_workload_list_has_21_entries() {
        let w = paper_workloads(8);
        assert_eq!(w.len(), 21);
        assert!(w.iter().all(|wl| wl.cores.len() == 8));
        assert!(w.iter().any(|wl| wl.name == "mix4"));
    }
}
