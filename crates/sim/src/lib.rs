//! # sudoku-sim
//!
//! Trace-driven performance and energy simulator for the SuDoku STTRAM
//! reproduction — the stand-in for the paper's CMP$im + USIMM stack
//! (§VII-A): multicore front-ends, a banked 64 MB STTRAM LLC with real LRU
//! sets, banked SRAM Parity Line Tables, a DDR3-like memory backend, and
//! the SuDoku overheads (syndrome cycle, PLT traffic, scrub occupancy,
//! repair windows) of §VII-B/C/D/I.
//!
//! # Example: one Figure-8 bar
//!
//! ```
//! use sudoku_sim::{compare_workload, paper_workloads, RunnerConfig};
//!
//! let cfg = RunnerConfig::paper_default(2_000, 1);
//! let workloads = paper_workloads(2);
//! let c = compare_workload(&cfg, &workloads[0]);
//! assert!(c.time_ratio() >= 1.0 && c.time_ratio() < 1.05);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod energy;
mod machine;
mod runner;
mod trace;

pub use config::{EnergyModel, SystemConfig};
pub use energy::{energy_of, EnergyBreakdown};
pub use machine::{
    resolve_workload, CacheMode, Machine, Metrics, OverheadConfig, ResolvedAccess, ResolvedWorkload,
};
pub use runner::{
    compare_workload, geo_mean, run_resolved, run_workload, Comparison, RunResult, RunnerConfig,
};
pub use trace::{paper_workloads, Access, CoreSpec, TraceGen, Workload, ZipfGen};
