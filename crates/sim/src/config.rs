//! System configuration (paper Table VI) and energy parameters (Table VII).

use serde::{Deserialize, Serialize};

/// Timing and shape of the simulated system (paper Table VI).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: u32,
    /// Core frequency in GHz.
    pub core_ghz: f64,
    /// Fetch/retire width (non-memory IPC ceiling).
    pub width: u32,
    /// Maximum overlapped LLC/DRAM requests per core (ROB-limited MLP).
    pub mlp: u32,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// LLC banks (both the STTRAM array and the PLT are banked alike,
    /// paper §VII-I).
    pub llc_banks: u32,
    /// STTRAM read latency in ns.
    pub stt_read_ns: f64,
    /// STTRAM write latency in ns.
    pub stt_write_ns: f64,
    /// SRAM PLT access latency in ns.
    pub plt_write_ns: f64,
    /// DRAM channels.
    pub dram_channels: u32,
    /// DRAM banks per channel (DDR3: 8).
    pub dram_banks_per_channel: u32,
    /// DRAM row size in cache lines (DDR3-800 x8 rank: 8 KB row = 128
    /// 64-byte lines).
    pub dram_row_lines: u64,
    /// Row-buffer *hit* latency in ns (tCAS at DDR3-800: 11 cycles of
    /// 2.5 ns ≈ 13.75 ns with I/O).
    pub dram_row_hit_ns: f64,
    /// Row-buffer *miss* latency in ns (tRP + tRCD + tCAS ≈ 41 ns).
    pub dram_row_miss_ns: f64,
    /// DRAM data-burst occupancy per access in ns (64 B over the channel).
    pub dram_burst_ns: f64,
}

impl SystemConfig {
    /// The paper's baseline system (Table VI).
    pub fn paper_default() -> Self {
        SystemConfig {
            cores: 8,
            core_ghz: 3.2,
            width: 4,
            mlp: 8,
            llc_bytes: 64 * 1024 * 1024,
            llc_ways: 8,
            line_bytes: 64,
            llc_banks: 32,
            stt_read_ns: 9.0,
            stt_write_ns: 18.0,
            plt_write_ns: 1.0,
            dram_channels: 2,
            dram_banks_per_channel: 8,
            dram_row_lines: 128,
            dram_row_hit_ns: 13.75,
            dram_row_miss_ns: 41.25,
            dram_burst_ns: 10.0,
        }
    }

    /// Total DRAM banks across channels.
    pub fn dram_banks(&self) -> u32 {
        self.dram_channels * self.dram_banks_per_channel
    }

    /// LLC lines.
    pub fn llc_lines(&self) -> u64 {
        self.llc_bytes / self.line_bytes as u64
    }

    /// LLC sets.
    pub fn llc_sets(&self) -> u64 {
        self.llc_lines() / self.llc_ways as u64
    }

    /// Core cycle time in ns.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.core_ghz
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-event energies (paper Table VII and §VII-A), in nanojoules unless
/// noted.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// STTRAM write energy per access (nJ).
    pub stt_write_nj: f64,
    /// STTRAM read energy per access (nJ).
    pub stt_read_nj: f64,
    /// STTRAM static power per cell (nW).
    pub stt_static_nw_per_cell: f64,
    /// SRAM write energy per access (nJ) — PLT updates.
    pub sram_write_nj: f64,
    /// SRAM read energy per access (nJ).
    pub sram_read_nj: f64,
    /// SRAM static power per cell (nW) — PLT array.
    pub sram_static_nw_per_cell: f64,
    /// CRC-31 + ECC-1 (or ECC-6) codec energy per line access (nJ);
    /// the paper conservatively uses the 40 pJ of an ECC-6 codec \[54\].
    pub codec_nj: f64,
    /// DRAM energy for a row-buffer hit (rd/wr + IO for one line, nJ).
    pub dram_access_nj: f64,
    /// Additional DRAM energy for a row activation (precharge + activate,
    /// nJ) — paid on row-buffer misses.
    pub dram_activate_nj: f64,
    /// Busy power per core (W) — keeps the denominator of the System-EDP
    /// realistic; SuDoku's additions must stay ≪ this.
    pub core_power_w: f64,
}

impl EnergyModel {
    /// Table VII values plus standard DDR3/core figures.
    pub fn paper_default() -> Self {
        EnergyModel {
            stt_write_nj: 0.35,
            stt_read_nj: 0.13,
            stt_static_nw_per_cell: 0.07,
            sram_write_nj: 0.11,
            sram_read_nj: 0.05,
            sram_static_nw_per_cell: 4.02,
            codec_nj: 0.04,
            dram_access_nj: 12.0,
            dram_activate_nj: 15.0,
            core_power_w: 8.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_llc_shape() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.llc_lines(), 1 << 20);
        assert_eq!(c.llc_sets(), 131_072);
        assert!((c.cycle_ns() - 0.3125).abs() < 1e-12);
    }

    #[test]
    fn energy_model_paper_values() {
        let e = EnergyModel::paper_default();
        assert_eq!(e.stt_write_nj, 0.35);
        assert_eq!(e.stt_read_nj, 0.13);
        assert_eq!(e.sram_write_nj, 0.11);
    }
}
