//! Workload runner: simulates SuDoku-Z against the idealized error-free
//! cache on identical traces and reports the normalized results of
//! Figures 8 and 9.

use crate::config::{EnergyModel, SystemConfig};
use crate::energy::{energy_of, EnergyBreakdown};
use crate::machine::{
    resolve_workload, CacheMode, Machine, Metrics, OverheadConfig, ResolvedWorkload,
};
use crate::trace::Workload;
use serde::{Deserialize, Serialize};

/// Everything measured for one workload under one cache mode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Timing counters.
    pub metrics: Metrics,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl RunResult {
    /// Energy-delay product of the run.
    pub fn edp(&self) -> f64 {
        self.energy.edp(self.metrics.exec_time_ns)
    }

    /// Serializes the run (metrics, energy, derived EDP) as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_raw("metrics", &self.metrics.to_json())
            .field_raw("energy", &self.energy.to_json())
            .field_f64("edp", self.edp());
        obj.finish()
    }
}

/// The Figure 8/9 data point for one workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Workload name.
    pub name: String,
    /// Idealized error-free run.
    pub ideal: RunResult,
    /// SuDoku-Z run on the same trace.
    pub sudoku: RunResult,
}

impl Comparison {
    /// Execution time of SuDoku-Z normalized to ideal (Figure 8).
    pub fn time_ratio(&self) -> f64 {
        self.sudoku.metrics.exec_time_ns / self.ideal.metrics.exec_time_ns
    }

    /// System-EDP of SuDoku-Z normalized to ideal (Figure 9).
    pub fn edp_ratio(&self) -> f64 {
        self.sudoku.edp() / self.ideal.edp()
    }

    /// Serializes the data point (both runs plus the Figure 8/9 ratios)
    /// as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", &self.name)
            .field_raw("ideal", &self.ideal.to_json())
            .field_raw("sudoku", &self.sudoku.to_json())
            .field_f64("time_ratio", self.time_ratio())
            .field_f64("edp_ratio", self.edp_ratio());
        obj.finish()
    }
}

/// Simulation driver configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// System shape and timings.
    pub system: SystemConfig,
    /// Energy parameters.
    pub energy: EnergyModel,
    /// SuDoku background activity.
    pub overhead: OverheadConfig,
    /// LLC accesses simulated per core.
    pub accesses_per_core: u64,
    /// Trace seed.
    pub seed: u64,
}

impl RunnerConfig {
    /// Paper-like defaults with a given per-core access budget.
    pub fn paper_default(accesses_per_core: u64, seed: u64) -> Self {
        RunnerConfig {
            system: SystemConfig::paper_default(),
            energy: EnergyModel::paper_default(),
            overhead: OverheadConfig::paper_default(),
            accesses_per_core,
            seed,
        }
    }
}

/// Runs one workload under one mode (resolving the trace first).
pub fn run_workload(cfg: &RunnerConfig, workload: &Workload, mode: CacheMode) -> RunResult {
    let resolved = resolve_workload(&cfg.system, workload, cfg.accesses_per_core, cfg.seed);
    run_resolved(cfg, &resolved, mode)
}

/// Runs one already-resolved workload under one mode.
pub fn run_resolved(cfg: &RunnerConfig, resolved: &ResolvedWorkload, mode: CacheMode) -> RunResult {
    let machine = Machine::new(cfg.system, mode, cfg.overhead);
    let metrics = machine.simulate(resolved);
    let energy = energy_of(&cfg.system, &cfg.energy, mode, &cfg.overhead, &metrics);
    RunResult { metrics, energy }
}

/// Runs the ideal-vs-SuDoku-Z comparison for one workload: both modes
/// replay the *same* resolved access stream, so the ratios isolate
/// SuDoku's overheads.
pub fn compare_workload(cfg: &RunnerConfig, workload: &Workload) -> Comparison {
    let resolved = resolve_workload(&cfg.system, workload, cfg.accesses_per_core, cfg.seed);
    Comparison {
        name: workload.name.clone(),
        ideal: run_resolved(cfg, &resolved, CacheMode::Ideal),
        sudoku: run_resolved(cfg, &resolved, CacheMode::sudoku_z()),
    }
}

/// Geometric-mean helper for figure summaries.
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::paper_workloads;

    #[test]
    fn comparison_ratios_match_paper_shape() {
        let cfg = RunnerConfig::paper_default(8_000, 17);
        let workloads = paper_workloads(4);
        let mut time_ratios = Vec::new();
        let mut edp_ratios = Vec::new();
        for w in workloads.iter().take(5) {
            let c = compare_workload(&cfg, w);
            assert!(c.time_ratio() >= 1.0, "{}: {}", c.name, c.time_ratio());
            assert!(c.time_ratio() < 1.03, "{}: {}", c.name, c.time_ratio());
            time_ratios.push(c.time_ratio());
            edp_ratios.push(c.edp_ratio());
        }
        let t = geo_mean(time_ratios);
        let e = geo_mean(edp_ratios);
        // Paper: ~0.1–0.15 % slowdown, ≤0.4 % EDP. Allow headroom on the
        // short unit-test traces.
        assert!((1.0..1.02).contains(&t), "time {t}");
        assert!((1.0..1.03).contains(&e), "edp {e}");
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!(geo_mean(std::iter::empty()).is_nan());
    }
}
