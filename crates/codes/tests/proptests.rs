//! Property-based tests for the code substrate.

use proptest::collection::btree_set;
use proptest::prelude::*;
use sudoku_codes::{
    crc31, group_parity, line_ecc, reconstruct, BchOutcome, BitBuf, HammingOutcome, HammingSec,
    LineCodec, LineData, ProtectedLine, ReadCheck, TOTAL_BITS,
};

fn arb_line_data() -> impl Strategy<Value = LineData> {
    prop::array::uniform8(any::<u64>()).prop_map(LineData::from_words)
}

fn arb_bitbuf(len: usize) -> impl Strategy<Value = BitBuf> {
    prop::collection::vec(any::<bool>(), len).prop_map(move |bits| {
        let mut buf = BitBuf::zeros(len);
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                buf.set(i, true);
            }
        }
        buf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CRC linearity: crc(a ^ b) == crc(a) ^ crc(b).
    #[test]
    fn crc_is_linear(a in arb_line_data(), b in arb_line_data()) {
        let e = crc31();
        prop_assert_eq!(
            e.checksum_line(&a.xor(&b)),
            e.checksum_line(&a) ^ e.checksum_line(&b)
        );
    }

    /// Any 1..=3 bit error over a line is detected by CRC-31.
    #[test]
    fn crc_detects_small_errors(
        data in arb_line_data(),
        flips in btree_set(0usize..512, 1..=3)
    ) {
        let e = crc31();
        let golden = e.checksum_line(&data);
        let mut corrupted = data;
        for f in flips {
            corrupted.flip_bit(f);
        }
        prop_assert_ne!(e.checksum_line(&corrupted), golden);
    }

    /// Hamming corrects every single-bit payload error, for random payloads.
    #[test]
    fn hamming_corrects_single_errors(
        payload in arb_bitbuf(543),
        pos in 0usize..543
    ) {
        let code = HammingSec::new(543);
        let check = code.encode(&payload);
        let mut corrupted = payload.clone();
        corrupted.flip(pos);
        let outcome = code.decode(&mut corrupted, check);
        prop_assert_eq!(outcome, HammingOutcome::CorrectedPayload(pos));
        prop_assert_eq!(corrupted, payload);
    }

    /// Line codec: encode/validate roundtrip and single-fault repair at any
    /// of the 553 stored positions.
    #[test]
    fn line_codec_repairs_any_single_fault(
        data in arb_line_data(),
        pos in 0usize..TOTAL_BITS
    ) {
        let codec = LineCodec::shared();
        let golden = codec.encode(&data);
        prop_assert!(codec.validate(&golden));
        let mut line = golden;
        line.flip_bit(pos);
        match codec.scrub_check(&line) {
            ReadCheck::Corrected { repaired, .. } => prop_assert_eq!(repaired, golden),
            other => return Err(TestCaseError::fail(format!("pos {pos}: {other:?}"))),
        }
    }

    /// Line codec flags any injected double fault as multi-bit (never a
    /// silent wrong repair) — CRC-31 guarantees detection of ≤7 faults.
    #[test]
    fn line_codec_flags_double_faults(
        data in arb_line_data(),
        flips in btree_set(0usize..TOTAL_BITS, 2..=2)
    ) {
        let codec = LineCodec::shared();
        let golden = codec.encode(&data);
        let mut line = golden;
        for &f in &flips {
            line.flip_bit(f);
        }
        match codec.read_check(&line) {
            ReadCheck::MultiBit => {}
            ReadCheck::Clean => {
                // Both flips were in the ECC field: invisible to the read
                // path by design; the scrubber must still not mis-repair.
                prop_assert!(flips.iter().all(|&f| f >= 543));
            }
            ReadCheck::Corrected { repaired, .. } => {
                // A "repair" that does not restore golden would be an SDC;
                // CRC-31 detects all ≤7-bit errors so this must be golden.
                prop_assert_eq!(repaired, golden);
            }
        }
    }

    /// RAID-4: reconstruction recovers any erased member of a random group.
    #[test]
    fn raid4_reconstructs_any_member(
        seeds in prop::collection::vec(any::<u64>(), 2..12),
        victim_sel in any::<prop::sample::Index>()
    ) {
        let codec = LineCodec::shared();
        let lines: Vec<ProtectedLine> = seeds
            .iter()
            .map(|&s| {
                let mut d = LineData::zero();
                let mut x = s | 1;
                for i in 0..512 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x & 1 == 1 {
                        d.set_bit(i, true);
                    }
                }
                codec.encode(&d)
            })
            .collect();
        let parity = group_parity(lines.iter());
        let victim = victim_sel.index(lines.len());
        let rebuilt = reconstruct(
            &parity,
            lines.iter().enumerate().filter(|(i, _)| *i != victim).map(|(_, l)| l),
        );
        prop_assert_eq!(rebuilt, lines[victim]);
    }

    /// BCH (t=3): corrects any ≤3 random errors across the codeword.
    #[test]
    fn bch_corrects_random_errors(
        data in arb_bitbuf(512),
        flips in btree_set(0usize..542, 1..=3)
    ) {
        let code = line_ecc(3).unwrap();
        let golden_parity = code.encode(&data);
        let mut rx_data = data.clone();
        let mut rx_parity = golden_parity.clone();
        for &f in &flips {
            if f < 30 {
                rx_parity.flip(f);
            } else {
                rx_data.flip(f - 30);
            }
        }
        let outcome = code.decode(&mut rx_data, &mut rx_parity);
        prop_assert!(matches!(outcome, BchOutcome::Corrected(_)));
        prop_assert_eq!(rx_data, data);
        prop_assert_eq!(rx_parity, golden_parity);
    }

    /// BCH never reports Clean when errors are present (any count 1..=8).
    #[test]
    fn bch_never_clean_with_errors(
        data in arb_bitbuf(512),
        flips in btree_set(0usize..512, 1..=8)
    ) {
        let code = line_ecc(2).unwrap();
        let mut parity = code.encode(&data);
        let mut rx = data.clone();
        for &f in &flips {
            rx.flip(f);
        }
        let outcome = code.decode(&mut rx, &mut parity);
        prop_assert_ne!(outcome, BchOutcome::Clean);
    }

    /// The slice-by-8 byte kernel and the word-walking `checksum_bits`
    /// kernel agree with the bit/byte-serial references at every length
    /// 0..=1024 bits.
    #[test]
    fn crc_word_kernels_match_reference(len in 0usize..=1024, seed in any::<u64>()) {
        let e = crc31();
        let mut buf = BitBuf::zeros(len);
        let mut x = seed | 1;
        for i in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 1 == 1 {
                buf.set(i, true);
            }
        }
        prop_assert_eq!(e.checksum_bits(&buf), e.checksum_bits_reference(&buf));
        if len % 8 == 0 {
            // Byte-aligned: both word kernels must also match the
            // byte-serial reference over the same octet stream.
            let bytes: Vec<u8> = (0..len / 8)
                .map(|j| (buf.words()[j / 8] >> (8 * (j % 8))) as u8)
                .collect();
            prop_assert_eq!(e.checksum_bytes(&bytes), e.checksum_bytes_reference(&bytes));
            prop_assert_eq!(e.checksum_bits(&buf), e.checksum_bytes_reference(&bytes));
        }
    }
}
