//! Single-error-correcting (SEC) Hamming code — the "ECC-1" of the paper.
//!
//! SuDoku equips every line with ECC-1 because at a BER of 5.3×10⁻⁶ the
//! overwhelmingly common fault case is a single flipped bit (paper §II-E).
//! For the 543-bit payload (512 data + 31 CRC) the code needs 10 check bits
//! (2¹⁰ ≥ 543 + 10 + 1), which matches the paper's "10 bits per line"
//! overhead, and encodes/decodes with trivial XOR trees (single-cycle in
//! hardware).
//!
//! The implementation is positionally faithful: check bits sit at
//! power-of-two codeword positions, so multi-bit errors can *miscorrect*
//! (the syndrome points at an innocent bit) exactly as real Hamming hardware
//! would. SuDoku detects those miscorrections with the per-line CRC
//! (paper §III-E) — preserving this behaviour is essential for the SDC
//! analysis of Table III.

use crate::bits::BitBuf;
use serde::{Deserialize, Serialize};

/// Result of a Hamming decode attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HammingOutcome {
    /// Zero syndrome: the codeword is consistent (no error, or an undetected
    /// even-weight pattern aligned with the code space).
    Clean,
    /// The syndrome pointed at a payload bit, which was flipped. For a true
    /// single-bit error this is a real correction; for multi-bit errors it
    /// may be a miscorrection (caller must re-validate with the CRC).
    CorrectedPayload(usize),
    /// The syndrome pointed at one of the check bits; the payload is intact.
    CorrectedCheck(u32),
    /// The syndrome pointed outside the codeword: definitely a multi-bit
    /// error, no correction applied.
    Invalid,
}

/// A SEC Hamming code over a fixed payload length.
///
/// # Examples
///
/// ```
/// use sudoku_codes::{BitBuf, HammingSec, HammingOutcome};
///
/// let code = HammingSec::new(543);
/// assert_eq!(code.check_bits(), 10);
/// let mut payload = BitBuf::zeros(543);
/// payload.set(42, true);
/// let check = code.encode(&payload);
/// payload.flip(100); // inject a single-bit error
/// let outcome = code.decode(&mut payload, check);
/// assert_eq!(outcome, HammingOutcome::CorrectedPayload(100));
/// assert!(payload.get(42) && !payload.get(100));
/// ```
#[derive(Clone, Debug)]
pub struct HammingSec {
    payload_bits: usize,
    check_bits: u32,
    /// Total codeword length (payload + check bits).
    n: usize,
    /// 1-based codeword position of payload bit `i` (non-powers-of-two).
    payload_pos: Vec<u32>,
    /// Map from 1-based codeword position to payload index
    /// (`u32::MAX` marks check-bit positions).
    pos_to_payload: Vec<u32>,
}

impl HammingSec {
    /// Builds the code for a payload of `payload_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bits` is 0 or would need more than 30 check bits.
    pub fn new(payload_bits: usize) -> Self {
        assert!(payload_bits > 0, "payload must be non-empty");
        let mut r = 2u32;
        while (1usize << r) < payload_bits + r as usize + 1 {
            r += 1;
            assert!(r <= 30, "payload too large for SEC Hamming");
        }
        let n = payload_bits + r as usize;
        let mut payload_pos = Vec::with_capacity(payload_bits);
        let mut pos_to_payload = vec![u32::MAX; n + 1];
        let mut idx = 0u32;
        for pos in 1..=n as u32 {
            if pos.is_power_of_two() {
                continue;
            }
            payload_pos.push(pos);
            pos_to_payload[pos as usize] = idx;
            idx += 1;
        }
        debug_assert_eq!(payload_pos.len(), payload_bits);
        HammingSec {
            payload_bits,
            check_bits: r,
            n,
            payload_pos,
            pos_to_payload,
        }
    }

    /// Payload length in bits.
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// Number of check bits (e.g. 10 for the 543-bit SuDoku payload).
    pub fn check_bits(&self) -> u32 {
        self.check_bits
    }

    /// Total codeword length in bits.
    pub fn codeword_bits(&self) -> usize {
        self.n
    }

    fn payload_signature(&self, payload: &BitBuf) -> u32 {
        debug_assert_eq!(payload.len(), self.payload_bits);
        // Walk the backing words directly: mostly-zero payloads (the
        // golden-zero Monte-Carlo state) skip whole words, and no position
        // vector is allocated.
        let mut sig = 0u32;
        for (wi, &w) in payload.words().iter().enumerate() {
            let mut d = w;
            while d != 0 {
                sig ^= self.payload_pos[wi * 64 + d.trailing_zeros() as usize];
                d &= d - 1;
            }
        }
        sig
    }

    /// Computes the check bits for `payload`.
    ///
    /// Check bit `j` is the parity of all payload positions whose 1-based
    /// codeword index has bit `j` set — returned packed, bit `j` of the
    /// result corresponding to the check bit at codeword position `2^j`.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != self.payload_bits()`.
    pub fn encode(&self, payload: &BitBuf) -> u32 {
        assert_eq!(
            payload.len(),
            self.payload_bits,
            "payload length must match the code"
        );
        self.payload_signature(payload)
    }

    /// Computes the syndrome of a received (payload, check) pair without
    /// modifying anything. Zero means consistent.
    pub fn syndrome(&self, payload: &BitBuf, check: u32) -> u32 {
        let mut s = self.payload_signature(payload);
        for j in 0..self.check_bits {
            if (check >> j) & 1 == 1 {
                s ^= 1 << j;
            }
        }
        s
    }

    /// Attempts single-error correction in place.
    ///
    /// On [`HammingOutcome::CorrectedPayload`] the payload bit has been
    /// flipped; the caller is responsible for re-validating with a stronger
    /// detection code (the per-line CRC in SuDoku), because a multi-bit
    /// error can masquerade as a correctable single-bit error.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != self.payload_bits()`.
    pub fn decode(&self, payload: &mut BitBuf, check: u32) -> HammingOutcome {
        assert_eq!(
            payload.len(),
            self.payload_bits,
            "payload length must match the code"
        );
        let s = self.syndrome(payload, check);
        if s == 0 {
            return HammingOutcome::Clean;
        }
        let pos = s as usize;
        if pos > self.n {
            return HammingOutcome::Invalid;
        }
        if s.is_power_of_two() {
            return HammingOutcome::CorrectedCheck(s.trailing_zeros());
        }
        let idx = self.pos_to_payload[pos] as usize;
        payload.flip(idx);
        HammingOutcome::CorrectedPayload(idx)
    }
}

/// Result of a SEC-DED decode attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecDedOutcome {
    /// No error detected.
    Clean,
    /// A single error was corrected at this payload index (or in the check
    /// bits, reported as `None`).
    Corrected(Option<usize>),
    /// A double error was *detected* — uncorrectable but never
    /// miscorrected, the property plain SEC lacks.
    DoubleDetected,
    /// An error pattern beyond the code's guarantees (≥3 errors with odd
    /// parity may land here or miscorrect, as in real hardware).
    Invalid,
}

/// Extended Hamming (SEC-DED): [`HammingSec`] plus an overall parity bit.
///
/// Not used by SuDoku itself — the per-line CRC-31 already provides far
/// stronger detection — but included for completeness of the code library
/// and for the detection-strength ablations: SEC-DED is what conventional
/// caches deploy, and its inability to *locate* double errors is exactly
/// why SuDoku pairs SEC with CRC + parity groups instead.
///
/// # Examples
///
/// ```
/// use sudoku_codes::{BitBuf, HammingSecDed, SecDedOutcome};
///
/// let code = HammingSecDed::new(64);
/// let mut payload = BitBuf::zeros(64);
/// payload.set(3, true);
/// let check = code.encode(&payload);
/// payload.flip(10);
/// payload.flip(20);
/// // A double error is detected, not miscorrected.
/// assert_eq!(code.decode(&mut payload, check), SecDedOutcome::DoubleDetected);
/// ```
#[derive(Clone, Debug)]
pub struct HammingSecDed {
    inner: HammingSec,
}

impl HammingSecDed {
    /// Builds the extended code for a payload of `payload_bits` bits.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`HammingSec::new`].
    pub fn new(payload_bits: usize) -> Self {
        HammingSecDed {
            inner: HammingSec::new(payload_bits),
        }
    }

    /// Check bits including the overall parity bit.
    pub fn check_bits(&self) -> u32 {
        self.inner.check_bits() + 1
    }

    fn overall_parity(&self, payload: &BitBuf, check_no_p: u32) -> u32 {
        (payload.count_ones() + check_no_p.count_ones()) & 1
    }

    /// Computes the check word: the SEC check bits with the overall parity
    /// packed into the top bit.
    ///
    /// # Panics
    ///
    /// Panics if the payload length does not match the code.
    pub fn encode(&self, payload: &BitBuf) -> u32 {
        let check = self.inner.encode(payload);
        let p = self.overall_parity(payload, check);
        check | (p << self.inner.check_bits())
    }

    /// Decodes in place.
    ///
    /// # Panics
    ///
    /// Panics if the payload length does not match the code.
    pub fn decode(&self, payload: &mut BitBuf, check: u32) -> SecDedOutcome {
        let r = self.inner.check_bits();
        let stored_p = (check >> r) & 1;
        let check_no_p = check & ((1 << r) - 1);
        let syndrome = self.inner.syndrome(payload, check_no_p);
        let parity_mismatch = self.overall_parity(payload, check_no_p) != stored_p;
        match (syndrome == 0, parity_mismatch) {
            (true, false) => SecDedOutcome::Clean,
            (true, true) => SecDedOutcome::Corrected(None), // overall parity bit itself
            (false, false) => SecDedOutcome::DoubleDetected,
            (false, true) => match self.inner.decode(payload, check_no_p) {
                HammingOutcome::CorrectedPayload(idx) => SecDedOutcome::Corrected(Some(idx)),
                HammingOutcome::CorrectedCheck(_) => SecDedOutcome::Corrected(None),
                HammingOutcome::Clean | HammingOutcome::Invalid => SecDedOutcome::Invalid,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_payload(len: usize, seed: u64) -> BitBuf {
        let mut buf = BitBuf::zeros(len);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 1 == 1 {
                buf.set(i, true);
            }
        }
        buf
    }

    #[test]
    fn check_bit_count_matches_paper() {
        // 543-bit payload (512 data + 31 CRC) needs exactly 10 check bits.
        let code = HammingSec::new(543);
        assert_eq!(code.check_bits(), 10);
        assert_eq!(code.codeword_bits(), 553);
    }

    #[test]
    fn clean_codeword_decodes_clean() {
        let code = HammingSec::new(543);
        let mut payload = filled_payload(543, 7);
        let check = code.encode(&payload);
        let before = payload.clone();
        assert_eq!(code.decode(&mut payload, check), HammingOutcome::Clean);
        assert_eq!(payload, before);
    }

    #[test]
    fn corrects_every_single_payload_error() {
        let code = HammingSec::new(64);
        let golden = filled_payload(64, 42);
        let check = code.encode(&golden);
        for i in 0..64 {
            let mut payload = golden.clone();
            payload.flip(i);
            let outcome = code.decode(&mut payload, check);
            assert_eq!(outcome, HammingOutcome::CorrectedPayload(i));
            assert_eq!(payload, golden);
        }
    }

    #[test]
    fn corrects_every_single_check_bit_error() {
        let code = HammingSec::new(64);
        let mut payload = filled_payload(64, 9);
        let check = code.encode(&payload);
        let before = payload.clone();
        for j in 0..code.check_bits() {
            let corrupted = check ^ (1 << j);
            let outcome = code.decode(&mut payload, corrupted);
            assert_eq!(outcome, HammingOutcome::CorrectedCheck(j));
            assert_eq!(payload, before);
        }
    }

    #[test]
    fn double_errors_never_silently_pass() {
        // A SEC code cannot *correct* double errors, but its syndrome is
        // always non-zero for them (minimum distance 3).
        let code = HammingSec::new(128);
        let golden = filled_payload(128, 3);
        let check = code.encode(&golden);
        for a in (0..128).step_by(7) {
            for b in (a + 1..128).step_by(11) {
                let mut payload = golden.clone();
                payload.flip(a);
                payload.flip(b);
                assert_ne!(code.syndrome(&payload, check), 0, "({a},{b})");
            }
        }
    }

    #[test]
    fn double_errors_can_miscorrect() {
        // Faithfulness check: there exists a double error that the decoder
        // "fixes" by flipping a third, innocent bit. The CRC layer above is
        // what catches these in SuDoku.
        let code = HammingSec::new(543);
        let golden = filled_payload(543, 1);
        let check = code.encode(&golden);
        let mut found_miscorrection = false;
        'outer: for a in 0..40 {
            for b in a + 1..40 {
                let mut payload = golden.clone();
                payload.flip(a);
                payload.flip(b);
                if let HammingOutcome::CorrectedPayload(idx) = code.decode(&mut payload, check) {
                    if idx != a && idx != b {
                        found_miscorrection = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found_miscorrection, "expected at least one miscorrection");
    }

    #[test]
    fn syndrome_zero_iff_consistent() {
        let code = HammingSec::new(100);
        let payload = filled_payload(100, 77);
        let check = code.encode(&payload);
        assert_eq!(code.syndrome(&payload, check), 0);
        assert_ne!(code.syndrome(&payload, check ^ 1), 0);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_payload_length_panics() {
        let code = HammingSec::new(100);
        let payload = BitBuf::zeros(99);
        code.encode(&payload);
    }

    #[test]
    fn secded_corrects_singles_everywhere() {
        let code = HammingSecDed::new(64);
        let golden = filled_payload(64, 4);
        let check = code.encode(&golden);
        for i in 0..64 {
            let mut payload = golden.clone();
            payload.flip(i);
            assert_eq!(
                code.decode(&mut payload, check),
                SecDedOutcome::Corrected(Some(i))
            );
            assert_eq!(payload, golden);
        }
    }

    #[test]
    fn secded_detects_every_double_without_miscorrection() {
        let code = HammingSecDed::new(64);
        let golden = filled_payload(64, 8);
        let check = code.encode(&golden);
        for a in 0..64 {
            for b in (a + 1)..64 {
                let mut payload = golden.clone();
                payload.flip(a);
                payload.flip(b);
                let before = payload.clone();
                assert_eq!(
                    code.decode(&mut payload, check),
                    SecDedOutcome::DoubleDetected,
                    "({a},{b})"
                );
                assert_eq!(payload, before, "DED must not touch the payload");
            }
        }
    }

    #[test]
    fn secded_check_bit_faults_handled() {
        let code = HammingSecDed::new(64);
        let golden = filled_payload(64, 12);
        let check = code.encode(&golden);
        for j in 0..code.check_bits() {
            let mut payload = golden.clone();
            let outcome = code.decode(&mut payload, check ^ (1 << j));
            assert!(
                matches!(outcome, SecDedOutcome::Corrected(None)),
                "check bit {j}: {outcome:?}"
            );
            assert_eq!(payload, golden);
        }
    }

    #[test]
    fn secded_has_one_more_check_bit_than_sec() {
        assert_eq!(HammingSecDed::new(543).check_bits(), 11);
    }

    #[test]
    fn small_codes_have_classic_parameters() {
        // (7,4) Hamming: 4 payload bits, 3 check bits.
        let code = HammingSec::new(4);
        assert_eq!(code.check_bits(), 3);
        assert_eq!(code.codeword_bits(), 7);
        // (15,11): 11 payload bits, 4 check bits.
        let code = HammingSec::new(11);
        assert_eq!(code.check_bits(), 4);
        assert_eq!(code.codeword_bits(), 15);
    }
}
