//! Arithmetic in the finite fields GF(2^m), the substrate for the BCH
//! multi-bit ECC baselines (ECC-2 … ECC-6, Hi-ECC).
//!
//! The paper's strongest baseline is ECC-6 per 64-byte line (60 check bits,
//! paper §II-D), which is a t=6 binary BCH code over GF(2¹⁰); the Hi-ECC
//! baseline (§VIII-C) applies ECC-6 over 1-KB regions and therefore needs
//! GF(2¹⁴). Elements are represented as integers in `0..2^m`, with
//! multiplication via logarithm/antilogarithm tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing a field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GfError {
    /// The extension degree is outside the supported range (2..=16).
    UnsupportedDegree(u32),
    /// The supplied polynomial is not primitive over GF(2).
    NotPrimitive(u32),
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedDegree(m) => write!(f, "unsupported field degree {m}"),
            GfError::NotPrimitive(p) => write!(f, "polynomial {p:#x} is not primitive"),
        }
    }
}

impl std::error::Error for GfError {}

/// Log/antilog tables for GF(2^m).
///
/// # Examples
///
/// ```
/// use sudoku_codes::GfTables;
///
/// let gf = GfTables::primitive(10).expect("GF(2^10) exists");
/// let a = 0x155;
/// let b = 0x2aa;
/// // Multiplication distributes over field addition (XOR).
/// assert_eq!(gf.mul(a, b ^ 1) ^ gf.mul(a, 1), gf.mul(a, b));
/// assert_eq!(gf.mul(a, gf.inv(a)), 1);
/// ```
#[derive(Clone)]
pub struct GfTables {
    m: u32,
    /// 2^m - 1, the multiplicative order.
    order: u32,
    poly: u32,
    /// exp[i] = α^i for i in 0..2*order (doubled to skip a modulo).
    exp: Vec<u16>,
    /// log[a] = i such that α^i = a, for a in 1..2^m; log[0] unused.
    log: Vec<u16>,
}

impl fmt::Debug for GfTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GfTables(m={}, poly={:#x})", self.m, self.poly)
    }
}

impl GfTables {
    /// Builds tables from an explicit primitive polynomial.
    ///
    /// The polynomial includes the leading term: e.g. GF(2¹⁰) with
    /// x¹⁰ + x³ + 1 is `0b100_0000_1001` = 0x409.
    ///
    /// # Errors
    ///
    /// [`GfError::UnsupportedDegree`] if `m` is outside 2..=16;
    /// [`GfError::NotPrimitive`] if the polynomial's root does not generate
    /// the whole multiplicative group.
    pub fn new(m: u32, poly: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedDegree(m));
        }
        let size = 1u32 << m;
        let order = size - 1;
        let mut exp = vec![0u16; 2 * order as usize];
        let mut log = vec![0u16; size as usize];
        let mut x = 1u32;
        for i in 0..order {
            if x == 1 && i != 0 {
                // α's order divides i < 2^m - 1: not primitive.
                return Err(GfError::NotPrimitive(poly));
            }
            exp[i as usize] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        if x != 1 {
            return Err(GfError::NotPrimitive(poly));
        }
        for i in 0..order as usize {
            exp[order as usize + i] = exp[i];
        }
        Ok(GfTables {
            m,
            order,
            poly,
            exp,
            log,
        })
    }

    /// Builds GF(2^m) using the lexicographically smallest primitive
    /// polynomial of degree `m` (found by search, then validated).
    ///
    /// # Errors
    ///
    /// [`GfError::UnsupportedDegree`] if `m` is outside 2..=16.
    pub fn primitive(m: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedDegree(m));
        }
        let lead = 1u32 << m;
        for low in 1..lead {
            // Primitive polynomials have a non-zero constant term and odd
            // weight is not required, but the constant term is.
            if low & 1 == 0 {
                continue;
            }
            if let Ok(tables) = GfTables::new(m, lead | low) {
                return Ok(tables);
            }
        }
        unreachable!("a primitive polynomial exists for every degree")
    }

    /// Field degree m.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order, 2^m − 1.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The primitive polynomial in use (including the leading term).
    pub fn polynomial(&self) -> u32 {
        self.poly
    }

    /// α^i for any exponent (reduced mod 2^m − 1).
    #[inline]
    pub fn alpha_pow(&self, i: u64) -> u16 {
        self.exp[(i % self.order as u64) as usize]
    }

    /// Discrete log of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn log(&self, a: u16) -> u32 {
        assert!(a != 0, "zero has no discrete logarithm");
        self.log[a as usize] as u32
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "zero is not invertible");
        self.exp[(self.order - self.log[a as usize] as u32) as usize % self.order as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            return 0;
        }
        let la = self.log[a as usize] as u32;
        let lb = self.log[b as usize] as u32;
        self.exp[((la + self.order - lb) % self.order) as usize]
    }

    /// `a` raised to the integer power `k`.
    #[inline]
    pub fn pow(&self, a: u16, k: u64) -> u16 {
        if a == 0 {
            return if k == 0 { 1 } else { 0 };
        }
        let la = self.log[a as usize] as u64;
        self.exp[((la * k) % self.order as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_primitive_poly_gf10_accepted() {
        // x^10 + x^3 + 1 is a standard primitive polynomial for GF(2^10).
        let gf = GfTables::new(10, 0x409).expect("0x409 is primitive");
        assert_eq!(gf.order(), 1023);
    }

    #[test]
    fn non_primitive_poly_rejected() {
        // x^4 + 1 = (x+1)^4 is not even irreducible.
        assert!(matches!(
            GfTables::new(4, 0x11),
            Err(GfError::NotPrimitive(0x11))
        ));
    }

    #[test]
    fn primitive_search_works_for_all_supported_degrees() {
        for m in 2..=14 {
            let gf = GfTables::primitive(m).expect("primitive poly exists");
            assert_eq!(gf.order(), (1 << m) - 1);
            // α generates the group: α^(order) == 1 and α^k != 1 for k < order
            // (guaranteed by construction; spot check a few).
            assert_eq!(gf.alpha_pow(gf.order() as u64), 1);
            assert_ne!(gf.alpha_pow(1), 1);
        }
    }

    #[test]
    fn mul_inverse_identity() {
        let gf = GfTables::primitive(8).unwrap();
        for a in 1..=255u16 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn mul_commutative_and_associative_sample() {
        let gf = GfTables::primitive(10).unwrap();
        let xs = [1u16, 2, 3, 0x155, 0x2aa, 0x3ff, 513];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for &c in &xs {
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributes_over_xor() {
        let gf = GfTables::primitive(10).unwrap();
        for a in [3u16, 97, 1000] {
            for b in [5u16, 200, 768] {
                for c in [1u16, 511, 1023] {
                    assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = GfTables::primitive(10).unwrap();
        let a = 0x155;
        let mut acc = 1u16;
        for k in 0..30u64 {
            assert_eq!(gf.pow(a, k), acc);
            acc = gf.mul(acc, a);
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        let gf = GfTables::primitive(9).unwrap();
        for a in [0u16, 1, 100, 300] {
            for b in [1u16, 7, 450] {
                assert_eq!(gf.div(a, b), gf.mul(a, gf.inv(b)));
            }
        }
    }

    #[test]
    fn unsupported_degree_rejected() {
        assert!(matches!(
            GfTables::primitive(1),
            Err(GfError::UnsupportedDegree(1))
        ));
        assert!(matches!(
            GfTables::primitive(17),
            Err(GfError::UnsupportedDegree(17))
        ));
    }

    #[test]
    #[should_panic(expected = "not invertible")]
    fn zero_inverse_panics() {
        GfTables::primitive(4).unwrap().inv(0);
    }
}
