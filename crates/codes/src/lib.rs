//! # sudoku-codes
//!
//! Error detection and correction substrate for the SuDoku STTRAM
//! reproduction (Nair, Asgari, Qureshi — *SuDoku: Tolerating High-Rate of
//! Transient Failures for Enabling Scalable STTRAM*, DSN 2019).
//!
//! The crate provides every code the paper's cache architecture and its
//! baselines rely on:
//!
//! * [`CrcEngine`] / [`crc31`] — the per-line CRC-31 strong detection code;
//! * [`HammingSec`] — the per-line ECC-1 single-error corrector;
//! * [`LineCodec`] / [`ProtectedLine`] — the composed 553-bit stored line
//!   (512 data + 31 CRC + 10 ECC, paper §III-E);
//! * [`group_parity`] / [`reconstruct`] — RAID-4 XOR parity lines;
//! * [`GfTables`] and [`Bch`] — GF(2^m) arithmetic and the multi-bit BCH
//!   codes used by the ECC-2…ECC-6 and Hi-ECC baselines.
//!
//! # Example: the full SuDoku line flow
//!
//! ```
//! use sudoku_codes::{LineCodec, LineData, ReadCheck};
//!
//! let codec = LineCodec::shared();
//! let mut data = LineData::zero();
//! data.set_bit(123, true);
//! let mut stored = codec.encode(&data);
//!
//! // A single retention failure: ECC-1 repairs it on read.
//! stored.flip_bit(40);
//! match codec.read_check(&stored) {
//!     ReadCheck::Corrected { repaired, .. } => assert_eq!(repaired.data, data),
//!     other => panic!("expected a correction, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bch;
mod bits;
mod crc;
mod gf;
mod hamming;
mod line;
mod line2;
mod parity;

pub use bch::{line_ecc, Bch, BchError, BchOutcome};
pub use bits::{BitBuf, LineData, LINE_BITS, LINE_WORDS};
pub use crc::{crc31, CrcEngine, CrcSpec, CRC31};
pub use gf::{GfError, GfTables};
pub use hamming::{HammingOutcome, HammingSec, HammingSecDed, SecDedOutcome};
pub use line::{
    LineCodec, ProtectedLine, ReadCheck, RepairKind, CRC_BITS, DATA_BITS, ECC_BITS, TOTAL_BITS,
};
pub use line2::{
    Line2Codec, ProtectedLine2, ReadCheck2, CRC2_BITS, DATA2_BITS, ECC2_BITS, TOTAL2_BITS,
};
pub use parity::{group_parity, mismatch_positions, reconstruct, xor_accumulate};
