//! The ECC-2 line variant (paper §VII-G): "SuDoku can be enhanced even
//! further by replacing ECC-1 with ECC-2."
//!
//! Layout mirrors the ECC-1 line of [`crate::line`], with the Hamming SEC
//! field replaced by a two-error-correcting BCH code over GF(2¹⁰):
//!
//! ```text
//! bit 0..512    data
//! bit 512..543  CRC-31 (over data)
//! bit 543..563  ECC-2 (BCH t=2 over data‖CRC)
//! ```
//!
//! 563 stored bits per line (51 bits of metadata — still under ECC-6's 60,
//! and the paper's point is that it buys orders of magnitude at very low ∆).

use crate::bch::{Bch, BchOutcome};
use crate::bits::{BitBuf, LineData};
use crate::crc::{crc31, CrcEngine};
use crate::line::RepairKind;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Data bits per line.
pub const DATA2_BITS: usize = 512;
/// CRC field width.
pub const CRC2_BITS: usize = 31;
/// ECC-2 (BCH t=2) parity bits over the 543-bit payload.
pub const ECC2_BITS: usize = 20;
/// Total stored bits per ECC-2 SuDoku line.
pub const TOTAL2_BITS: usize = DATA2_BITS + CRC2_BITS + ECC2_BITS;

/// A stored ECC-2 line: data + CRC-31 + 20-bit BCH parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProtectedLine2 {
    /// The 512 data bits.
    pub data: LineData,
    /// The 31 CRC bits (low 31 bits used).
    pub crc: u32,
    /// The 20 ECC-2 parity bits (low 20 bits used).
    pub ecc: u32,
}

impl ProtectedLine2 {
    /// The all-zero codeword (valid).
    pub fn zero() -> Self {
        Self::default()
    }

    /// Reads stored bit `i` (0..563).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 563`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        if i < DATA2_BITS {
            self.data.bit(i)
        } else if i < DATA2_BITS + CRC2_BITS {
            (self.crc >> (i - DATA2_BITS)) & 1 == 1
        } else if i < TOTAL2_BITS {
            (self.ecc >> (i - DATA2_BITS - CRC2_BITS)) & 1 == 1
        } else {
            panic!("stored-bit index {i} out of range");
        }
    }

    /// Flips stored bit `i` (0..563).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 563`.
    #[inline]
    pub fn flip_bit(&mut self, i: usize) {
        if i < DATA2_BITS {
            self.data.flip_bit(i);
        } else if i < DATA2_BITS + CRC2_BITS {
            self.crc ^= 1 << (i - DATA2_BITS);
        } else if i < TOTAL2_BITS {
            self.ecc ^= 1 << (i - DATA2_BITS - CRC2_BITS);
        } else {
            panic!("stored-bit index {i} out of range");
        }
    }

    /// XORs another stored line into this one (all 563 bits; linearity of
    /// CRC and BCH keeps XORs of codewords valid).
    #[inline]
    pub fn xor_assign(&mut self, other: &ProtectedLine2) {
        self.data.xor_assign(&other.data);
        self.crc ^= other.crc;
        self.ecc ^= other.ecc;
    }

    /// Stored-bit positions at which two lines differ, ascending.
    pub fn diff_positions(&self, other: &ProtectedLine2) -> Vec<usize> {
        let mut out = self.data.diff_positions(&other.data);
        let mut crc_diff = self.crc ^ other.crc;
        while crc_diff != 0 {
            out.push(DATA2_BITS + crc_diff.trailing_zeros() as usize);
            crc_diff &= crc_diff - 1;
        }
        let mut ecc_diff = self.ecc ^ other.ecc;
        while ecc_diff != 0 {
            out.push(DATA2_BITS + CRC2_BITS + ecc_diff.trailing_zeros() as usize);
            ecc_diff &= ecc_diff - 1;
        }
        out
    }

    /// Whether every stored bit is zero.
    pub fn is_zero(&self) -> bool {
        self.data.is_zero() && self.crc == 0 && self.ecc == 0
    }
}

/// The ECC-2 per-line encoder/decoder: CRC-31 detection plus BCH t=2
/// correction over data‖CRC.
#[derive(Debug, Clone)]
pub struct Line2Codec {
    crc: &'static CrcEngine,
    bch: Bch,
}

impl Default for Line2Codec {
    fn default() -> Self {
        Self::new()
    }
}

impl Line2Codec {
    /// Builds the codec.
    ///
    /// # Panics
    ///
    /// Panics if the BCH construction fails (it cannot for these
    /// parameters).
    pub fn new() -> Self {
        let bch = Bch::new(10, 2, DATA2_BITS + CRC2_BITS).expect("BCH(1023, t=2) exists");
        debug_assert_eq!(bch.parity_bits(), ECC2_BITS);
        Line2Codec { crc: crc31(), bch }
    }

    /// Process-wide shared instance.
    pub fn shared() -> &'static Line2Codec {
        static CODEC: OnceLock<Line2Codec> = OnceLock::new();
        CODEC.get_or_init(Line2Codec::new)
    }

    fn payload_of(data: &LineData, crc: u32) -> BitBuf {
        let mut payload = BitBuf::zeros(DATA2_BITS + CRC2_BITS);
        for i in 0..DATA2_BITS {
            if data.bit(i) {
                payload.set(i, true);
            }
        }
        for j in 0..CRC2_BITS {
            if (crc >> j) & 1 == 1 {
                payload.set(DATA2_BITS + j, true);
            }
        }
        payload
    }

    fn payload_to_parts(payload: &BitBuf) -> (LineData, u32) {
        let mut data = LineData::zero();
        for i in 0..DATA2_BITS {
            if payload.get(i) {
                data.set_bit(i, true);
            }
        }
        let mut crc = 0u32;
        for j in 0..CRC2_BITS {
            if payload.get(DATA2_BITS + j) {
                crc |= 1 << j;
            }
        }
        (data, crc)
    }

    fn parity_bits_of(ecc: u32) -> BitBuf {
        let mut buf = BitBuf::zeros(ECC2_BITS);
        for j in 0..ECC2_BITS {
            if (ecc >> j) & 1 == 1 {
                buf.set(j, true);
            }
        }
        buf
    }

    fn parity_to_u32(buf: &BitBuf) -> u32 {
        let mut out = 0u32;
        for j in 0..ECC2_BITS {
            if buf.get(j) {
                out |= 1 << j;
            }
        }
        out
    }

    /// Encodes a data payload into a stored ECC-2 line.
    pub fn encode(&self, data: &LineData) -> ProtectedLine2 {
        let crc = self.crc.checksum_line(data) as u32;
        let payload = Self::payload_of(data, crc);
        let ecc = Self::parity_to_u32(&self.bch.encode(&payload));
        ProtectedLine2 {
            data: *data,
            crc,
            ecc,
        }
    }

    /// Whether the stored CRC matches the data.
    #[inline]
    pub fn crc_ok(&self, line: &ProtectedLine2) -> bool {
        self.crc.checksum_line(&line.data) as u32 == line.crc
    }

    /// Full consistency: CRC matches and the BCH syndromes are zero.
    pub fn validate(&self, line: &ProtectedLine2) -> bool {
        if !self.crc_ok(line) {
            return false;
        }
        let mut payload = Self::payload_of(&line.data, line.crc);
        let mut parity = Self::parity_bits_of(line.ecc);
        matches!(
            self.bch.decode(&mut payload, &mut parity),
            BchOutcome::Clean
        )
    }

    /// The scrub-path check: CRC, then ≤2-error BCH repair, then CRC
    /// re-check — the ECC-2 analogue of the ECC-1 codec's `scrub_check`.
    pub fn scrub_check(&self, line: &ProtectedLine2) -> ReadCheck2 {
        if self.crc_ok(line) {
            let mut payload = Self::payload_of(&line.data, line.crc);
            let mut parity = Self::parity_bits_of(line.ecc);
            return match self.bch.decode(&mut payload, &mut parity) {
                BchOutcome::Clean => ReadCheck2::Clean,
                // Data+CRC are CRC-consistent; trust them and regenerate
                // the parity field (it carried the fault(s)).
                _ => {
                    let repaired = ProtectedLine2 {
                        data: line.data,
                        crc: line.crc,
                        ecc: Self::parity_to_u32(
                            &self.bch.encode(&Self::payload_of(&line.data, line.crc)),
                        ),
                    };
                    ReadCheck2::Corrected {
                        repaired,
                        kind: RepairKind::EccField,
                    }
                }
            };
        }
        let mut payload = Self::payload_of(&line.data, line.crc);
        let mut parity = Self::parity_bits_of(line.ecc);
        match self.bch.decode(&mut payload, &mut parity) {
            BchOutcome::Corrected(positions) => {
                let (data, crc) = Self::payload_to_parts(&payload);
                let candidate = ProtectedLine2 {
                    data,
                    crc,
                    ecc: Self::parity_to_u32(&parity),
                };
                if self.crc_ok(&candidate) {
                    let first = positions.first().copied().unwrap_or_default();
                    ReadCheck2::Corrected {
                        repaired: candidate,
                        kind: RepairKind::PayloadBit(first),
                    }
                } else {
                    ReadCheck2::MultiBit
                }
            }
            BchOutcome::Clean | BchOutcome::Uncorrectable => ReadCheck2::MultiBit,
        }
    }
}

/// Outcome of an ECC-2 line check (mirror of [`crate::ReadCheck`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadCheck2 {
    /// Fully consistent.
    Clean,
    /// ≤2 faults repaired and CRC re-validated.
    Corrected {
        /// The repaired line.
        repaired: ProtectedLine2,
        /// What was repaired.
        kind: RepairKind,
    },
    /// More than two faults: escalate to group recovery.
    MultiBit,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(seed: u64) -> LineData {
        let mut data = LineData::zero();
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..DATA2_BITS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 1 == 1 {
                data.set_bit(i, true);
            }
        }
        data
    }

    #[test]
    fn total_bits_is_563() {
        assert_eq!(TOTAL2_BITS, 563);
        assert_eq!(Line2Codec::shared().bch.parity_bits(), ECC2_BITS);
    }

    #[test]
    fn encode_validate_roundtrip() {
        let codec = Line2Codec::shared();
        let line = codec.encode(&sample_data(1));
        assert!(codec.validate(&line));
        assert_eq!(codec.scrub_check(&line), ReadCheck2::Clean);
    }

    #[test]
    fn repairs_any_single_and_double_fault() {
        let codec = Line2Codec::shared();
        let golden = codec.encode(&sample_data(2));
        // Singles at a sample of positions across all three fields.
        for i in (0..TOTAL2_BITS).step_by(13) {
            let mut line = golden;
            line.flip_bit(i);
            match codec.scrub_check(&line) {
                ReadCheck2::Corrected { repaired, .. } => assert_eq!(repaired, golden, "bit {i}"),
                other => panic!("bit {i}: {other:?}"),
            }
        }
        // Doubles.
        for (a, b) in [
            (0usize, 1usize),
            (5, 300),
            (511, 520),
            (100, 545),
            (550, 560),
        ] {
            let mut line = golden;
            line.flip_bit(a);
            line.flip_bit(b);
            match codec.scrub_check(&line) {
                ReadCheck2::Corrected { repaired, .. } => {
                    assert_eq!(repaired, golden, "bits {a},{b}")
                }
                other => panic!("bits {a},{b}: {other:?}"),
            }
        }
    }

    #[test]
    fn triple_faults_flagged_multibit() {
        let codec = Line2Codec::shared();
        let golden = codec.encode(&sample_data(3));
        for base in [0usize, 37, 200] {
            let mut line = golden;
            line.flip_bit(base);
            line.flip_bit(base + 101);
            line.flip_bit(base + 222);
            assert_eq!(
                codec.scrub_check(&line),
                ReadCheck2::MultiBit,
                "base {base}"
            );
        }
    }

    #[test]
    fn xor_of_codewords_is_valid() {
        let codec = Line2Codec::shared();
        let mut a = codec.encode(&sample_data(4));
        let b = codec.encode(&sample_data(5));
        a.xor_assign(&b);
        assert!(codec.validate(&a), "BCH + CRC are linear");
    }

    #[test]
    fn diff_positions_cover_fields() {
        let codec = Line2Codec::shared();
        let golden = codec.encode(&sample_data(6));
        let mut line = golden;
        line.flip_bit(5);
        line.flip_bit(520);
        line.flip_bit(562);
        assert_eq!(line.diff_positions(&golden), vec![5, 520, 562]);
    }
}
