//! Fixed- and variable-length bit containers used by every code in this
//! crate.
//!
//! The SuDoku cache operates on 64-byte (512-bit) cache lines, represented by
//! [`LineData`]. Codes that produce codewords of other lengths (BCH, Hi-ECC
//! regions) use the growable [`BitBuf`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of data bits in a cache line (64 bytes).
pub const LINE_BITS: usize = 512;
/// Number of 64-bit words backing a [`LineData`].
pub const LINE_WORDS: usize = LINE_BITS / 64;

/// A 512-bit cache-line payload.
///
/// This is the unit of data the SuDoku cache stores, scrubs, and repairs.
/// All bitwise operations needed by the parity/RAID machinery (XOR, bit
/// get/flip, population count, difference positions) are provided here.
///
/// # Examples
///
/// ```
/// use sudoku_codes::LineData;
///
/// let mut line = LineData::zero();
/// line.set_bit(42, true);
/// assert!(line.bit(42));
/// assert_eq!(line.count_ones(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LineData(pub(crate) [u64; LINE_WORDS]);

impl LineData {
    /// An all-zero line.
    pub fn zero() -> Self {
        LineData([0; LINE_WORDS])
    }

    /// Builds a line from its eight backing words (word 0 holds bits 0..64).
    pub fn from_words(words: [u64; LINE_WORDS]) -> Self {
        LineData(words)
    }

    /// Returns the backing words (word 0 holds bits 0..64).
    pub fn words(&self) -> &[u64; LINE_WORDS] {
        &self.0
    }

    /// Builds a line from 64 bytes, little-endian within each word.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly 64 bytes long.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), 64, "a cache line is exactly 64 bytes");
        let mut words = [0u64; LINE_WORDS];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            words[i] = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        }
        LineData(words)
    }

    /// Serializes the line to 64 bytes (inverse of [`LineData::from_bytes`]).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, w) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reads bit `i` (0-based, `i < 512`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < LINE_BITS, "bit index {i} out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < LINE_BITS, "bit index {i} out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.0[i / 64] |= mask;
        } else {
            self.0[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < LINE_BITS, "bit index {i} out of range");
        self.0[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other` into `self` in place.
    #[inline]
    pub fn xor_assign(&mut self, other: &LineData) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a ^= *b;
        }
    }

    /// Returns the XOR of two lines.
    #[inline]
    pub fn xor(&self, other: &LineData) -> LineData {
        let mut out = *self;
        out.xor_assign(other);
        out
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether every bit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Positions at which `self` and `other` differ, ascending.
    pub fn diff_positions(&self, other: &LineData) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, (a, b)) in self.0.iter().zip(other.0.iter()).enumerate() {
            let mut d = a ^ b;
            while d != 0 {
                let tz = d.trailing_zeros() as usize;
                out.push(wi * 64 + tz);
                d &= d - 1;
            }
        }
        out
    }

    /// Iterator over the positions of set bits, ascending.
    ///
    /// Walks the backing words directly (no per-word allocation), clearing
    /// the lowest set bit of each word as it goes.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        iter_word_ones(&self.0)
    }
}

/// Ascending set-bit positions over a word slice (bit 0 = LSB of word 0).
fn iter_word_ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    let mut wi = 0usize;
    let mut cur = words.first().copied().unwrap_or(0);
    std::iter::from_fn(move || loop {
        if cur != 0 {
            let tz = cur.trailing_zeros() as usize;
            cur &= cur - 1;
            return Some(wi * 64 + tz);
        }
        wi += 1;
        if wi >= words.len() {
            return None;
        }
        cur = words[wi];
    })
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[")?;
        for w in self.0.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A growable bit buffer for codewords whose length is not 512 bits
/// (BCH codewords, Hi-ECC 1-KB regions, test vectors).
///
/// # Bit-order contract
///
/// Bits are stored in **ascending order**: bit `i` of the buffer is bit
/// `i % 64` (counting from the LSB) of backing word `i / 64`, so bit 0 is
/// the least-significant bit of word 0 and iteration by index visits bits
/// in the same order the CRC and Hamming codes consume them. Any storage
/// bits at positions `>= len` in the last word are always zero — every
/// constructor and mutator preserves this invariant, which is what lets
/// word-level kernels read the final partial word with a single masked
/// load.
///
/// # Examples
///
/// ```
/// use sudoku_codes::BitBuf;
///
/// let mut buf = BitBuf::zeros(100);
/// buf.set(99, true);
/// assert_eq!(buf.count_ones(), 1);
/// assert_eq!(buf.len(), 100);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitBuf {
    words: Vec<u64>,
    len: usize,
}

impl BitBuf {
    /// A buffer of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitBuf {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a buffer of `len` bits directly from backing words (bit `i`
    /// is bit `i % 64` of word `i / 64`, per the bit-order contract).
    ///
    /// Storage bits at positions `>= len` in the last word are cleared so
    /// the trailing-zero invariant holds regardless of the input.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word count must match the bit length"
        );
        let rem = len % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        BitBuf { words, len }
    }

    /// The backing words (bit `i` of the buffer is bit `i % 64` of word
    /// `i / 64`; bits `>= len` in the last word are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero bits of storage.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitBuf) {
        assert_eq!(self.len, other.len, "BitBuf lengths must match for xor");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Positions of set bits, ascending.
    pub fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Iterator over the positions of set bits, ascending (non-allocating).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        iter_word_ones(&self.words)
    }

    /// Copies `bits` bits from `src` starting at `src_off` into `self` at
    /// `dst_off`.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn copy_bits_from(&mut self, src: &BitBuf, src_off: usize, dst_off: usize, bits: usize) {
        assert!(src_off + bits <= src.len, "source range out of bounds");
        assert!(
            dst_off + bits <= self.len,
            "destination range out of bounds"
        );
        for i in 0..bits {
            self.set(dst_off + i, src.get(src_off + i));
        }
    }
}

impl fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitBuf(len={}, ones={})", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_zero_is_zero() {
        let line = LineData::zero();
        assert!(line.is_zero());
        assert_eq!(line.count_ones(), 0);
    }

    #[test]
    fn line_set_get_flip_roundtrip() {
        let mut line = LineData::zero();
        for i in [0usize, 1, 63, 64, 200, 511] {
            line.set_bit(i, true);
            assert!(line.bit(i));
            line.flip_bit(i);
            assert!(!line.bit(i));
        }
    }

    #[test]
    fn line_bytes_roundtrip() {
        let mut bytes = [0u8; 64];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let line = LineData::from_bytes(&bytes);
        assert_eq!(line.to_bytes(), bytes);
    }

    #[test]
    fn line_xor_is_involution() {
        let mut a = LineData::zero();
        let mut b = LineData::zero();
        a.set_bit(3, true);
        a.set_bit(100, true);
        b.set_bit(100, true);
        b.set_bit(400, true);
        let c = a.xor(&b);
        assert_eq!(c.diff_positions(&LineData::zero()), vec![3, 400]);
        assert_eq!(c.xor(&b), a);
    }

    #[test]
    fn line_diff_positions_sorted_and_complete() {
        let mut a = LineData::zero();
        let mut b = LineData::zero();
        for i in [5usize, 64, 65, 300, 511] {
            a.flip_bit(i);
        }
        b.flip_bit(5);
        let d = a.diff_positions(&b);
        assert_eq!(d, vec![64, 65, 300, 511]);
    }

    #[test]
    fn line_iter_ones_matches_diff_with_zero() {
        let mut a = LineData::zero();
        for i in [1usize, 2, 70, 130, 509] {
            a.flip_bit(i);
        }
        let ones: Vec<usize> = a.iter_ones().collect();
        assert_eq!(ones, a.diff_positions(&LineData::zero()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_bit_out_of_range_panics() {
        LineData::zero().bit(512);
    }

    #[test]
    fn bitbuf_basics() {
        let mut buf = BitBuf::zeros(130);
        assert_eq!(buf.len(), 130);
        assert!(buf.is_zero());
        buf.set(0, true);
        buf.set(129, true);
        assert_eq!(buf.ones(), vec![0, 129]);
        buf.flip(0);
        assert_eq!(buf.count_ones(), 1);
    }

    #[test]
    fn bitbuf_xor_assign_matches_manual() {
        let mut a = BitBuf::zeros(77);
        let mut b = BitBuf::zeros(77);
        a.set(10, true);
        a.set(76, true);
        b.set(76, true);
        b.set(33, true);
        a.xor_assign(&b);
        assert_eq!(a.ones(), vec![10, 33]);
    }

    #[test]
    fn bitbuf_copy_bits() {
        let mut src = BitBuf::zeros(40);
        src.set(3, true);
        src.set(9, true);
        let mut dst = BitBuf::zeros(100);
        dst.copy_bits_from(&src, 0, 50, 40);
        assert_eq!(dst.ones(), vec![53, 59]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn bitbuf_xor_length_mismatch_panics() {
        let mut a = BitBuf::zeros(10);
        let b = BitBuf::zeros(11);
        a.xor_assign(&b);
    }

    #[test]
    fn bitbuf_from_words_roundtrip() {
        let buf = BitBuf::from_words(vec![0x5u64, 0x8000_0000_0000_0001], 128);
        assert_eq!(buf.ones(), vec![0, 2, 64, 127]);
        assert_eq!(buf.words(), &[0x5u64, 0x8000_0000_0000_0001]);
    }

    #[test]
    fn bitbuf_from_words_masks_tail() {
        // Bits above `len` in the final word must be cleared.
        let buf = BitBuf::from_words(vec![u64::MAX], 3);
        assert_eq!(buf.count_ones(), 3);
        assert_eq!(buf.words(), &[0b111u64]);
    }

    #[test]
    #[should_panic(expected = "word count must match")]
    fn bitbuf_from_words_wrong_count_panics() {
        BitBuf::from_words(vec![0u64; 3], 100);
    }

    #[test]
    fn bitbuf_iter_ones_matches_ones() {
        let mut buf = BitBuf::zeros(200);
        for i in [0usize, 63, 64, 65, 130, 199] {
            buf.set(i, true);
        }
        let collected: Vec<usize> = buf.iter_ones().collect();
        assert_eq!(collected, buf.ones());
    }
}
