//! Binary BCH codes — the multi-bit ECC baselines of the paper.
//!
//! The paper's reference solution is "ECC-6": a six-error-correcting code
//! per 64-byte line costing 60 check bits and multi-cycle encode/decode
//! (paper §I, §II-D, Table II). That is exactly a t=6 binary BCH code over
//! GF(2¹⁰), shortened from n=1023 to 512 data bits. This module implements
//! the full codec — generator-polynomial construction from cyclotomic
//! cosets, systematic LFSR encoding, and syndrome / Berlekamp–Massey /
//! Chien-search decoding — for any t, so that ECC-1 … ECC-6 (Table II) and
//! Hi-ECC over 1-KB regions (Table XII, GF(2¹⁴)) can be exercised
//! functionally, not just analytically.

use crate::bits::BitBuf;
use crate::gf::{GfError, GfTables};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing a BCH code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BchError {
    /// Field construction failed.
    Field(GfError),
    /// The requested payload does not fit: `data_bits > k = n - deg(g)`.
    DataTooLong {
        /// Requested payload size.
        data_bits: usize,
        /// Maximum payload the code supports.
        max: usize,
    },
    /// The generator polynomial degree exceeds the 127-bit LFSR register.
    GeneratorTooLarge(usize),
    /// t must be at least 1.
    ZeroCorrection,
}

impl fmt::Display for BchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BchError::Field(e) => write!(f, "field construction failed: {e}"),
            BchError::DataTooLong { data_bits, max } => {
                write!(f, "payload of {data_bits} bits exceeds code capacity {max}")
            }
            BchError::GeneratorTooLarge(d) => {
                write!(f, "generator degree {d} exceeds the supported 127 bits")
            }
            BchError::ZeroCorrection => write!(f, "t must be at least 1"),
        }
    }
}

impl std::error::Error for BchError {}

impl From<GfError> for BchError {
    fn from(e: GfError) -> Self {
        BchError::Field(e)
    }
}

/// Result of a BCH decode attempt.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BchOutcome {
    /// All syndromes were zero.
    Clean,
    /// Errors located and flipped at these codeword positions
    /// (positions < `parity_bits` are in the parity field).
    /// With more than `t` true errors this may be a *miscorrection* — the
    /// decoder cannot tell, exactly like real hardware.
    Corrected(Vec<usize>),
    /// The error locator was inconsistent: detected but uncorrectable.
    Uncorrectable,
}

/// A shortened systematic binary BCH code.
///
/// Codeword layout: bit positions `0..parity_bits` hold the parity,
/// positions `parity_bits..parity_bits+data_bits` hold the data; the
/// remaining positions up to n = 2^m − 1 are implicitly zero (shortening).
///
/// # Examples
///
/// ```
/// use sudoku_codes::{Bch, BchOutcome, BitBuf};
///
/// // The paper's ECC-6 baseline: t=6 over GF(2^10), 512 data bits, 60 parity.
/// let code = Bch::new(10, 6, 512)?;
/// assert_eq!(code.parity_bits(), 60);
///
/// let mut data = BitBuf::zeros(512);
/// data.set(100, true);
/// let mut parity = code.encode(&data);
/// for i in [3, 80, 200, 310, 400, 501] {
///     data.flip(i);
/// }
/// let outcome = code.decode(&mut data, &mut parity);
/// assert!(matches!(outcome, BchOutcome::Corrected(ref v) if v.len() == 6));
/// assert!(data.get(100) && data.count_ones() == 1);
/// # Ok::<(), sudoku_codes::BchError>(())
/// ```
#[derive(Clone)]
pub struct Bch {
    gf: GfTables,
    t: usize,
    data_bits: usize,
    parity_bits: usize,
    /// Generator polynomial without its leading term, bit i = coeff of x^i.
    gen_low: u128,
}

impl fmt::Debug for Bch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bch(m={}, t={}, data={}, parity={})",
            self.gf.degree(),
            self.t,
            self.data_bits,
            self.parity_bits
        )
    }
}

impl Bch {
    /// Constructs a t-error-correcting BCH code over GF(2^m) shortened to
    /// `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// See [`BchError`].
    pub fn new(m: u32, t: usize, data_bits: usize) -> Result<Self, BchError> {
        if t == 0 {
            return Err(BchError::ZeroCorrection);
        }
        let gf = GfTables::primitive(m)?;
        let n = gf.order() as usize;

        // Generator = product of the minimal polynomials of α^1 .. α^{2t},
        // one factor per distinct cyclotomic coset.
        let mut visited = vec![false; n + 1];
        let mut gen: u128 = 1; // GF(2) polynomial, bit i = coeff of x^i
        let mut gen_deg = 0usize;
        for i in 1..=2 * t {
            let i = i % n;
            if i == 0 || visited[i] {
                continue;
            }
            // Collect the coset {i, 2i, 4i, ...} mod n.
            let mut coset = Vec::new();
            let mut j = i;
            loop {
                visited[j] = true;
                coset.push(j);
                j = (j * 2) % n;
                if j == i {
                    break;
                }
            }
            // Minimal polynomial: Π (x + α^j) with coefficients in GF(2^m);
            // the product necessarily has coefficients in {0, 1}.
            let mut coeffs: Vec<u16> = vec![1];
            for &j in &coset {
                let root = gf.alpha_pow(j as u64);
                let mut next = vec![0u16; coeffs.len() + 1];
                for (k, &c) in coeffs.iter().enumerate() {
                    next[k + 1] ^= c;
                    next[k] ^= gf.mul(c, root);
                }
                coeffs = next;
            }
            debug_assert!(coeffs.iter().all(|&c| c <= 1), "minimal poly not binary");
            // Multiply the binary generator by this minimal polynomial.
            let min_deg = coeffs.len() - 1;
            if gen_deg + min_deg > 127 {
                return Err(BchError::GeneratorTooLarge(gen_deg + min_deg));
            }
            let mut product: u128 = 0;
            for (k, &c) in coeffs.iter().enumerate() {
                if c == 1 {
                    product ^= gen << k;
                }
            }
            gen = product;
            gen_deg += min_deg;
        }

        let k = n - gen_deg;
        if data_bits > k {
            return Err(BchError::DataTooLong { data_bits, max: k });
        }
        Ok(Bch {
            gf,
            t,
            data_bits,
            parity_bits: gen_deg,
            gen_low: gen & !(1u128 << gen_deg),
        })
    }

    /// Number of errors the code is guaranteed to correct.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Payload size in bits.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Parity size in bits (the storage overhead per protected word).
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Total stored codeword length (parity + data).
    pub fn total_bits(&self) -> usize {
        self.parity_bits + self.data_bits
    }

    /// Systematic encode: returns the parity bits for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    pub fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), self.data_bits, "payload length must match");
        let p = self.parity_bits;
        let top = 1u128 << (p - 1);
        let mask = if p == 128 {
            u128::MAX
        } else {
            (1u128 << p) - 1
        };
        let mut reg: u128 = 0;
        for i in (0..self.data_bits).rev() {
            let fb = data.get(i) ^ (reg & top != 0);
            reg = (reg << 1) & mask;
            if fb {
                reg ^= self.gen_low;
            }
        }
        let mut parity = BitBuf::zeros(p);
        for i in 0..p {
            if (reg >> i) & 1 == 1 {
                parity.set(i, true);
            }
        }
        parity
    }

    /// Computes the 2t syndromes of the received word; `None` if all zero.
    fn syndromes(&self, data: &BitBuf, parity: &BitBuf) -> Option<Vec<u16>> {
        let mut positions: Vec<usize> = parity.ones();
        positions.extend(data.ones().into_iter().map(|i| i + self.parity_bits));
        let mut s = vec![0u16; 2 * self.t];
        let mut any = false;
        for (j, slot) in s.iter_mut().enumerate() {
            let mut acc = 0u16;
            for &pos in &positions {
                acc ^= self.gf.alpha_pow((j as u64 + 1) * pos as u64);
            }
            if acc != 0 {
                any = true;
            }
            *slot = acc;
        }
        if any {
            Some(s)
        } else {
            None
        }
    }

    /// Berlekamp–Massey: error-locator polynomial from syndromes.
    fn berlekamp_massey(&self, s: &[u16]) -> Vec<u16> {
        let gf = &self.gf;
        let mut sigma: Vec<u16> = vec![1];
        let mut prev: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u16;
        for n_iter in 0..s.len() {
            // Discrepancy d = S_{n+1} + Σ_{i=1..L} σ_i · S_{n+1-i}.
            let mut d = s[n_iter];
            for i in 1..=l.min(sigma.len() - 1) {
                if n_iter >= i {
                    d ^= gf.mul(sigma[i], s[n_iter - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n_iter {
                let temp = sigma.clone();
                let coef = gf.div(d, b);
                let shift = m;
                if sigma.len() < prev.len() + shift {
                    sigma.resize(prev.len() + shift, 0);
                }
                for (i, &pc) in prev.iter().enumerate() {
                    sigma[i + shift] ^= gf.mul(coef, pc);
                }
                l = n_iter + 1 - l;
                prev = temp;
                b = d;
                m = 1;
            } else {
                let coef = gf.div(d, b);
                let shift = m;
                if sigma.len() < prev.len() + shift {
                    sigma.resize(prev.len() + shift, 0);
                }
                for (i, &pc) in prev.iter().enumerate() {
                    sigma[i + shift] ^= gf.mul(coef, pc);
                }
                m += 1;
            }
        }
        while sigma.last() == Some(&0) {
            sigma.pop();
        }
        sigma
    }

    /// Decodes in place, correcting up to `t` errors across `data` and
    /// `parity`.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `parity` have the wrong length.
    pub fn decode(&self, data: &mut BitBuf, parity: &mut BitBuf) -> BchOutcome {
        assert_eq!(data.len(), self.data_bits, "payload length must match");
        assert_eq!(parity.len(), self.parity_bits, "parity length must match");
        let s = match self.syndromes(data, parity) {
            None => return BchOutcome::Clean,
            Some(s) => s,
        };
        let sigma = self.berlekamp_massey(&s);
        let nu = sigma.len() - 1;
        if nu == 0 || nu > self.t {
            return BchOutcome::Uncorrectable;
        }
        // Chien search over the *stored* positions only; roots implied in
        // the shortened (always-zero) region mean the locator is bogus.
        let order = self.gf.order() as u64;
        let mut error_positions = Vec::with_capacity(nu);
        for pos in 0..self.total_bits() {
            // σ(α^{-pos}) == 0 ⇔ α^{pos} is an error locator X_l.
            let x = self.gf.alpha_pow(order - (pos as u64 % order));
            let mut acc = 0u16;
            // Horner evaluation.
            for &c in sigma.iter().rev() {
                acc = self.gf.mul(acc, x) ^ c;
            }
            if acc == 0 {
                error_positions.push(pos);
                if error_positions.len() > nu {
                    break;
                }
            }
        }
        if error_positions.len() != nu {
            return BchOutcome::Uncorrectable;
        }
        for &pos in &error_positions {
            if pos < self.parity_bits {
                parity.flip(pos);
            } else {
                data.flip(pos - self.parity_bits);
            }
        }
        BchOutcome::Corrected(error_positions)
    }
}

/// Convenience constructor for the paper's per-line ECC-k codes:
/// t-error-correcting BCH over GF(2¹⁰) protecting one 512-bit cache line.
///
/// # Errors
///
/// Propagates [`BchError`] (only reachable for t large enough that the
/// generator no longer fits, which does not happen for t ≤ 12).
pub fn line_ecc(t: usize) -> Result<Bch, BchError> {
    Bch::new(10, t, 512)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_data(len: usize, seed: u64) -> BitBuf {
        let mut buf = BitBuf::zeros(len);
        let mut x = seed | 1;
        for i in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 3 == 0 {
                buf.set(i, true);
            }
        }
        buf
    }

    #[test]
    fn ecc6_has_60_parity_bits() {
        // Matches the paper's "60 bits per 64-byte line" for ECC-6.
        let code = line_ecc(6).unwrap();
        assert_eq!(code.parity_bits(), 60);
        assert_eq!(code.data_bits(), 512);
    }

    #[test]
    fn ecc1_through_ecc6_parity_sizes() {
        // Each additional corrected error costs one degree-10 factor.
        for t in 1..=6 {
            let code = line_ecc(t).unwrap();
            assert_eq!(code.parity_bits(), 10 * t, "t = {t}");
        }
    }

    #[test]
    fn clean_roundtrip() {
        let code = line_ecc(2).unwrap();
        let data = pattern_data(512, 5);
        let mut parity = code.encode(&data);
        let mut received = data.clone();
        assert_eq!(code.decode(&mut received, &mut parity), BchOutcome::Clean);
        assert_eq!(received, data);
    }

    #[test]
    fn corrects_up_to_t_errors_in_data() {
        for t in 1..=6usize {
            let code = line_ecc(t).unwrap();
            let golden = pattern_data(512, t as u64);
            let golden_parity = code.encode(&golden);
            let mut data = golden.clone();
            let mut parity = golden_parity.clone();
            for e in 0..t {
                data.flip(e * 83 + 7);
            }
            let outcome = code.decode(&mut data, &mut parity);
            assert!(
                matches!(outcome, BchOutcome::Corrected(ref v) if v.len() == t),
                "t = {t}: {outcome:?}"
            );
            assert_eq!(data, golden, "t = {t}");
            assert_eq!(parity, golden_parity, "t = {t}");
        }
    }

    #[test]
    fn corrects_errors_spanning_parity_and_data() {
        let code = line_ecc(3).unwrap();
        let golden = pattern_data(512, 11);
        let golden_parity = code.encode(&golden);
        let mut data = golden.clone();
        let mut parity = golden_parity.clone();
        parity.flip(5);
        parity.flip(29);
        data.flip(444);
        let outcome = code.decode(&mut data, &mut parity);
        assert!(matches!(outcome, BchOutcome::Corrected(ref v) if v.len() == 3));
        assert_eq!(data, golden);
        assert_eq!(parity, golden_parity);
    }

    #[test]
    fn more_than_t_errors_never_restore_wrong_data_silently_for_t_plus_one_detected_case() {
        // With t+1 errors the decoder either reports Uncorrectable or
        // miscorrects; both are allowed, but it must never return Clean.
        let code = line_ecc(2).unwrap();
        let golden = pattern_data(512, 21);
        let golden_parity = code.encode(&golden);
        for trial in 0..20u64 {
            let mut data = golden.clone();
            let mut parity = golden_parity.clone();
            let base = (trial * 53) as usize % 400;
            data.flip(base);
            data.flip(base + 37);
            data.flip(base + 91);
            let outcome = code.decode(&mut data, &mut parity);
            assert_ne!(outcome, BchOutcome::Clean, "trial {trial}");
        }
    }

    #[test]
    fn hi_ecc_field_gf14_works() {
        // Hi-ECC: ECC-6 over a 1-KB (8192-bit) region needs GF(2^14).
        let code = Bch::new(14, 6, 8192).unwrap();
        assert_eq!(code.parity_bits(), 84);
        let golden = pattern_data(8192, 3);
        let golden_parity = code.encode(&golden);
        let mut data = golden.clone();
        let mut parity = golden_parity.clone();
        for e in 0..6 {
            data.flip(e * 1301 + 17);
        }
        let outcome = code.decode(&mut data, &mut parity);
        assert!(matches!(outcome, BchOutcome::Corrected(ref v) if v.len() == 6));
        assert_eq!(data, golden);
        assert_eq!(parity, golden_parity);
    }

    #[test]
    fn data_too_long_rejected() {
        assert!(matches!(
            Bch::new(10, 6, 1000),
            Err(BchError::DataTooLong { .. })
        ));
    }

    #[test]
    fn zero_t_rejected() {
        assert!(matches!(
            Bch::new(10, 0, 100),
            Err(BchError::ZeroCorrection)
        ));
    }

    #[test]
    fn single_bit_in_parity_corrected() {
        let code = line_ecc(1).unwrap();
        let golden = pattern_data(512, 2);
        let golden_parity = code.encode(&golden);
        let mut data = golden.clone();
        let mut parity = golden_parity.clone();
        parity.flip(3);
        let outcome = code.decode(&mut data, &mut parity);
        assert_eq!(outcome, BchOutcome::Corrected(vec![3]));
        assert_eq!(parity, golden_parity);
    }
}
