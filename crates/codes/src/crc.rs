//! Generic cyclic-redundancy-check engine and the CRC-31 instance used by
//! SuDoku.
//!
//! SuDoku provisions each cache line with a 31-bit CRC (paper §III-A) as a
//! strong error *detection* code: it detects every error of weight ≤ 7 over
//! a 543-bit payload, and misses heavier errors with probability ≈ 2⁻³¹.
//! The engine here is fully linear (zero initial register, no final XOR), so
//! `crc(a ⊕ b) = crc(a) ⊕ crc(b)` — the property that makes RAID-4 parity
//! lines self-consistent (the XOR of valid codewords is a valid codeword).
//!
//! The computation is the reflected (LSB-first) form: message bits are
//! consumed in ascending index order, matching the bit order of
//! [`LineData`](crate::LineData) and [`BitBuf`](crate::BitBuf).

use crate::bits::{BitBuf, LineData};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Static description of a CRC: register width in bits and the generator
/// polynomial in "normal" (non-reflected) notation without the implicit
/// leading `x^width` term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrcSpec {
    /// Register width in bits (1..=63).
    pub width: u32,
    /// Generator polynomial, normal form, excluding the `x^width` term.
    pub poly: u64,
}

/// The 31-bit CRC used by SuDoku lines.
///
/// The paper cites Koopman's CRC polynomial zoo for a CRC-31 that detects up
/// to seven errors (HD = 8) at cache-line lengths. We use the 31-bit
/// truncation of the well-known 0x04C11DB7 generator (also used by
/// CRC-31/PHILIPS); the analytic reliability model encodes the paper's
/// guaranteed-detection property independently of the polynomial choice
/// (see `sudoku-reliability`).
pub const CRC31: CrcSpec = CrcSpec {
    width: 31,
    poly: 0x04C1_1DB7,
};

/// A table-driven CRC engine for a fixed [`CrcSpec`].
///
/// # Examples
///
/// ```
/// use sudoku_codes::{crc31, LineData};
///
/// let engine = crc31();
/// let mut line = LineData::zero();
/// line.set_bit(17, true);
/// let c = engine.checksum_line(&line);
/// // CRC is linear: flipping the same bit again returns to the zero CRC.
/// line.flip_bit(17);
/// assert_eq!(engine.checksum_line(&line), 0);
/// assert_ne!(c, 0);
/// ```
#[derive(Clone)]
pub struct CrcEngine {
    spec: CrcSpec,
    /// Reflected polynomial (bit i of normal poly becomes bit width-1-i).
    rpoly: u64,
    mask: u64,
    /// Slice-by-8 tables: `tables[0]` is the classic one-byte-at-a-time
    /// table; `tables[k][b]` is the CRC of byte `b` followed by `k` zero
    /// bytes, which lets a full 64-bit word be folded into the register
    /// with eight independent table lookups (valid for any width <= 63,
    /// since the register then fits inside the word being consumed).
    tables: [[u64; 256]; 8],
}

impl std::fmt::Debug for CrcEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrcEngine")
            .field("spec", &self.spec)
            .finish()
    }
}

fn reflect(value: u64, bits: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..bits {
        if (value >> i) & 1 == 1 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

impl CrcEngine {
    /// Builds an engine (precomputing the byte table) for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.width` is 0 or greater than 63, or if the polynomial
    /// does not fit in `width` bits.
    pub fn new(spec: CrcSpec) -> Self {
        assert!(
            spec.width >= 1 && spec.width <= 63,
            "CRC width must be in 1..=63"
        );
        assert!(
            spec.poly < (1u64 << spec.width),
            "polynomial must fit in the register width"
        );
        let rpoly = reflect(spec.poly, spec.width);
        let mask = (1u64 << spec.width) - 1;
        let mut tables = [[0u64; 256]; 8];
        for (b, entry) in tables[0].iter_mut().enumerate() {
            let mut reg = b as u64;
            for _ in 0..8 {
                reg = if reg & 1 == 1 {
                    (reg >> 1) ^ rpoly
                } else {
                    reg >> 1
                };
            }
            *entry = reg & mask;
        }
        // tables[k+1][b] = tables[k][b] advanced by one more zero byte.
        for k in 1..8 {
            for b in 0..256usize {
                let prev = tables[k - 1][b];
                tables[k][b] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            }
        }
        CrcEngine {
            spec,
            rpoly,
            mask,
            tables,
        }
    }

    /// The spec this engine was built for.
    pub fn spec(&self) -> CrcSpec {
        self.spec
    }

    /// Folds one full 64-bit word (eight message bytes, ascending bit
    /// order) into the register using the slice-by-8 tables.
    ///
    /// Because the register width is <= 63, the whole register fits inside
    /// the word being consumed, so `reg ^ word` XORs the register into the
    /// corresponding message bytes and the eight lookups are independent.
    #[inline]
    fn word_step(&self, reg: u64, word: u64) -> u64 {
        let x = reg ^ word;
        self.tables[7][(x & 0xff) as usize]
            ^ self.tables[6][((x >> 8) & 0xff) as usize]
            ^ self.tables[5][((x >> 16) & 0xff) as usize]
            ^ self.tables[4][((x >> 24) & 0xff) as usize]
            ^ self.tables[3][((x >> 32) & 0xff) as usize]
            ^ self.tables[2][((x >> 40) & 0xff) as usize]
            ^ self.tables[1][((x >> 48) & 0xff) as usize]
            ^ self.tables[0][((x >> 56) & 0xff) as usize]
    }

    /// Checksum of a byte slice (bit 0 of byte 0 is consumed first).
    pub fn checksum_bytes(&self, bytes: &[u8]) -> u64 {
        let mut reg = 0u64;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            reg = self.word_step(reg, word);
        }
        for &b in chunks.remainder() {
            reg = (reg >> 8) ^ self.tables[0][((reg ^ b as u64) & 0xff) as usize];
        }
        reg & self.mask
    }

    /// Checksum of a sequence of full 64-bit message words (bit 0 of word 0
    /// is consumed first, matching the [`BitBuf`] bit-order contract).
    ///
    /// This is the slice-by-8 hot path: one table-fold per word, no byte
    /// serialization of the input.
    pub fn checksum_words(&self, words: &[u64]) -> u64 {
        let mut reg = 0u64;
        for &w in words {
            reg = self.word_step(reg, w);
        }
        reg & self.mask
    }

    /// Checksum of a 512-bit cache line, consuming its backing words
    /// directly (no intermediate byte array).
    #[inline]
    pub fn checksum_line(&self, line: &LineData) -> u64 {
        self.checksum_words(line.words())
    }

    /// Checksum of an arbitrary-length bit buffer.
    ///
    /// Whole 64-bit words go through the slice-by-8 fold; the trailing
    /// partial word (if any) is read with a single masked load — valid
    /// because [`BitBuf`] guarantees storage bits at positions `>= len`
    /// are zero — then consumed byte-wise and finally bit-serially,
    /// preserving ascending bit order.
    pub fn checksum_bits(&self, buf: &BitBuf) -> u64 {
        let words = buf.words();
        let full_words = buf.len() / 64;
        let mut reg = 0u64;
        for &w in &words[..full_words] {
            reg = self.word_step(reg, w);
        }
        let rem = buf.len() % 64;
        if rem > 0 {
            // Single masked read of the partial tail word (the mask is
            // belt-and-braces: the invariant already zeroes those bits).
            let mut tail = words[full_words] & ((1u64 << rem) - 1);
            let mut left = rem;
            while left >= 8 {
                reg = (reg >> 8) ^ self.tables[0][((reg ^ tail) & 0xff) as usize];
                tail >>= 8;
                left -= 8;
            }
            for _ in 0..left {
                let bit = tail & 1;
                tail >>= 1;
                reg = if (reg ^ bit) & 1 == 1 {
                    (reg >> 1) ^ self.rpoly
                } else {
                    reg >> 1
                };
            }
        }
        reg & self.mask
    }

    /// Bit-serial reference implementation over a byte slice, used to verify
    /// the table-driven path.
    pub fn checksum_bytes_reference(&self, bytes: &[u8]) -> u64 {
        let mut reg = 0u64;
        for &byte in bytes {
            for k in 0..8 {
                let bit = ((byte >> k) & 1) as u64;
                reg = if (reg ^ bit) & 1 == 1 {
                    (reg >> 1) ^ self.rpoly
                } else {
                    reg >> 1
                };
            }
        }
        reg & self.mask
    }

    /// Bit-serial reference implementation over a bit buffer (one register
    /// step per bit via [`BitBuf::get`]), used to verify the word-walking
    /// [`CrcEngine::checksum_bits`] path.
    pub fn checksum_bits_reference(&self, buf: &BitBuf) -> u64 {
        let mut reg = 0u64;
        for i in 0..buf.len() {
            let bit = buf.get(i) as u64;
            reg = if (reg ^ bit) & 1 == 1 {
                (reg >> 1) ^ self.rpoly
            } else {
                reg >> 1
            };
        }
        reg & self.mask
    }
}

/// Shared CRC-31 engine instance (lazily constructed).
///
/// See [`CRC31`] for the polynomial choice.
pub fn crc31() -> &'static CrcEngine {
    static ENGINE: OnceLock<CrcEngine> = OnceLock::new();
    ENGINE.get_or_init(|| CrcEngine::new(CRC31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_reference() {
        let engine = CrcEngine::new(CRC31);
        let data: Vec<u8> = (0..64u32).map(|i| (i * 97 + 13) as u8).collect();
        assert_eq!(
            engine.checksum_bytes(&data),
            engine.checksum_bytes_reference(&data)
        );
    }

    #[test]
    fn word_fold_matches_reference() {
        // Slice-by-8 over whole words must agree with the bit-serial
        // reference over the same bytes, for several widths.
        for spec in [
            CRC31,
            CrcSpec {
                width: 8,
                poly: 0x07,
            },
            CrcSpec {
                width: 16,
                poly: 0x1021,
            },
            CrcSpec {
                width: 63,
                poly: 0x4C11_DB7A_DEAD_BEEF,
            },
        ] {
            let engine = CrcEngine::new(spec);
            let bytes: Vec<u8> = (0..128u32).map(|i| (i * 167 + 29) as u8).collect();
            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(
                engine.checksum_words(&words),
                engine.checksum_bytes_reference(&bytes),
                "width {}",
                spec.width
            );
        }
    }

    #[test]
    fn checksum_line_matches_byte_path() {
        let engine = crc31();
        let mut line = LineData::zero();
        for i in [0usize, 1, 63, 64, 255, 256, 500, 511] {
            line.flip_bit(i);
        }
        assert_eq!(
            engine.checksum_line(&line),
            engine.checksum_bytes_reference(&line.to_bytes())
        );
    }

    #[test]
    fn checksum_bits_matches_reference_at_odd_lengths() {
        let engine = crc31();
        for len in [1usize, 7, 8, 9, 63, 64, 65, 127, 128, 129, 543, 553] {
            let mut buf = BitBuf::zeros(len);
            let mut x = 0x1234_5678_9abc_def0u64 | 1;
            for i in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x & 1 == 1 {
                    buf.set(i, true);
                }
            }
            assert_eq!(
                engine.checksum_bits(&buf),
                engine.checksum_bits_reference(&buf),
                "len {len}"
            );
        }
    }

    #[test]
    fn checksum_bits_matches_bytes_for_whole_bytes() {
        let engine = crc31();
        let mut buf = BitBuf::zeros(512);
        let mut line = LineData::zero();
        for i in [0usize, 9, 100, 255, 511] {
            buf.set(i, true);
            line.set_bit(i, true);
        }
        assert_eq!(engine.checksum_bits(&buf), engine.checksum_line(&line));
    }

    #[test]
    fn linearity_holds() {
        let engine = crc31();
        let mut a = LineData::zero();
        let mut b = LineData::zero();
        a.set_bit(3, true);
        a.set_bit(77, true);
        b.set_bit(77, true);
        b.set_bit(400, true);
        let ca = engine.checksum_line(&a);
        let cb = engine.checksum_line(&b);
        assert_eq!(engine.checksum_line(&a.xor(&b)), ca ^ cb);
    }

    #[test]
    fn zero_message_has_zero_crc() {
        assert_eq!(crc31().checksum_line(&LineData::zero()), 0);
    }

    #[test]
    fn single_bit_errors_always_detected() {
        let engine = crc31();
        for i in 0..512 {
            let mut line = LineData::zero();
            line.set_bit(i, true);
            assert_ne!(engine.checksum_line(&line), 0, "bit {i} undetected");
        }
    }

    #[test]
    fn trailing_bits_processed() {
        let engine = crc31();
        let mut a = BitBuf::zeros(543);
        let mut b = BitBuf::zeros(543);
        a.set(542, true);
        assert_ne!(engine.checksum_bits(&a), engine.checksum_bits(&b));
        b.set(542, true);
        assert_eq!(engine.checksum_bits(&a), engine.checksum_bits(&b));
    }

    #[test]
    fn width_mask_respected() {
        let engine = crc31();
        let data: Vec<u8> = (0..200u32).map(|i| (i * 31) as u8).collect();
        let c = engine.checksum_bytes(&data);
        assert!(c < (1 << 31));
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_rejected() {
        CrcEngine::new(CrcSpec { width: 0, poly: 1 });
    }

    #[test]
    #[should_panic(expected = "fit in the register")]
    fn oversized_poly_rejected() {
        CrcEngine::new(CrcSpec {
            width: 8,
            poly: 0x1FF,
        });
    }
}
