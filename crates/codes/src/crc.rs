//! Generic cyclic-redundancy-check engine and the CRC-31 instance used by
//! SuDoku.
//!
//! SuDoku provisions each cache line with a 31-bit CRC (paper §III-A) as a
//! strong error *detection* code: it detects every error of weight ≤ 7 over
//! a 543-bit payload, and misses heavier errors with probability ≈ 2⁻³¹.
//! The engine here is fully linear (zero initial register, no final XOR), so
//! `crc(a ⊕ b) = crc(a) ⊕ crc(b)` — the property that makes RAID-4 parity
//! lines self-consistent (the XOR of valid codewords is a valid codeword).
//!
//! The computation is the reflected (LSB-first) form: message bits are
//! consumed in ascending index order, matching the bit order of
//! [`LineData`](crate::LineData) and [`BitBuf`](crate::BitBuf).

use crate::bits::{BitBuf, LineData};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Static description of a CRC: register width in bits and the generator
/// polynomial in "normal" (non-reflected) notation without the implicit
/// leading `x^width` term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrcSpec {
    /// Register width in bits (1..=63).
    pub width: u32,
    /// Generator polynomial, normal form, excluding the `x^width` term.
    pub poly: u64,
}

/// The 31-bit CRC used by SuDoku lines.
///
/// The paper cites Koopman's CRC polynomial zoo for a CRC-31 that detects up
/// to seven errors (HD = 8) at cache-line lengths. We use the 31-bit
/// truncation of the well-known 0x04C11DB7 generator (also used by
/// CRC-31/PHILIPS); the analytic reliability model encodes the paper's
/// guaranteed-detection property independently of the polynomial choice
/// (see `sudoku-reliability`).
pub const CRC31: CrcSpec = CrcSpec {
    width: 31,
    poly: 0x04C1_1DB7,
};

/// A table-driven CRC engine for a fixed [`CrcSpec`].
///
/// # Examples
///
/// ```
/// use sudoku_codes::{crc31, LineData};
///
/// let engine = crc31();
/// let mut line = LineData::zero();
/// line.set_bit(17, true);
/// let c = engine.checksum_line(&line);
/// // CRC is linear: flipping the same bit again returns to the zero CRC.
/// line.flip_bit(17);
/// assert_eq!(engine.checksum_line(&line), 0);
/// assert_ne!(c, 0);
/// ```
#[derive(Clone)]
pub struct CrcEngine {
    spec: CrcSpec,
    /// Reflected polynomial (bit i of normal poly becomes bit width-1-i).
    rpoly: u64,
    mask: u64,
    table: [u64; 256],
}

impl std::fmt::Debug for CrcEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrcEngine")
            .field("spec", &self.spec)
            .finish()
    }
}

fn reflect(value: u64, bits: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..bits {
        if (value >> i) & 1 == 1 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

impl CrcEngine {
    /// Builds an engine (precomputing the byte table) for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.width` is 0 or greater than 63, or if the polynomial
    /// does not fit in `width` bits.
    pub fn new(spec: CrcSpec) -> Self {
        assert!(
            spec.width >= 1 && spec.width <= 63,
            "CRC width must be in 1..=63"
        );
        assert!(
            spec.poly < (1u64 << spec.width),
            "polynomial must fit in the register width"
        );
        let rpoly = reflect(spec.poly, spec.width);
        let mask = (1u64 << spec.width) - 1;
        let mut table = [0u64; 256];
        for (b, entry) in table.iter_mut().enumerate() {
            let mut reg = b as u64;
            for _ in 0..8 {
                reg = if reg & 1 == 1 {
                    (reg >> 1) ^ rpoly
                } else {
                    reg >> 1
                };
            }
            *entry = reg & mask;
        }
        CrcEngine {
            spec,
            rpoly,
            mask,
            table,
        }
    }

    /// The spec this engine was built for.
    pub fn spec(&self) -> CrcSpec {
        self.spec
    }

    /// Checksum of a byte slice (bit 0 of byte 0 is consumed first).
    pub fn checksum_bytes(&self, bytes: &[u8]) -> u64 {
        let mut reg = 0u64;
        for &b in bytes {
            reg = (reg >> 8) ^ self.table[((reg ^ b as u64) & 0xff) as usize];
        }
        reg & self.mask
    }

    /// Checksum of a 512-bit cache line.
    pub fn checksum_line(&self, line: &LineData) -> u64 {
        self.checksum_bytes(&line.to_bytes())
    }

    /// Checksum of an arbitrary-length bit buffer.
    ///
    /// Whole bytes go through the table; trailing bits are processed
    /// bit-serially, preserving ascending bit order.
    pub fn checksum_bits(&self, buf: &BitBuf) -> u64 {
        let mut reg = 0u64;
        let full_bytes = buf.len() / 8;
        for byte_idx in 0..full_bytes {
            let mut b = 0u8;
            for k in 0..8 {
                if buf.get(byte_idx * 8 + k) {
                    b |= 1 << k;
                }
            }
            reg = (reg >> 8) ^ self.table[((reg ^ b as u64) & 0xff) as usize];
        }
        for i in full_bytes * 8..buf.len() {
            let bit = buf.get(i) as u64;
            reg = if (reg ^ bit) & 1 == 1 {
                (reg >> 1) ^ self.rpoly
            } else {
                reg >> 1
            };
        }
        reg & self.mask
    }

    /// Bit-serial reference implementation over a byte slice, used to verify
    /// the table-driven path.
    pub fn checksum_bytes_reference(&self, bytes: &[u8]) -> u64 {
        let mut reg = 0u64;
        for &byte in bytes {
            for k in 0..8 {
                let bit = ((byte >> k) & 1) as u64;
                reg = if (reg ^ bit) & 1 == 1 {
                    (reg >> 1) ^ self.rpoly
                } else {
                    reg >> 1
                };
            }
        }
        reg & self.mask
    }
}

/// Shared CRC-31 engine instance (lazily constructed).
///
/// See [`CRC31`] for the polynomial choice.
pub fn crc31() -> &'static CrcEngine {
    static ENGINE: OnceLock<CrcEngine> = OnceLock::new();
    ENGINE.get_or_init(|| CrcEngine::new(CRC31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_reference() {
        let engine = CrcEngine::new(CRC31);
        let data: Vec<u8> = (0..64u32).map(|i| (i * 97 + 13) as u8).collect();
        assert_eq!(
            engine.checksum_bytes(&data),
            engine.checksum_bytes_reference(&data)
        );
    }

    #[test]
    fn checksum_bits_matches_bytes_for_whole_bytes() {
        let engine = crc31();
        let mut buf = BitBuf::zeros(512);
        let mut line = LineData::zero();
        for i in [0usize, 9, 100, 255, 511] {
            buf.set(i, true);
            line.set_bit(i, true);
        }
        assert_eq!(engine.checksum_bits(&buf), engine.checksum_line(&line));
    }

    #[test]
    fn linearity_holds() {
        let engine = crc31();
        let mut a = LineData::zero();
        let mut b = LineData::zero();
        a.set_bit(3, true);
        a.set_bit(77, true);
        b.set_bit(77, true);
        b.set_bit(400, true);
        let ca = engine.checksum_line(&a);
        let cb = engine.checksum_line(&b);
        assert_eq!(engine.checksum_line(&a.xor(&b)), ca ^ cb);
    }

    #[test]
    fn zero_message_has_zero_crc() {
        assert_eq!(crc31().checksum_line(&LineData::zero()), 0);
    }

    #[test]
    fn single_bit_errors_always_detected() {
        let engine = crc31();
        for i in 0..512 {
            let mut line = LineData::zero();
            line.set_bit(i, true);
            assert_ne!(engine.checksum_line(&line), 0, "bit {i} undetected");
        }
    }

    #[test]
    fn trailing_bits_processed() {
        let engine = crc31();
        let mut a = BitBuf::zeros(543);
        let mut b = BitBuf::zeros(543);
        a.set(542, true);
        assert_ne!(engine.checksum_bits(&a), engine.checksum_bits(&b));
        b.set(542, true);
        assert_eq!(engine.checksum_bits(&a), engine.checksum_bits(&b));
    }

    #[test]
    fn width_mask_respected() {
        let engine = crc31();
        let data: Vec<u8> = (0..200u32).map(|i| (i * 31) as u8).collect();
        let c = engine.checksum_bytes(&data);
        assert!(c < (1 << 31));
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_rejected() {
        CrcEngine::new(CrcSpec { width: 0, poly: 1 });
    }

    #[test]
    #[should_panic(expected = "fit in the register")]
    fn oversized_poly_rejected() {
        CrcEngine::new(CrcSpec {
            width: 8,
            poly: 0x1FF,
        });
    }
}
