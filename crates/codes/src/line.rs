//! The SuDoku per-line codec: a 512-bit data payload protected by CRC-31
//! (detection) and ECC-1 (Hamming SEC correction).
//!
//! Per paper §III-E the CRC is computed over the data, and the ECC is
//! computed over CRC *and* data, so that ECC-1 can repair a single fault in
//! either field, and so that an ECC miscorrection is caught by the CRC
//! recheck. The stored line is therefore 553 bits:
//!
//! ```text
//! bit 0..512    data
//! bit 512..543  CRC-31 (over data)
//! bit 543..553  ECC-1 check bits (Hamming SEC over data‖CRC)
//! ```
//!
//! Storage overhead: 41 bits per line, vs 60 for ECC-6 (paper §VII-H counts
//! 43 with the amortized 2 bits of PLT parity storage).

use crate::bits::{BitBuf, LineData, LINE_BITS, LINE_WORDS};
use crate::crc::{crc31, CrcEngine};
use crate::hamming::{HammingOutcome, HammingSec};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Data bits per line.
pub const DATA_BITS: usize = LINE_BITS;
/// CRC field width.
pub const CRC_BITS: usize = 31;
/// ECC-1 (Hamming SEC) check bits over the 543-bit payload.
pub const ECC_BITS: usize = 10;
/// Total stored bits per SuDoku line.
pub const TOTAL_BITS: usize = DATA_BITS + CRC_BITS + ECC_BITS;

/// A stored SuDoku cache line: data plus CRC-31 plus ECC-1 metadata.
///
/// All 553 stored bits are addressable (and fault-injectable) through
/// [`ProtectedLine::bit`] / [`ProtectedLine::flip_bit`]; the XOR operations
/// act on the full codeword, which is what the RAID-4 parity lines store.
///
/// # Examples
///
/// ```
/// use sudoku_codes::{LineCodec, LineData};
///
/// let codec = LineCodec::shared();
/// let mut data = LineData::zero();
/// data.set_bit(9, true);
/// let line = codec.encode(&data);
/// assert!(codec.validate(&line));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProtectedLine {
    /// The 512 data bits.
    pub data: LineData,
    /// The 31 CRC bits (low 31 bits used).
    pub crc: u32,
    /// The 10 ECC-1 check bits (low 10 bits used).
    pub ecc: u16,
}

impl ProtectedLine {
    /// The all-zero codeword (valid: zero data has zero CRC and zero ECC).
    pub fn zero() -> Self {
        ProtectedLine::default()
    }

    /// Reads stored bit `i` (0..553, spanning data, CRC, ECC).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 553`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        if i < DATA_BITS {
            self.data.bit(i)
        } else if i < DATA_BITS + CRC_BITS {
            (self.crc >> (i - DATA_BITS)) & 1 == 1
        } else if i < TOTAL_BITS {
            (self.ecc >> (i - DATA_BITS - CRC_BITS)) & 1 == 1
        } else {
            panic!("stored-bit index {i} out of range");
        }
    }

    /// Flips stored bit `i` (0..553).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 553`.
    #[inline]
    pub fn flip_bit(&mut self, i: usize) {
        if i < DATA_BITS {
            self.data.flip_bit(i);
        } else if i < DATA_BITS + CRC_BITS {
            self.crc ^= 1 << (i - DATA_BITS);
        } else if i < TOTAL_BITS {
            self.ecc ^= 1 << (i - DATA_BITS - CRC_BITS);
        } else {
            panic!("stored-bit index {i} out of range");
        }
    }

    /// XORs another stored line into this one (all 553 bits).
    ///
    /// Because CRC and Hamming are linear, the XOR of valid codewords is a
    /// valid codeword — the property RAID-4 parity lines rely on.
    #[inline]
    pub fn xor_assign(&mut self, other: &ProtectedLine) {
        self.data.xor_assign(&other.data);
        self.crc ^= other.crc;
        self.ecc ^= other.ecc;
    }

    /// Returns the XOR of two stored lines.
    #[inline]
    pub fn xor(&self, other: &ProtectedLine) -> ProtectedLine {
        let mut out = *self;
        out.xor_assign(other);
        out
    }

    /// Stored-bit positions at which two lines differ, ascending.
    pub fn diff_positions(&self, other: &ProtectedLine) -> Vec<usize> {
        let mut out = self.data.diff_positions(&other.data);
        let mut crc_diff = self.crc ^ other.crc;
        while crc_diff != 0 {
            out.push(DATA_BITS + crc_diff.trailing_zeros() as usize);
            crc_diff &= crc_diff - 1;
        }
        let mut ecc_diff = self.ecc ^ other.ecc;
        while ecc_diff != 0 {
            out.push(DATA_BITS + CRC_BITS + ecc_diff.trailing_zeros() as usize);
            ecc_diff &= ecc_diff - 1;
        }
        out
    }

    /// Whether every stored bit is zero.
    pub fn is_zero(&self) -> bool {
        self.data.is_zero() && self.crc == 0 && self.ecc == 0
    }

    /// Number of set stored bits.
    pub fn count_ones(&self) -> u32 {
        self.data.count_ones() + self.crc.count_ones() + self.ecc.count_ones()
    }
}

/// How a single-fault repair fixed a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairKind {
    /// A data or CRC bit at this stored-bit position was flipped back.
    PayloadBit(usize),
    /// The ECC field itself was faulty and was regenerated.
    EccField,
}

/// Classification of a stored line by the read path (paper §III-B/C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadCheck {
    /// CRC syndrome is zero: the line is served as-is.
    Clean,
    /// ECC-1 repaired a single fault and the CRC re-check passed.
    Corrected {
        /// The repaired stored line (write it back).
        repaired: ProtectedLine,
        /// What was repaired.
        kind: RepairKind,
    },
    /// ECC-1 could not produce a CRC-consistent line: multi-bit error,
    /// escalate to RAID-4 / SDR / skewed-hash recovery.
    MultiBit,
}

/// The shared per-line encoder/decoder.
///
/// Construction precomputes the Hamming position tables; use
/// [`LineCodec::shared`] to reuse a single instance process-wide.
#[derive(Debug, Clone)]
pub struct LineCodec {
    crc: &'static CrcEngine,
    hamming: HammingSec,
}

impl Default for LineCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl LineCodec {
    /// Builds a codec (CRC-31 + Hamming SEC over 543 bits).
    pub fn new() -> Self {
        LineCodec {
            crc: crc31(),
            hamming: HammingSec::new(DATA_BITS + CRC_BITS),
        }
    }

    /// Process-wide shared codec instance.
    pub fn shared() -> &'static LineCodec {
        static CODEC: OnceLock<LineCodec> = OnceLock::new();
        CODEC.get_or_init(LineCodec::new)
    }

    /// Assembles the 543-bit ECC payload (data ‖ CRC) word-by-word: eight
    /// data words followed by the CRC in the low 31 bits of word 8. No
    /// per-bit loop — this is on the scrub/read hot path.
    fn payload_of(data: &LineData, crc: u32) -> BitBuf {
        let mut words = Vec::with_capacity(LINE_WORDS + 1);
        words.extend_from_slice(data.words());
        words.push(crc as u64);
        BitBuf::from_words(words, DATA_BITS + CRC_BITS)
    }

    /// Inverse of [`LineCodec::payload_of`]: splits the payload words back
    /// into the line data (words 0..8) and the CRC (low 31 bits of word 8).
    fn payload_to_line(payload: &BitBuf) -> (LineData, u32) {
        debug_assert_eq!(payload.len(), DATA_BITS + CRC_BITS);
        let words = payload.words();
        let data = LineData::from_words(words[..LINE_WORDS].try_into().expect("8 data words"));
        let crc = (words[LINE_WORDS] & ((1u64 << CRC_BITS) - 1)) as u32;
        (data, crc)
    }

    /// Encodes a data payload into a stored line (CRC over data, then ECC
    /// over data‖CRC, per paper §III-E).
    pub fn encode(&self, data: &LineData) -> ProtectedLine {
        let crc = self.crc.checksum_line(data) as u32;
        let payload = Self::payload_of(data, crc);
        let ecc = self.hamming.encode(&payload) as u16;
        ProtectedLine {
            data: *data,
            crc,
            ecc,
        }
    }

    /// Whether the stored CRC matches the data (the one-cycle read check).
    #[inline]
    pub fn crc_ok(&self, line: &ProtectedLine) -> bool {
        self.crc.checksum_line(&line.data) as u32 == line.crc
    }

    /// Full consistency: CRC matches *and* the ECC field is consistent.
    /// Used by the scrubber (which repairs metadata too) and by tests.
    pub fn validate(&self, line: &ProtectedLine) -> bool {
        if !self.crc_ok(line) {
            return false;
        }
        let payload = Self::payload_of(&line.data, line.crc);
        self.hamming.syndrome(&payload, line.ecc as u32) == 0
    }

    /// The read-path check (paper §III-B/C): CRC syndrome, then ECC-1
    /// repair attempt, then CRC re-check.
    ///
    /// Note: per the paper, a clean CRC short-circuits — a latent fault in
    /// the ECC field is *not* noticed by reads (the scrub path,
    /// [`LineCodec::scrub_check`], handles it).
    pub fn read_check(&self, line: &ProtectedLine) -> ReadCheck {
        if self.crc_ok(line) {
            return ReadCheck::Clean;
        }
        self.try_ecc1_repair(line)
    }

    /// The scrub-path check: like [`LineCodec::read_check`], but a line
    /// whose data+CRC are clean while the ECC field is inconsistent gets
    /// its ECC field regenerated (the scrubber trusts CRC-validated data).
    pub fn scrub_check(&self, line: &ProtectedLine) -> ReadCheck {
        if self.crc_ok(line) {
            let payload = Self::payload_of(&line.data, line.crc);
            if self.hamming.syndrome(&payload, line.ecc as u32) == 0 {
                return ReadCheck::Clean;
            }
            let repaired = ProtectedLine {
                data: line.data,
                crc: line.crc,
                ecc: self.hamming.encode(&payload) as u16,
            };
            return ReadCheck::Corrected {
                repaired,
                kind: RepairKind::EccField,
            };
        }
        self.try_ecc1_repair(line)
    }

    fn try_ecc1_repair(&self, line: &ProtectedLine) -> ReadCheck {
        let mut payload = Self::payload_of(&line.data, line.crc);
        match self.hamming.decode(&mut payload, line.ecc as u32) {
            HammingOutcome::CorrectedPayload(idx) => {
                let (data, crc) = Self::payload_to_line(&payload);
                let candidate = ProtectedLine {
                    data,
                    crc,
                    ecc: line.ecc,
                };
                if self.crc_ok(&candidate) {
                    ReadCheck::Corrected {
                        repaired: candidate,
                        kind: RepairKind::PayloadBit(idx),
                    }
                } else {
                    // ECC-1 miscorrected (the fault was multi-bit); the CRC
                    // recheck caught it, exactly as §III-E intends.
                    ReadCheck::MultiBit
                }
            }
            // CRC says faulty but Hamming blames its own check bits or sees
            // nothing/invalid: more than one fault. Escalate.
            HammingOutcome::CorrectedCheck(_) | HammingOutcome::Clean | HammingOutcome::Invalid => {
                ReadCheck::MultiBit
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(seed: u64) -> LineData {
        let mut data = LineData::zero();
        let mut x = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        for i in 0..DATA_BITS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 1 == 1 {
                data.set_bit(i, true);
            }
        }
        data
    }

    #[test]
    fn total_bits_is_553() {
        assert_eq!(TOTAL_BITS, 553);
    }

    #[test]
    fn payload_assembly_matches_bitwise_reference() {
        let data = sample_data(99);
        let crc = 0x5a5a_5a5a & ((1u32 << CRC_BITS) - 1);
        let payload = LineCodec::payload_of(&data, crc);
        assert_eq!(payload.len(), DATA_BITS + CRC_BITS);
        let mut reference = BitBuf::zeros(DATA_BITS + CRC_BITS);
        for i in 0..DATA_BITS {
            if data.bit(i) {
                reference.set(i, true);
            }
        }
        for j in 0..CRC_BITS {
            if (crc >> j) & 1 == 1 {
                reference.set(DATA_BITS + j, true);
            }
        }
        assert_eq!(payload, reference);
        let (data2, crc2) = LineCodec::payload_to_line(&payload);
        assert_eq!(data2, data);
        assert_eq!(crc2, crc);
    }

    #[test]
    fn encode_validate_roundtrip() {
        let codec = LineCodec::shared();
        let line = codec.encode(&sample_data(1));
        assert!(codec.validate(&line));
        assert_eq!(codec.read_check(&line), ReadCheck::Clean);
    }

    #[test]
    fn every_single_bit_fault_is_repaired() {
        let codec = LineCodec::shared();
        let golden = codec.encode(&sample_data(2));
        for i in 0..TOTAL_BITS {
            let mut line = golden;
            line.flip_bit(i);
            match codec.scrub_check(&line) {
                ReadCheck::Clean => {
                    // Only reachable for ECC-field faults on the read path;
                    // the scrub path must not report Clean for any flip.
                    panic!("bit {i}: scrub_check returned Clean on a faulty line");
                }
                ReadCheck::Corrected { repaired, .. } => {
                    assert_eq!(repaired, golden, "bit {i} repaired incorrectly");
                }
                ReadCheck::MultiBit => panic!("bit {i}: single fault deemed multi-bit"),
            }
        }
    }

    #[test]
    fn read_path_ignores_ecc_field_faults() {
        // Per §III-B the read check is the CRC syndrome only.
        let codec = LineCodec::shared();
        let golden = codec.encode(&sample_data(3));
        let mut line = golden;
        line.flip_bit(TOTAL_BITS - 1); // an ECC-field bit
        assert_eq!(codec.read_check(&line), ReadCheck::Clean);
        // The scrubber regenerates it.
        match codec.scrub_check(&line) {
            ReadCheck::Corrected {
                repaired,
                kind: RepairKind::EccField,
            } => assert_eq!(repaired, golden),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_faults_are_flagged_multibit() {
        let codec = LineCodec::shared();
        let golden = codec.encode(&sample_data(4));
        for (a, b) in [(0usize, 1usize), (10, 300), (511, 512), (100, 542)] {
            let mut line = golden;
            line.flip_bit(a);
            line.flip_bit(b);
            assert_eq!(
                codec.read_check(&line),
                ReadCheck::MultiBit,
                "faults at {a},{b}"
            );
        }
    }

    #[test]
    fn xor_of_valid_codewords_is_valid() {
        let codec = LineCodec::shared();
        let a = codec.encode(&sample_data(5));
        let b = codec.encode(&sample_data(6));
        let c = a.xor(&b);
        assert!(codec.validate(&c), "linearity violated");
    }

    #[test]
    fn diff_positions_cover_all_fields() {
        let golden = LineCodec::shared().encode(&sample_data(7));
        let mut line = golden;
        line.flip_bit(5);
        line.flip_bit(520);
        line.flip_bit(550);
        assert_eq!(line.diff_positions(&golden), vec![5, 520, 550]);
    }

    #[test]
    fn zero_line_is_valid() {
        let codec = LineCodec::shared();
        assert!(codec.validate(&ProtectedLine::zero()));
    }

    #[test]
    fn bit_and_flip_agree() {
        let mut line = ProtectedLine::zero();
        for i in [0usize, 511, 512, 542, 543, 552] {
            assert!(!line.bit(i));
            line.flip_bit(i);
            assert!(line.bit(i));
        }
        assert_eq!(line.count_ones(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        ProtectedLine::zero().bit(TOTAL_BITS);
    }
}
