//! RAID-4 XOR parity over stored lines (paper §III-A).
//!
//! Each RAID-Group of 512 lines is protected by one parity line holding the
//! bitwise XOR of every member's full 553-bit stored codeword. Because the
//! CRC and ECC layers are linear, a parity line built from valid codewords
//! is itself a valid codeword — convenient for keeping the Parity Line
//! Table self-checking.

use crate::line::ProtectedLine;

/// XOR-accumulates `line` into `acc`.
#[inline]
pub fn xor_accumulate(acc: &mut ProtectedLine, line: &ProtectedLine) {
    acc.xor_assign(line);
}

/// Computes the parity line of a group of stored lines.
///
/// # Examples
///
/// ```
/// use sudoku_codes::{group_parity, LineCodec, LineData};
///
/// let codec = LineCodec::shared();
/// let a = codec.encode(&LineData::zero());
/// let mut d = LineData::zero();
/// d.set_bit(3, true);
/// let b = codec.encode(&d);
/// let parity = group_parity([&a, &b]);
/// // Reconstruction: XOR of parity and all-but-one member yields the member.
/// assert_eq!(parity.xor(&a), b);
/// ```
pub fn group_parity<'a, I>(lines: I) -> ProtectedLine
where
    I: IntoIterator<Item = &'a ProtectedLine>,
{
    let mut acc = ProtectedLine::zero();
    for line in lines {
        acc.xor_assign(line);
    }
    acc
}

/// Reconstructs one missing member from the parity line and the remaining
/// members (classic RAID-4 recovery, paper §III-C.2).
pub fn reconstruct<'a, I>(parity: &ProtectedLine, others: I) -> ProtectedLine
where
    I: IntoIterator<Item = &'a ProtectedLine>,
{
    let mut acc = *parity;
    for line in others {
        acc.xor_assign(line);
    }
    acc
}

/// Stored-bit positions at which the freshly computed parity disagrees with
/// the stored parity — the candidate fault positions that drive Sequential
/// Data Resurrection (paper §IV).
pub fn mismatch_positions(computed: &ProtectedLine, stored: &ProtectedLine) -> Vec<usize> {
    computed.diff_positions(stored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{LineCodec, TOTAL_BITS};
    use crate::LineData;

    fn lines(n: usize) -> Vec<ProtectedLine> {
        let codec = LineCodec::shared();
        (0..n)
            .map(|i| {
                let mut d = LineData::zero();
                for b in 0..DATA_SPREAD {
                    let pos = (i * 131 + b * 37) % 512;
                    d.set_bit(pos, (i + b) % 3 == 0);
                }
                codec.encode(&d)
            })
            .collect()
    }

    const DATA_SPREAD: usize = 9;

    #[test]
    fn parity_of_empty_group_is_zero() {
        assert!(group_parity([]).is_zero());
    }

    #[test]
    fn parity_is_self_valid() {
        let ls = lines(8);
        let parity = group_parity(ls.iter());
        assert!(LineCodec::shared().validate(&parity));
    }

    #[test]
    fn reconstruct_recovers_any_member() {
        let ls = lines(6);
        let parity = group_parity(ls.iter());
        for skip in 0..ls.len() {
            let others = ls
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| l);
            assert_eq!(reconstruct(&parity, others), ls[skip], "member {skip}");
        }
    }

    #[test]
    fn mismatch_positions_locate_injected_faults() {
        let mut ls = lines(5);
        let stored_parity = group_parity(ls.iter());
        // Faults in member 2 at known positions.
        ls[2].flip_bit(17);
        ls[2].flip_bit(300);
        ls[2].flip_bit(TOTAL_BITS - 1);
        let recomputed = group_parity(ls.iter());
        assert_eq!(
            mismatch_positions(&recomputed, &stored_parity),
            vec![17, 300, TOTAL_BITS - 1]
        );
    }

    #[test]
    fn overlapping_faults_cancel_in_parity() {
        // Two members faulty at the same position: the parity cannot see it
        // (paper §IV-B case 3).
        let mut ls = lines(5);
        let stored_parity = group_parity(ls.iter());
        ls[1].flip_bit(100);
        ls[3].flip_bit(100);
        let recomputed = group_parity(ls.iter());
        assert!(mismatch_positions(&recomputed, &stored_parity).is_empty());
    }
}
