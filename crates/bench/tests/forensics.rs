//! End-to-end test of the forensics bin: a seeded demo campaign must yield
//! complete escalation chains for at least one SDR-resurrected and one
//! Hash-2-repaired line, and the `--events` → `--input` round trip must
//! reproduce the same analysis from the JSONL file.

use std::process::Command;

fn forensics() -> Command {
    Command::new(env!("CARGO_BIN_EXE_forensics"))
}

fn stdout_of(out: std::process::Output) -> String {
    assert!(out.status.success(), "forensics bin failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn demo_campaign_reconstructs_sdr_and_hash2_chains() {
    let dir = std::env::temp_dir().join("sudoku_forensics_test");
    std::fs::create_dir_all(&dir).unwrap();
    let events = dir.join("events.jsonl");
    let events_s = events.to_str().unwrap();

    // Demo mode: seeded campaign, event log captured to disk.
    let out = stdout_of(
        forensics()
            .args(["--trials", "200", "--seed", "42", "--events", events_s])
            .output()
            .expect("spawn forensics"),
    );
    assert!(
        out.contains("exemplar SDR resurrection"),
        "missing SDR exemplar section:\n{out}"
    );
    assert!(
        out.contains("Sdr:Repaired"),
        "no complete SDR-resurrection chain:\n{out}"
    );
    assert!(
        out.contains("Repaired@H2"),
        "no complete Hash-2 repair chain:\n{out}"
    );
    // Chains start at injection — complete, not truncated.
    assert!(out.contains("Inject→CrcDetect→Raid4:Blocked@H1→Sdr:Repaired@H1"));

    // Replaying the captured JSONL must reproduce the same exemplars.
    let replay = stdout_of(
        forensics()
            .args(["--input", events_s])
            .output()
            .expect("spawn forensics replay"),
    );
    assert!(
        replay.contains("Sdr:Repaired"),
        "replay lost SDR chains:\n{replay}"
    );
    assert!(
        replay.contains("Repaired@H2"),
        "replay lost Hash-2 chains:\n{replay}"
    );
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("resolution breakdown"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        tail(&out),
        tail(&replay),
        "replay diverged from live analysis"
    );

    std::fs::remove_file(&events).ok();
}
