//! §VII-I: write traffic to the Parity Line Table. The PLT sees the same
//! write intensity as the STTRAM array but is 512× smaller; with matched
//! banking and SRAM latency it never becomes a bottleneck. This experiment
//! measures the modeled PLT backlog across the Figure-8 workloads.

use sudoku_bench::{header, Args};
use sudoku_sim::{compare_workload, paper_workloads, RunnerConfig};

fn main() {
    let args = Args::parse(0, 60_000);
    header("PLT write-traffic analysis (paper §VII-I)");
    let cfg = RunnerConfig::paper_default(args.accesses, args.seed);
    let sys = cfg.system;
    println!(
        "PLT: {} banks (same as the array), {} ns per SRAM update vs {} ns\n\
         per STTRAM write — the PLT drains {}x faster than stores arrive.\n",
        sys.llc_banks,
        sys.plt_write_ns,
        sys.stt_write_ns,
        sys.stt_write_ns / sys.plt_write_ns
    );
    println!(
        "{:<16} {:>12} {:>14} {:>16} {:>14}",
        "workload", "PLT writes", "writes/ms", "peak demand*", "time impact"
    );
    for w in paper_workloads(sys.cores).iter().take(10) {
        let c = compare_workload(&cfg, w);
        let m = &c.sudoku.metrics;
        let per_ms = m.plt_writes as f64 / (m.exec_time_ns / 1e6);
        // Worst-case per-bank demand: all PLT writes on one bank would need
        // this fraction of the bank's time — with real banking divide by 32.
        let demand =
            m.plt_writes as f64 * sys.plt_write_ns / (m.exec_time_ns * sys.llc_banks as f64);
        println!(
            "{:<16} {:>12} {:>14.0} {:>15.3}% {:>13.4}%",
            c.name,
            m.plt_writes,
            per_ms,
            demand * 100.0,
            (c.time_ratio() - 1.0) * 100.0
        );
    }
    println!(
        "\n*peak demand = PLT busy-fraction per bank; at a few percent — 30x\n\
         below saturation — the queues never back up, confirming the paper's\n\
         claim that the PLT causes no bandwidth bottleneck: the measured time\n\
         impact stays at the Figure-8 noise level."
    );
}
