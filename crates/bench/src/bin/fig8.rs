//! Figure 8: execution time of SuDoku-Z normalized to an idealized
//! error-free cache, per workload.
//!
//! `--metrics-json <path>` exports every workload's full data point
//! (timing counters, energy breakdown, Figure 8/9 ratios) as JSON.

use sudoku_bench::{header, Args};
use sudoku_sim::{compare_workload, geo_mean, paper_workloads, RunnerConfig};

fn main() {
    let args = Args::parse(0, 100_000);
    header("Figure 8 — execution time of SuDoku-Z normalized to ideal");
    let cfg = RunnerConfig::paper_default(args.accesses, args.seed);
    let mut ratios = Vec::new();
    let mut points = Vec::new();
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "workload", "norm.time", "hit rate", "scrubstall", "syndrome", "PLT writes"
    );
    for w in paper_workloads(cfg.system.cores) {
        let c = compare_workload(&cfg, &w);
        let r = c.time_ratio();
        ratios.push(r);
        println!(
            "{:<16} {:>10.5} {:>10.3} {:>10.1}us {:>10.1}us {:>12}",
            c.name,
            r,
            c.ideal.metrics.hit_rate(),
            c.sudoku.metrics.scrub_stall_ns / 1e3,
            c.sudoku.metrics.syndrome_ns / 1e3,
            c.sudoku.metrics.plt_writes,
        );
        points.push(c.to_json());
    }
    let gm = geo_mean(ratios.iter().copied());
    println!(
        "\ngeometric-mean slowdown: {:.3}% (paper Figure 8: ~0.15% average)",
        (gm - 1.0) * 100.0
    );
    if let Some(path) = &args.metrics_json {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "fig8")
            .field_f64("geomean_time_ratio", gm)
            .field_raw("workloads", &format!("[{}]", points.join(",")));
        std::fs::write(path, obj.finish() + "\n").expect("write --metrics-json output");
        println!("wrote per-workload metrics to {path}");
    }
}
