//! Table IV: probability of SRAM cache failure at V_min < 500 mV
//! (BER = 10⁻³): uniform ECC-7/8/9 vs SuDoku.

use sudoku_bench::{header, sci};
use sudoku_reliability::analytic::{sram_ecc_cache_failure, sram_sudoku_cache_failure, Params};

fn main() {
    header("Table IV — P(SRAM cache failure), BER = 1e-3 (Vmin < 500 mV)");
    let params = Params::paper_default().with_ber(1e-3);
    let paper = [(7u32, 0.11), (8, 0.0066), (9, 3.5e-4)];
    println!("{:<10} {:>14} {:>14}", "scheme", "reproduced", "paper");
    for (t, pv) in paper {
        println!(
            "ECC-{t:<6} {:>14} {:>14}",
            sci(sram_ecc_cache_failure(&params, t)),
            sci(pv)
        );
    }
    println!(
        "SuDoku     {:>14} {:>14}",
        sci(sram_sudoku_cache_failure(&params)),
        sci(3.8e-10)
    );
    println!(
        "\nNote: the ECC rows reproduce the paper closely. The paper's SuDoku\n\
         entry (3.8e-10) is not derivable from its stated transient-fault\n\
         model — at BER 1e-3 ~10% of lines are multi-bit faulty and every\n\
         RAID-Group carries dozens of them, so any parity-group scheme\n\
         saturates. Our honestly computed value is reported instead; see\n\
         EXPERIMENTS.md for the discussion."
    );
}
