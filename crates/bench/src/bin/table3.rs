//! Table III: silent-data-corruption rate of SuDoku-X — lines whose fault
//! weight defeats CRC-31's guaranteed detection.

use sudoku_bench::{header, sci};
use sudoku_reliability::analytic::{line_pmf, line_sf, sdc_fit, Params, CRC31_MISS};

fn main() {
    header("Table III — SDC rates of a cache with SuDoku-X");
    let params = Params::paper_default();
    let scrub = params.scrub;
    // Event FITs: some line in the cache carries exactly-7 / ≥8 faults.
    let ev7 = scrub.fit_rate_linear(sudoku_reliability::math::p_any(
        params.lines,
        line_pmf(&params, 7),
    ));
    let ev8 = scrub.fit_rate_linear(sudoku_reliability::math::p_any(
        params.lines,
        line_sf(&params, 8),
    ));
    println!(
        "{:<36} {:>14} {:>14}",
        "vulnerability", "7 faults/line", "8+ faults/line"
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "event (per 10^9 h), reproduced",
        sci(ev7),
        sci(ev8)
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "event (per 10^9 h), paper", "191", "0.09"
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "CRC-31 misdetection probability",
        sci(CRC31_MISS),
        sci(CRC31_MISS)
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "SDC rate (per 10^9 h), reproduced",
        sci(ev7 * CRC31_MISS),
        sci(ev8 * CRC31_MISS)
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "SDC rate (per 10^9 h), paper", "8.9e-9", "4.2e-11"
    );
    println!(
        "\ntotal SDC FIT: {} (paper: 8.9e-9) — both ≪ the 1-FIT target,\n\
         so reliability is DUE-dominated for X, Y, and Z alike.",
        sci(sdc_fit(&params))
    );
}
