//! Table IX: SuDoku-Z FIT sensitivity to cache size (32/64/128 MB).

use sudoku_bench::{header, sci};
use sudoku_reliability::analytic::{z_fit_paper_style, Params};

fn main() {
    header("Table IX — sensitivity to cache size");
    let paper = [(32u64, 0.52e-4), (64, 1.05e-4), (128, 2.1e-4)];
    println!("{:<10} {:>14} {:>14}", "cache", "FIT (ours)", "FIT (paper)");
    let mut prev = None;
    for (mb, pv) in paper {
        let params = Params::paper_default().with_lines(mb * 1024 * 1024 / 64);
        let fit = z_fit_paper_style(&params);
        println!(
            "{:<10} {:>14} {:>14}",
            format!("{mb} MB"),
            sci(fit),
            sci(pv)
        );
        if let Some(p) = prev {
            let r: f64 = fit / p;
            assert!((r - 2.0f64).abs() < 0.05, "scaling must be linear, got {r}");
        }
        prev = Some(fit);
    }
    println!("\nscaling is linear in the number of lines, as the paper reports.");
}
