//! Storage-overhead accounting (paper §VII-H): SuDoku vs ECC-6.

use sudoku_bench::header;
use sudoku_codes::{line_ecc, CRC_BITS, ECC_BITS};
use sudoku_core::{Scheme, SudokuConfig};

fn main() {
    header("Storage overheads (paper §VII-H)");
    println!("per 512-bit line:");
    println!("  ECC-1 (Hamming SEC):  {ECC_BITS} bits");
    println!("  CRC-31:               {CRC_BITS} bits");
    for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
        let cfg = SudokuConfig::paper_default(scheme);
        println!(
            "  {scheme}: total {:.1} bits/line ({} PLT(s), {} KB SRAM)",
            cfg.storage_overhead_bits_per_line(),
            if scheme.second_hash_enabled() { 2 } else { 1 },
            cfg.plt_storage_bytes() / 1024,
        );
    }
    let ecc6 = line_ecc(6).expect("ECC-6 exists");
    println!("  ECC-6 (BCH t=6):      {} bits/line", ecc6.parity_bits());
    let z = SudokuConfig::paper_default(Scheme::Z);
    println!(
        "\nSuDoku-Z at {:.0} bits/line is {:.0}% cheaper than ECC-6's {} bits/line\n\
         (paper: 43 vs 60 bits → 30% less storage), plus the 256 KB PLT SRAM\n\
         is 0.39% of the 64 MB cache.",
        z.storage_overhead_bits_per_line(),
        (1.0 - z.storage_overhead_bits_per_line() / ecc6.parity_bits() as f64) * 100.0,
        ecc6.parity_bits(),
    );
}
