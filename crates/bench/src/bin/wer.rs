//! Write-error rate study (paper §VIII-B): STTRAM writes themselves can
//! flip cells ("WER"). The paper argues SuDoku does not distinguish write
//! errors from retention errors, so reliability is unchanged as long as
//! WER ≈ retention BER. This experiment injects both kinds through the
//! real engines and compares outcomes.

use sudoku_bench::{header, sci, Args};
use sudoku_codes::{LineData, TOTAL_BITS};
use sudoku_core::{Scheme, SudokuCache, SudokuConfig};
use sudoku_fault::{choose_distinct, sample_binomial, FaultInjector};

fn main() {
    let args = Args::parse(200, 0);
    header("Write-error rate (WER) study — paper §VIII-B");
    let lines = 1u64 << 13;
    let group = 64u32;
    let retention_ber = 1e-4;
    let writes_per_interval = 2000u64;
    println!(
        "{} lines, groups of {group}, retention BER {} per interval,\n\
         {} faulty writes per interval, {} intervals per point:\n",
        lines,
        sci(retention_ber),
        writes_per_interval,
        args.trials
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "WER", "DUE rate", "sdr", "raid4"
    );
    for wer in [0.0, 0.5e-4, 1e-4, 2e-4] {
        let mut due = 0u64;
        let mut sdr = 0u64;
        let mut raid4 = 0u64;
        for t in 0..args.trials {
            let mut cache = SudokuCache::new_sparse(SudokuConfig::small(Scheme::Z, lines, group))
                .expect("valid configuration");
            let mut injector = FaultInjector::new(retention_ber, args.seed + t);
            let mut hints = Vec::new();
            // Logical writes with an imperfect write path.
            for w in 0..writes_per_interval {
                let idx = (w * 2654435761) % lines;
                let mut d = LineData::zero();
                d.set_bit((w % 512) as usize, true);
                cache.write(idx, &d);
                if wer > 0.0 {
                    let k = sample_binomial(injector.rng(), TOTAL_BITS as u64, wer);
                    if k > 0 {
                        for bit in choose_distinct(injector.rng(), TOTAL_BITS as u64, k) {
                            cache.inject_fault(idx, bit as usize);
                        }
                        hints.push(idx);
                    }
                }
            }
            // Retention faults over the same interval.
            for lf in injector.cache_plan(lines) {
                let bits = choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64);
                for b in bits {
                    cache.inject_fault(lf.line, b as usize);
                }
                hints.push(lf.line);
            }
            let report = cache.scrub_lines(&hints);
            due += (!report.fully_repaired()) as u64;
            sdr += report.sdr_repairs;
            raid4 += report.raid4_repairs;
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            sci(wer),
            sci(due as f64 / args.trials as f64),
            sdr,
            raid4
        );
    }
    println!(
        "\nWER faults flow through the identical detection/repair path as\n\
         retention faults; with WER up to 2× the retention BER the DUE rate\n\
         moves only with the total fault mass — the §VIII-B claim."
    );
}
