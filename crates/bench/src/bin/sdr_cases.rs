//! SDR case statistics (paper §IV-B/C, Figure 3): conditional Monte-Carlo
//! over the real engines for the canonical fault patterns.

use sudoku_bench::{flag, header, sci, write_bench_reports, Args};
use sudoku_core::Scheme;
use sudoku_reliability::montecarlo::{run_group_campaign_timed, GroupScenario, ThroughputReport};

fn main() {
    let args = Args::parse(20_000, 0);
    header("SDR case analysis — conditional Monte-Carlo on real engines");
    println!(
        "{:<34} {:>9} {:>12} {:>12} {:>22}",
        "scenario (faults per line)", "scheme", "success", "DUE", "paper expectation"
    );
    let mut reports: Vec<(String, ThroughputReport)> = Vec::new();
    let cases: Vec<(&str, Scheme, Vec<u32>, &str)> = vec![
        (
            "two lines × 2 faults",
            Scheme::Y,
            vec![2, 2],
            "99.9996% (Fig 3)",
        ),
        (
            "two lines × 2 faults",
            Scheme::X,
            vec![2, 2],
            "0% (X has no SDR)",
        ),
        (
            "2-fault + 3-fault",
            Scheme::Y,
            vec![2, 3],
            "repairable (Fig 4)",
        ),
        (
            "three lines × 2 faults",
            Scheme::Y,
            vec![2, 2, 2],
            "99.9% (§IV-C)",
        ),
        (
            "two lines × 3 faults",
            Scheme::Y,
            vec![3, 3],
            "fails (→ SuDoku-Z)",
        ),
        (
            "two lines × 3 faults",
            Scheme::Z,
            vec![3, 3],
            "repaired via Hash-2",
        ),
        (
            "four lines × 2 faults",
            Scheme::Y,
            vec![2, 2, 2, 2],
            ">6 mismatches: abort",
        ),
        (
            "four lines × 2 faults",
            Scheme::Z,
            vec![2, 2, 2, 2],
            "repaired via Hash-2",
        ),
    ];
    for (label, scheme, counts, expect) in cases {
        let scenario = GroupScenario {
            scheme,
            group: 512,
            fault_counts: counts,
            pair_sdr: false,
        };
        // Group-conditional trials need group² = 262144 lines; scale trials
        // down for the heavier Z scenarios.
        let trials = if scheme == Scheme::Z {
            args.trials / 4
        } else {
            args.trials
        };
        let (s, report) =
            run_group_campaign_timed(&scenario, trials.max(100), args.seed, args.threads);
        reports.push((format!("{label} / {scheme}"), report));
        println!(
            "{label:<34} {:>9} {:>12} {:>12} {:>22}",
            format!("{scheme}").replace("SuDoku-", ""),
            format!("{:.4}%", s.success_rate() * 100.0),
            sci(s.failure_rate()),
            expect
        );
    }
    println!(
        "\nfull-overlap probability for two 2-fault lines: 2/(553·552) = {}\n\
         (paper §IV-B case 3: ~0.0004%)",
        sci(2.0 / (553.0 * 552.0))
    );
    println!("\ncampaign throughput:");
    for (label, report) in &reports {
        report.println(label);
    }
    if flag("--json") {
        write_bench_reports("sdr_cases", &reports);
    }
}
