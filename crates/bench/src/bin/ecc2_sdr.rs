//! §VII-G enhancement, functionally: SDR strength with ECC-2 per line
//! versus the paper's ECC-1 design, on the fault patterns that separate
//! them — plus the analytic FIT impact at low ∆ (ties into Table X).

use sudoku_bench::{flag, header, sci, write_bench_reports, Args};
use sudoku_core::Scheme;
use sudoku_fault::ThermalModel;
use sudoku_reliability::analytic::{ecc_fit, z_fit_paper_style, Params};
use sudoku_reliability::ecc2::{run_ecc2_campaign, Ecc2Scenario};
use sudoku_reliability::montecarlo::{run_group_campaign_timed, GroupScenario, ThroughputReport};

fn main() {
    let args = Args::parse(2000, 0);
    header("§VII-G — replacing ECC-1 with ECC-2 (functional + analytic)");

    println!(
        "single-hash SDR success rates ({} trials per cell):\n",
        args.trials
    );
    println!(
        "{:<26} {:>14} {:>14}",
        "pattern (faults per line)", "ECC-1 design", "ECC-2 design"
    );
    let mut reports: Vec<(String, ThroughputReport)> = Vec::new();
    let patterns: Vec<(&str, Vec<u32>)> = vec![
        ("two × 2", vec![2, 2]),
        ("two × 3", vec![3, 3]),
        ("three × 2", vec![2, 2, 2]),
        ("2 + 3", vec![2, 3]),
        ("two × 4", vec![4, 4]),
    ];
    for (label, counts) in patterns {
        let (ecc1, report) = run_group_campaign_timed(
            &GroupScenario {
                scheme: Scheme::Y,
                group: 64,
                fault_counts: counts.clone(),
                pair_sdr: false,
            },
            args.trials,
            args.seed,
            args.threads,
        );
        reports.push((label.to_string(), report));
        let ecc2 = run_ecc2_campaign(
            &Ecc2Scenario {
                group: 64,
                fault_counts: counts,
                max_mismatches: 6,
            },
            args.trials,
            args.seed,
        );
        println!(
            "{label:<26} {:>13.2}% {:>13.2}%",
            ecc1.success_rate() * 100.0,
            ecc2.success_rate() * 100.0
        );
    }

    println!("\nanalytic FIT at low ∆ (64 MB, 20 ms):");
    println!(
        "{:<6} {:>12} {:>14} {:>14}",
        "∆", "ECC-6", "SuDoku(ECC-1)", "SuDoku(ECC-2)"
    );
    for delta in [34.0, 33.0, 32.0] {
        let ber = ThermalModel::new(delta, 0.10).ber(20e-3);
        let params = Params::paper_default().with_ber(ber);
        println!(
            "{delta:<6} {:>12} {:>14} {:>14}",
            sci(ecc_fit(&params, 6)),
            sci(z_fit_paper_style(&params)),
            sci(z_fit_paper_style(&params.with_line_ecc(2))),
        );
    }
    println!(
        "\nECC-2 turns the (3,3) pattern — the dominant Y killer — into a\n\
         locally resurrectable case, buying ~10 orders of magnitude of FIT at\n\
         ∆ = 32–33 for 10 extra bits per line. Exactly the §VII-G suggestion."
    );
    println!("\nECC-1 campaign throughput:");
    for (label, report) in &reports {
        report.println(label);
    }
    if flag("--json") {
        write_bench_reports("ecc2_sdr", &reports);
    }
}
