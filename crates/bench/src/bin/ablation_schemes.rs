//! Ablation: each SuDoku mechanism switched on in turn (X → +SDR = Y →
//! +skewed hash = Z), measured with Monte-Carlo at an elevated BER so each
//! level's failures are observable in minutes.

use sudoku_bench::{flag, header, sci, Args};
use sudoku_core::Scheme;
use sudoku_fault::ScrubSchedule;
use sudoku_reliability::montecarlo::{run_interval_campaign_observed, McConfig};

fn main() {
    let args = Args::parse(400, 0);
    header("Ablation — SDR and skewed hashing, measured on the real engines");
    // 2^14 lines, 128-line groups, BER high enough that SuDoku-X fails in
    // a sizable fraction of intervals.
    let base = McConfig {
        scheme: Scheme::X,
        lines: 1 << 14,
        group: 128,
        ber: 2e-4,
        trials: args.trials,
        seed: args.seed,
        threads: args.threads,
        scrub: ScrubSchedule::paper_default(),
    };
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "DUE rate", "raid4", "sdr", "hash2", "SDC"
    );
    let mut rates = Vec::new();
    let mut reports = Vec::new();
    let mut phase_json = Vec::new();
    for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
        let cfg = McConfig { scheme, ..base };
        let (s, report, telemetry) = run_interval_campaign_observed(&cfg, args.observe());
        let label = format!("ablation_{}", scheme.to_string().to_lowercase());
        args.write_telemetry(Some(&label), &telemetry);
        phase_json.push((scheme, telemetry.phases.to_json()));
        rates.push(s.due_rate());
        reports.push((scheme, report));
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            scheme.to_string(),
            sci(s.due_rate()),
            s.raid4_repairs,
            s.sdr_repairs,
            s.hash2_repairs,
            s.sdc_intervals,
        );
    }
    println!(
        "\nladder at BER 2e-4 over {} intervals: X {} → Y {} → Z {}\n\
         each mechanism strictly reduces the observed DUE rate.",
        args.trials,
        sci(rates[0]),
        sci(rates[1]),
        sci(rates[2]),
    );
    assert!(
        rates[0] >= rates[1] && rates[1] >= rates[2],
        "ladder must be monotone"
    );
    println!("\ncampaign throughput:");
    for (scheme, report) in &reports {
        report.println(&scheme.to_string());
    }

    if flag("--json") {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "ablation_schemes");
        for (scheme, report) in &reports {
            let key = format!("{}_campaign", scheme.to_string().to_lowercase());
            obj.field_raw(&key, &report.to_json());
        }
        if args.observe().enabled() {
            for (scheme, phases) in &phase_json {
                let key = format!("{}_phases", scheme.to_string().to_lowercase());
                obj.field_raw(&key, phases);
            }
        }
        std::fs::write("BENCH_ablation_schemes.json", obj.finish() + "\n")
            .expect("write BENCH_ablation_schemes.json");
        println!("wrote BENCH_ablation_schemes.json");
    }
}
