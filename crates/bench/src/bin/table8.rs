//! Table VIII: FIT rate vs scrub interval (10/20/40 ms) for ECC-5, ECC-6
//! and SuDoku-Z. The per-interval BER comes from the thermal model.

use sudoku_bench::{header, sci};
use sudoku_fault::{ScrubSchedule, ThermalModel};
use sudoku_reliability::analytic::{ecc_fit, z_fit_paper_style, Params};

fn main() {
    header("Table VIII — FIT vs scrub interval (default 20 ms)");
    let thermal = ThermalModel::paper_default();
    let paper: [(f64, f64, f64, f64, f64); 3] = [
        (10e-3, 2.7e-6, 6.74, 1.66e-3, 5.49e-7),
        (20e-3, 5.3e-6, 215.0, 0.092, 1.05e-4),
        (40e-3, 1.09e-5, 6870.0, 6.76, 0.04),
    ];
    println!(
        "{:<9} {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "interval", "BER", "paper", "ECC-5", "paper", "ECC-6", "paper", "SuDoku-Z", "paper"
    );
    for (interval, p_ber, p5, p6, pz) in paper {
        let ber = thermal.ber(interval);
        let params = Params {
            ber,
            scrub: ScrubSchedule::new(interval),
            ..Params::paper_default()
        };
        println!(
            "{:<9} {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
            format!("{:.0} ms", interval * 1e3),
            sci(ber),
            sci(p_ber),
            sci(ecc_fit(&params, 5)),
            sci(p5),
            sci(ecc_fit(&params, 6)),
            sci(p6),
            sci(z_fit_paper_style(&params)),
            sci(pz),
        );
    }
    println!("\nshape check: ECC-5 misses 1 FIT even at 10 ms; SuDoku-Z holds it even at 40 ms.");
}
