//! Table X: impact of thermal stability ∆ — ECC-6 vs SuDoku FIT and the
//! relative strength of SuDoku.

use sudoku_bench::{header, ratio, sci};
use sudoku_fault::ThermalModel;
use sudoku_reliability::analytic::{ecc_fit, z_fit_paper_style, Params};

fn main() {
    header("Table X — impact of ∆: ECC-6 vs SuDoku");
    let paper = [
        (35.0, 0.092, 1.05e-4, "874x"),
        (34.0, 4.63, 1.15e-2, "402x"),
        (33.0, 1240.0, 8.0, "155x"),
    ];
    println!(
        "{:<6} {:>11} {:>9} | {:>11} {:>9} | {:>10} {:>8} | {:>12}",
        "∆", "ECC-6", "paper", "SuDoku", "paper", "strength", "paper", "SuDoku+ECC2"
    );
    for (delta, p6, pz, ps) in paper {
        let ber = ThermalModel::new(delta, 0.10).ber(20e-3);
        let params = Params::paper_default().with_ber(ber);
        let e6 = ecc_fit(&params, 6);
        let z = z_fit_paper_style(&params);
        let z2 = z_fit_paper_style(&params.with_line_ecc(2));
        println!(
            "{delta:<6} {:>11} {:>9} | {:>11} {:>9} | {:>10} {:>8} | {:>12}",
            sci(e6),
            sci(p6),
            sci(z),
            sci(pz),
            ratio(e6, z),
            ps,
            sci(z2),
        );
    }
    println!(
        "\nSuDoku dominates ECC-6 at ∆ = 35 and 34. At ∆ = 33 our failure model\n\
         — which, unlike the paper's, charges SuDoku-Y for pairs of 3+-fault\n\
         lines and >6-mismatch aborts — loses the edge; the paper's own remedy\n\
         (§VII-G: replace ECC-1 with ECC-2) restores it, as the last column\n\
         shows. See EXPERIMENTS.md."
    );
}
