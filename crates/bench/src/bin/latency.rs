//! Correction-latency budget (paper §III-D, §IV-B, §VII-B): what each
//! recovery level costs and how often it fires.

use sudoku_bench::header;
use sudoku_core::{CacheStats, STT_READ_NS};
use sudoku_reliability::analytic::{x_cache_fail, y_cache_fail, Params};

fn main() {
    header("Correction latency budget (paper §VII-B)");
    let params = Params::paper_default();
    let group = params.group as f64;
    let raid4_ns = group * STT_READ_NS;
    println!("per-event costs:");
    println!("  CRC+ECC syndrome check: 1 cycle (0.31 ns), every access");
    println!("  ECC-1 repair:           1 cycle, table lookup");
    println!(
        "  RAID-4 reconstruction:  {} reads = {:.1} µs (paper: ~4 µs/repair)",
        params.group,
        raid4_ns / 1e3
    );
    println!("  SDR trial:              flip + ECC-1 + CRC ≈ 4 cycles, ≤6 trials/line");
    println!(
        "  SuDoku-Z recovery:      ≤{} group scans ≈ {:.0} µs (paper: 80 µs)",
        16,
        16.0 * raid4_ns / 1e3
    );

    println!("\nevent frequencies at BER 5.3e-6 / 20 ms:");
    let multi_per_interval = 4.0;
    let repair_time = multi_per_interval * raid4_ns;
    println!(
        "  multi-bit lines: ~{multi_per_interval}/interval → {:.1} µs of RAID-4 per 20 ms\n\
         → worst-case demand-latency impact {:.3}% (paper: <0.08%)",
        repair_time / 1e3,
        repair_time / (20e6) * 100.0
    );
    println!(
        "  SuDoku-Y invocations: every {:.1} s (paper: every 3.71 s)",
        params.scrub.interval_s() / x_cache_fail(&params)
    );
    println!(
        "  SuDoku-Z invocations: every {:.1} h (paper: every 3.9 h)",
        params.scrub.interval_s() / y_cache_fail(&params) / 3600.0
    );

    // Sanity-check the CacheStats accounting against the same arithmetic.
    let stats = CacheStats {
        group_scans: 1,
        raid4_repairs: 1,
        ..CacheStats::default()
    };
    println!(
        "\nCacheStats::recovery_time_ns for one RAID-4 repair: {:.0} ns",
        stats.recovery_time_ns(params.group)
    );
}
