//! Escalation-chain forensics: replays a recovery-event log (JSONL, as
//! written by any campaign bin's `--events` flag) and prints the per-line
//! escalation chains plus the aggregate breakdown — which ladder each
//! repaired line actually climbed.
//!
//! ```text
//! # replay a previously captured log
//! cargo run --release -p sudoku-bench --bin forensics -- --input events.jsonl
//!
//! # demo mode: run a seeded high-BER SuDoku-Z campaign and analyse it
//! cargo run --release -p sudoku-bench --bin forensics
//! cargo run --release -p sudoku-bench --bin forensics -- --events demo.jsonl
//! ```

use sudoku_bench::{header, Args};
use sudoku_core::Scheme;
use sudoku_fault::ScrubSchedule;
use sudoku_obs::forensics::{breakdown, chains, Chain};
use sudoku_obs::RecoveryEvent;
use sudoku_reliability::montecarlo::{run_interval_campaign_observed, McConfig, Observe};

fn input_path() -> Option<String> {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--input")
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

fn load_events(path: &str) -> Vec<RecoveryEvent> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read event log {path}: {e}"));
    let mut events = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match RecoveryEvent::from_jsonl(line) {
            Some(e) => events.push(e),
            None => eprintln!("warning: {path}:{} is not a recovery event, skipped", n + 1),
        }
    }
    events
}

/// Demo campaign: small SuDoku-Z cache at an elevated BER — high enough
/// that SDR resurrections, Hash-2 cross-resolutions, and the odd DUE all
/// appear within a few hundred intervals.
fn demo_events(args: &Args) -> Vec<RecoveryEvent> {
    let cfg = McConfig {
        scheme: Scheme::Z,
        lines: 1 << 12,
        group: 64,
        ber: 2e-4,
        trials: args.trials,
        seed: args.seed,
        threads: args.threads,
        scrub: ScrubSchedule::paper_default(),
    };
    println!(
        "demo campaign: SuDoku-Z, {} lines, group {}, BER {:.0e}, {} intervals, seed {}",
        cfg.lines, cfg.group, cfg.ber, cfg.trials, cfg.seed
    );
    let (summary, _, telemetry) = run_interval_campaign_observed(&cfg, Observe::Unbounded);
    println!(
        "campaign: raid4 {}, sdr {}, hash2 {}, due intervals {}\n",
        summary.raid4_repairs, summary.sdr_repairs, summary.hash2_repairs, summary.due_intervals
    );
    args.write_telemetry(None, &telemetry);
    telemetry.events
}

fn print_exemplar(title: &str, chain: Option<&&Chain>) {
    match chain {
        Some(c) => println!(
            "{title}:\n  interval {:>4}, line {:>6}: {}",
            c.interval,
            c.line,
            c.signature()
        ),
        None => println!("{title}: none in this log"),
    }
}

fn main() {
    let args = Args::parse(200, 0);
    header("Recovery forensics — escalation chains from the event log");
    let events = match input_path() {
        Some(path) => {
            let events = load_events(&path);
            println!("loaded {} recovery events from {path}\n", events.len());
            events
        }
        None => demo_events(&args),
    };
    if events.is_empty() {
        println!("event log is empty — nothing to analyse.");
        return;
    }

    let chains = chains(&events);
    let report = breakdown(&chains);
    println!("{}", report.render());

    // The acceptance exemplars: the full ladder, reconstructed end to end.
    let sdr = chains
        .iter()
        .filter(|c| c.resolved_by_sdr() && c.is_complete())
        .max_by_key(|c| c.sdr_trials());
    print_exemplar("exemplar SDR resurrection (most flip trials)", sdr.as_ref());
    let hash2 = chains
        .iter()
        .filter(|c| c.resolved_via_hash2() && c.is_complete())
        .max_by_key(|c| c.events.len());
    print_exemplar("exemplar Hash-2 cross-resolution", hash2.as_ref());
    let due = chains
        .iter()
        .filter(|c| c.is_due())
        .max_by_key(|c| c.events.len());
    print_exemplar("exemplar DUE (ladder exhausted)", due.as_ref());
}
