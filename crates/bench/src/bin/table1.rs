//! Table I: thermal stability (∆) vs bit error rate over a 20 ms window.

use sudoku_bench::{header, sci};
use sudoku_fault::ThermalModel;

fn main() {
    header("Table I — Thermal stability vs error rate (20 ms period)");
    println!(
        "{:<28} {:>14} {:>14}",
        "Mean thermal stability (∆)", "60 (32nm)", "35 (22nm)"
    );
    let paper = [2.7e-12, 5.3e-6];
    let ours: Vec<f64> = [60.0, 35.0]
        .iter()
        .map(|&d| ThermalModel::new(d, 0.10).ber(20e-3))
        .collect();
    println!(
        "{:<28} {:>14} {:>14}",
        "BER, paper",
        sci(paper[0]),
        sci(paper[1])
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "BER, reproduced",
        sci(ours[0]),
        sci(ours[1])
    );
    println!();
    for (d, sigma) in [(35.0, 0.0), (35.0, 0.10)] {
        let m = ThermalModel::new(d, sigma);
        println!(
            "∆={d}, σ={:.0}%: mean cell MTTF = {}",
            sigma * 100.0,
            human_time(m.mean_cell_mttf_s())
        );
    }
    let m = ThermalModel::paper_default();
    let bits = 64u64 * 1024 * 1024 * 8;
    println!(
        "expected failing bits per 20 ms in a 64 MB cache: {:.0} (paper: 2880)",
        m.expected_failures(bits, 20e-3)
    );
}

fn human_time(secs: f64) -> String {
    if secs > 86_400.0 {
        format!("{:.1} days", secs / 86_400.0)
    } else if secs > 3_600.0 {
        format!("{:.1} hours", secs / 3_600.0)
    } else {
        format!("{secs:.1} s")
    }
}
