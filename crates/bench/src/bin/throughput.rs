//! Campaign-throughput benchmark: runs the paper-default interval campaign
//! and reports trials/sec plus kernel micro-timings.
//!
//! ```text
//! cargo run --release -p sudoku-bench --bin throughput -- --trials 64
//! cargo run --release -p sudoku-bench --bin throughput -- --trials 64 --json
//! cargo run --release -p sudoku-bench --bin throughput -- --json --check-baseline
//! cargo run --release -p sudoku-bench --bin throughput -- \
//!     --events events.jsonl --metrics-json telemetry.json
//! ```
//!
//! `--json` additionally writes `BENCH_kernels.json` to the current
//! directory, a machine-readable record for tracking kernel performance
//! across revisions; with `--check-baseline`, the run first reads the
//! committed `BENCH_kernels.json` and exits non-zero if the new
//! trials/sec regressed more than 20 % against it.
//!
//! The headline number always comes from a telemetry-disabled campaign, so
//! it is comparable across revisions; `--events`/`--metrics-json` trigger
//! an *additional* observed campaign whose event log and histogram/phase
//! metrics go to the given paths.

use std::hint::black_box;
use std::time::Instant;
use sudoku_bench::{flag, header, json_f64_field, Args};
use sudoku_codes::{CrcEngine, LineData, CRC31};
use sudoku_core::Scheme;
use sudoku_reliability::montecarlo::{
    run_interval_campaign_observed, run_interval_campaign_timed, McConfig,
};

/// Nanoseconds per `checksum_line` call on a dense pseudo-random line.
fn measure_ns_per_crc() -> f64 {
    let engine = CrcEngine::new(CRC31);
    let mut words = [0u64; 8];
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for w in words.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *w = x;
    }
    let line = LineData::from_words(words);
    const ITERS: u32 = 200_000;
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ITERS {
        acc ^= engine.checksum_line(black_box(&line));
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let args = Args::parse(64, 0);
    header("Campaign throughput (paper-default config)");
    let baseline = flag("--check-baseline")
        .then(|| std::fs::read_to_string("BENCH_kernels.json").ok())
        .flatten()
        .and_then(|text| json_f64_field(&text, "trials_per_sec"));

    let cfg = McConfig::paper_default(Scheme::Z, args.trials, args.seed);
    let (summary, report) = run_interval_campaign_timed(&cfg);
    let elapsed = summary.trials as f64 / report.trials_per_sec;
    println!(
        "trials = {}, elapsed = {:.3} s, trials/sec = {:.2}",
        summary.trials, elapsed, report.trials_per_sec
    );
    println!(
        "due_intervals = {}, faulty_bits = {}, multibit_lines = {}",
        summary.due_intervals, summary.faulty_bits, summary.multibit_lines
    );
    report.println("campaign");

    let ns_per_crc = measure_ns_per_crc();
    // Campaign-amortized cost per scrubbed line (injection + scrub + reset).
    let ns_per_scrub_line = elapsed * 1e9 / report.lines_scrubbed.max(1) as f64;
    println!("ns/CRC (dense line) = {ns_per_crc:.2}, ns/scrubbed line = {ns_per_scrub_line:.2}");

    // An extra, observed campaign when telemetry outputs were requested —
    // the headline above stays untouched by recording costs.
    let observed = args.observe().enabled().then(|| {
        let (obs_summary, obs_report, telemetry) =
            run_interval_campaign_observed(&cfg, args.observe());
        assert_eq!(obs_summary, summary, "telemetry must not perturb results");
        println!("\nobserved re-run (telemetry on):");
        obs_report.println("observed");
        println!("{}", telemetry.phases.render());
        args.write_telemetry(None, &telemetry);
        telemetry
    });

    if flag("--json") {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "interval_campaign_paper_default")
            .field_f64("trials_per_sec", report.trials_per_sec)
            .field_f64("ns_per_crc", ns_per_crc)
            .field_f64("ns_per_scrub_line", ns_per_scrub_line)
            .field_u64("seed", args.seed)
            .field_str("git_rev", &git_rev())
            .field_raw("campaign", &report.to_json());
        if let Some(telemetry) = &observed {
            obj.field_raw("phases", &telemetry.phases.to_json());
        }
        let json = obj.finish() + "\n";
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json");
    }

    if flag("--check-baseline") {
        match baseline {
            Some(base) => {
                let ratio = report.trials_per_sec / base;
                println!(
                    "baseline check: {:.2} vs committed {:.2} trials/sec ({:+.1}%)",
                    report.trials_per_sec,
                    base,
                    (ratio - 1.0) * 100.0
                );
                if ratio < 0.8 {
                    eprintln!("FAIL: throughput regressed more than 20% vs baseline");
                    std::process::exit(1);
                }
            }
            None => println!("baseline check: no committed BENCH_kernels.json, skipping"),
        }
    }
}
