//! Campaign-throughput benchmark: runs the paper-default interval campaign
//! and reports trials/sec plus kernel micro-timings.
//!
//! ```text
//! cargo run --release -p sudoku-bench --bin throughput -- --trials 64
//! cargo run --release -p sudoku-bench --bin throughput -- --trials 64 --json
//! ```
//!
//! `--json` additionally writes `BENCH_kernels.json` to the current
//! directory, a machine-readable record for tracking kernel performance
//! across revisions.

use std::hint::black_box;
use std::time::Instant;
use sudoku_bench::{flag, header, Args};
use sudoku_codes::{CrcEngine, LineData, CRC31};
use sudoku_core::Scheme;
use sudoku_reliability::montecarlo::{run_interval_campaign_timed, McConfig};

/// Nanoseconds per `checksum_line` call on a dense pseudo-random line.
fn measure_ns_per_crc() -> f64 {
    let engine = CrcEngine::new(CRC31);
    let mut words = [0u64; 8];
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for w in words.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *w = x;
    }
    let line = LineData::from_words(words);
    const ITERS: u32 = 200_000;
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ITERS {
        acc ^= engine.checksum_line(black_box(&line));
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let args = Args::parse(64, 0);
    header("Campaign throughput (paper-default config)");
    let cfg = McConfig::paper_default(Scheme::Z, args.trials, args.seed);
    let (summary, report) = run_interval_campaign_timed(&cfg);
    let elapsed = summary.trials as f64 / report.trials_per_sec;
    println!(
        "trials = {}, elapsed = {:.3} s, trials/sec = {:.2}",
        summary.trials, elapsed, report.trials_per_sec
    );
    println!(
        "due_intervals = {}, faulty_bits = {}, multibit_lines = {}",
        summary.due_intervals, summary.faulty_bits, summary.multibit_lines
    );
    report.println("campaign");

    let ns_per_crc = measure_ns_per_crc();
    // Campaign-amortized cost per scrubbed line (injection + scrub + reset).
    let ns_per_scrub_line = elapsed * 1e9 / report.lines_scrubbed.max(1) as f64;
    println!("ns/CRC (dense line) = {ns_per_crc:.2}, ns/scrubbed line = {ns_per_scrub_line:.2}");

    if flag("--json") {
        let json = format!(
            "{{\n  \"name\": \"interval_campaign_paper_default\",\n  \
             \"trials_per_sec\": {:.3},\n  \"ns_per_crc\": {:.3},\n  \
             \"ns_per_scrub_line\": {:.3},\n  \"seed\": {},\n  \
             \"git_rev\": \"{}\"\n}}\n",
            report.trials_per_sec,
            ns_per_crc,
            ns_per_scrub_line,
            args.seed,
            git_rev()
        );
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json");
    }
}
