//! Core-count scaling of the Figure-8 result: SuDoku's overhead must stay
//! flat as more cores share the LLC (scrub bandwidth and PLT traffic are
//! per-bank properties, not per-core ones).

use sudoku_bench::{header, Args};
use sudoku_sim::{compare_workload, geo_mean, paper_workloads, RunnerConfig, SystemConfig};

fn main() {
    let args = Args::parse(0, 40_000);
    header("Figure 8 scaling — SuDoku-Z slowdown vs core count");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "cores", "geomean time×", "geomean EDP×", "avg hit rate"
    );
    for cores in [2u32, 4, 8, 16] {
        let mut cfg = RunnerConfig::paper_default(args.accesses, args.seed);
        cfg.system = SystemConfig {
            cores,
            ..cfg.system
        };
        let mut t = Vec::new();
        let mut e = Vec::new();
        let mut hits = 0.0;
        let workloads = paper_workloads(cores);
        let n = 8.min(workloads.len());
        for w in workloads.iter().take(n) {
            let c = compare_workload(&cfg, w);
            t.push(c.time_ratio());
            e.push(c.edp_ratio());
            hits += c.ideal.metrics.hit_rate();
        }
        println!(
            "{cores:>6} {:>14.5} {:>14.5} {:>12.3}",
            geo_mean(t),
            geo_mean(e),
            hits / n as f64
        );
    }
    println!(
        "\nthe slowdown stays in the same sub-percent band from 2 to 16 cores:\n\
         the syndrome cycle is per-access, scrub occupancy is per-bank, and\n\
         the PLT keeps pace with the array by construction (§VII-I) — none\n\
         of SuDoku's costs compound with core count."
    );
}
