//! Service-layer load generator: concurrent demand traffic against the
//! sharded cache service with the scrub daemon running and faults being
//! injected — the paper's "recovery coexists with demand traffic"
//! operating point (§VII-B), measured end to end.
//!
//! ```text
//! cargo run --release -p sudoku-bench --bin loadgen -- --shards 4
//! cargo run --release -p sudoku-bench --bin loadgen -- \
//!     --shards 4 --clients 4 --requests 20000 --ber 1e-4 --json
//! cargo run --release -p sudoku-bench --bin loadgen -- --rate 50000 --theta 0.9
//! cargo run --release -p sudoku-bench --bin loadgen -- \
//!     --telemetry-port 9187 --flight-recorder flight.jsonl --rate 20000
//! ```
//!
//! `--json` additionally writes `BENCH_svc.json`, the service-layer
//! counterpart of `BENCH_kernels.json`: achieved req/sec, read-latency
//! quantiles, shard count, seed, and git revision.
//!
//! `--telemetry-port <p>` serves `GET /metrics` (Prometheus text),
//! `/healthz`, and `/snapshot.json` on `127.0.0.1:<p>` for the duration of
//! the run (`curl` it mid-run); `--flight-recorder <path>` additionally
//! streams one telemetry snapshot per `--sample-ms` interval to `<path>`
//! as JSONL. Either flag enables the sampler thread.
//!
//! The process exits non-zero if any read returned silently corrupted
//! data (SDC) — the one outcome the SuDoku ladder must never allow — so
//! CI can gate on it directly.
//!
//! `--check-baseline` additionally reads the committed `BENCH_svc.json`
//! *before* the run and fails (exit 1) if achieved req/sec regresses more
//! than 20% below the baseline's — the CI throughput gate for the demand
//! path. The baseline's pre-PR figure is carried forward into the freshly
//! written JSON as `req_per_sec_pre_pr`. A baseline stamped by a
//! different git revision than HEAD only warns: the gate still runs, but
//! the figures are flagged as possibly incomparable.
//!
//! `--alerts <path>` streams the audit plane's structured alerts to
//! `<path>` as JSONL (the same records `/alerts.json` serves).

use std::time::Duration;
use sudoku_bench::{flag, git_rev, header, json_f64_field, warn_baseline_rev};
use sudoku_core::{Scheme, SudokuConfig};
use sudoku_fault::StuckBitMap;
use sudoku_svc::{
    AddrMode, AuditConfig, DegradedConfig, LoadgenConfig, Service, ServiceConfig, TelemetryConfig,
};

struct Opts {
    shards: usize,
    clients: usize,
    requests: u64,
    rate: u64,
    lines: u64,
    ber: f64,
    theta: f64,
    write_frac: f64,
    tick_ms: u64,
    queue: usize,
    seed: u64,
    telemetry_port: Option<u16>,
    flight_recorder: Option<String>,
    sample_ms: u64,
    alerts: Option<String>,
}

impl Opts {
    fn parse() -> Opts {
        let argv: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<&str> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1))
                .map(String::as_str)
        };
        let u =
            |flag: &str, default: u64| get(flag).and_then(|v| v.parse().ok()).unwrap_or(default);
        let f =
            |flag: &str, default: f64| get(flag).and_then(|v| v.parse().ok()).unwrap_or(default);
        Opts {
            shards: u("--shards", 4) as usize,
            clients: u("--clients", 4) as usize,
            requests: u("--requests", 10_000),
            rate: u("--rate", 0),
            lines: u("--lines", 1 << 14),
            ber: f("--ber", 1e-4),
            theta: f("--theta", 0.8),
            write_frac: f("--write-frac", 0.3),
            tick_ms: u("--tick-ms", 1),
            queue: u("--queue", 64) as usize,
            seed: u("--seed", 42),
            telemetry_port: get("--telemetry-port").and_then(|v| v.parse().ok()),
            flight_recorder: get("--flight-recorder").map(String::from),
            sample_ms: u("--sample-ms", 50),
            alerts: get("--alerts").map(String::from),
        }
    }

    /// The telemetry plane is on when either the scrape endpoint or the
    /// flight-recorder JSONL was requested.
    fn telemetry(&self) -> Option<TelemetryConfig> {
        if self.telemetry_port.is_none() && self.flight_recorder.is_none() {
            return None;
        }
        Some(TelemetryConfig {
            sample_every: Duration::from_millis(self.sample_ms.max(1)),
            flight_recorder_cap: 256,
            jsonl_path: self.flight_recorder.as_ref().map(Into::into),
            port: self.telemetry_port,
        })
    }
}

fn main() {
    let opts = Opts::parse();
    header("Service load generator (sharded cache + scrub daemon)");
    // Read the committed baseline up front: `--json` overwrites the file.
    let baseline = std::fs::read_to_string("BENCH_svc.json").ok();
    let baseline_rps = baseline
        .as_deref()
        .and_then(|t| json_f64_field(t, "req_per_sec"));
    let pre_pr_rps = baseline
        .as_deref()
        .and_then(|t| json_f64_field(t, "req_per_sec_pre_pr"))
        .or(baseline_rps);
    if flag("--check-baseline") && baseline_rps.is_none() {
        eprintln!(
            "warning: --check-baseline set but BENCH_svc.json has no req_per_sec; gate skipped"
        );
    }
    println!(
        "shards = {}, clients = {}, requests/client = {}, lines = {}, ber = {:.2e}, \
         zipf theta = {}, seed = {}",
        opts.shards, opts.clients, opts.requests, opts.lines, opts.ber, opts.theta, opts.seed
    );

    let service_config = ServiceConfig {
        cache: SudokuConfig::small(Scheme::Z, opts.lines, 16),
        n_shards: opts.shards,
        queue_depth: opts.queue,
        scrub_every: Some(Duration::from_millis(opts.tick_ms.max(1))),
        ber: opts.ber,
        seed: opts.seed,
        stuck: StuckBitMap::new(),
        degraded: DegradedConfig::default(),
        telemetry: opts.telemetry(),
        audit: AuditConfig {
            alerts_jsonl: opts.alerts.as_ref().map(Into::into),
            ..AuditConfig::default()
        },
    };
    let load_config = LoadgenConfig {
        workers: opts.clients,
        requests_per_worker: opts.requests,
        target_rps: opts.rate,
        write_frac: opts.write_frac,
        mode: AddrMode::Zipf { theta: opts.theta },
        seed: opts.seed,
    };
    let service = Service::start(service_config).expect("valid service config");
    if let Some(addr) = service.telemetry_addr() {
        println!("telemetry: GET http://{addr}/metrics | /healthz | /snapshot.json");
    }
    if let Some(path) = &opts.flight_recorder {
        println!(
            "flight recorder: streaming snapshots to {path} every {} ms",
            opts.sample_ms
        );
    }
    let report = sudoku_svc::loadgen::run(service, &load_config);

    let lat = &report.service.hists.read_latency_ns;
    println!(
        "requests = {} ({} reads, {} writes), elapsed = {:.3} s, req/sec = {:.0}",
        report.requests,
        report.reads,
        report.writes,
        report.elapsed.as_secs_f64(),
        report.req_per_sec
    );
    println!(
        "read latency: p50 = {} ns, p99 = {} ns, p999 = {} ns",
        lat.quantile(0.50),
        lat.quantile(0.99),
        lat.quantile(0.999)
    );
    println!(
        "scrub: {} ticks, {} lines injected, {} escalations ({} lines), {} unresolved",
        report.service.scrub_ticks,
        report.service.injected_lines,
        report.service.escalations,
        report.service.escalated_lines,
        report.service.unresolved_lines
    );
    println!(
        "integrity: sdc = {}, due = {} (demand) + {} (scrub)",
        report.sdc, report.due, report.service.unresolved_lines
    );
    println!(
        "audit: {} alerts ({} critical), {} scrub-deadline misses",
        report.service.alerts, report.service.critical_alerts, report.service.scrub_deadline_misses
    );

    if flag("--json") {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "svc_loadgen")
            .field_u64("shards", opts.shards as u64)
            .field_u64("clients", opts.clients as u64)
            .field_u64("requests", report.requests)
            .field_f64("req_per_sec", report.req_per_sec)
            .field_f64(
                "req_per_sec_pre_pr",
                pre_pr_rps.unwrap_or(report.req_per_sec),
            )
            .field_u64("p50_read_ns", lat.quantile(0.50))
            .field_u64("p99_read_ns", lat.quantile(0.99))
            .field_u64("p999_read_ns", lat.quantile(0.999))
            .field_u64("sdc", report.sdc)
            .field_u64("due", report.due)
            .field_u64("shed", report.shed)
            .field_u64("scrub_ticks", report.service.scrub_ticks)
            .field_u64("injected_lines", report.service.injected_lines)
            .field_u64("escalations", report.service.escalations)
            .field_u64("unresolved_lines", report.service.unresolved_lines)
            .field_u64("alerts", report.service.alerts)
            .field_u64("critical_alerts", report.service.critical_alerts)
            .field_u64(
                "scrub_deadline_misses",
                report.service.scrub_deadline_misses,
            )
            .field_u64("seed", opts.seed)
            .field_str("git_rev", &git_rev());
        std::fs::write("BENCH_svc.json", obj.finish() + "\n").expect("write BENCH_svc.json");
        println!("wrote BENCH_svc.json");
    }

    if report.sdc > 0 {
        eprintln!("FAIL: {} silently corrupted reads", report.sdc);
        std::process::exit(1);
    }
    if flag("--check-baseline") {
        if let Some(text) = baseline.as_deref() {
            warn_baseline_rev(text, "BENCH_svc.json baseline");
        }
        if let Some(base) = baseline_rps {
            let floor = base * 0.8;
            if report.req_per_sec < floor {
                eprintln!(
                    "FAIL: {:.0} req/sec is a >20% regression from the committed \
                     baseline {base:.0} (floor {floor:.0})",
                    report.req_per_sec
                );
                std::process::exit(1);
            }
            println!(
                "baseline gate: {:.0} req/sec vs committed {base:.0} ({:+.1}%) — ok",
                report.req_per_sec,
                (report.req_per_sec / base - 1.0) * 100.0
            );
        }
    }
}
