//! Table IV, functionally: probability that a low-voltage SRAM cache with
//! *persistent* stuck-at faults is unrecoverable under SuDoku, measured by
//! building real `VminCache`s across random fault maps (paper §VI).
//!
//! The paper's analytic Table IV row for SuDoku is underived (see
//! EXPERIMENTS.md); this experiment answers the question the table asks —
//! "at which persistent-fault density does SuDoku keep an SRAM cache
//! alive?" — with the implementation itself. Note that a stuck cell whose
//! value agrees with the stored bit is harmless, so the *effective* fault
//! rate is about half the stuck-cell rate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sudoku_bench::{header, sci, Args};
use sudoku_core::{Scheme, SudokuConfig, VminCache};
use sudoku_fault::StuckBitMap;

fn sweep(lines: u64, group: u32, trials: u64, seed: u64) {
    println!(
        "\n{} lines, groups of {group}, {trials} trials per point; P(unrecoverable):",
        lines
    );
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "stuck BER", "SuDoku-X", "SuDoku-Y", "SuDoku-Z"
    );
    for ber in [3e-5f64, 1e-4, 3e-4, 1e-3] {
        let mut row = Vec::new();
        for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
            let mut failures = 0u64;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed + t * 1000 + ber.to_bits() % 997);
                let stuck = StuckBitMap::random(&mut rng, lines, ber);
                let mut cache = VminCache::new(SudokuConfig::small(scheme, lines, group), stuck)
                    .expect("valid configuration");
                if !cache.is_recoverable() {
                    failures += 1;
                }
            }
            row.push(failures as f64 / trials as f64);
        }
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            sci(ber),
            sci(row[0]),
            sci(row[1]),
            sci(row[2])
        );
    }
}

fn main() {
    let args = Args::parse(20, 0);
    header("Table IV (functional) — SuDoku on persistently faulty SRAM");
    // Small groups: casualties per group stay within SDR's six-mismatch
    // budget for much higher densities.
    sweep(4096, 64, args.trials, args.seed);
    // The paper's 512-line groups at minimum Z-capable scale: collision
    // density per group is 8x higher, so the cliff arrives much earlier.
    sweep(512 * 512, 512, (args.trials / 4).max(2), args.seed ^ 0xBEEF);
    println!(
        "\nreading: SuDoku-Z keeps an SRAM array recoverable at persistent\n\
         densities ~10x beyond SuDoku-X, without testing or remapping. The\n\
         survivable density scales inversely with the RAID-Group size — small\n\
         groups are the knob for V_min operation (cf. the group-size ablation).\n\
         At the paper's Table-IV point (1e-3, 512-line groups) every\n\
         parity-group scheme saturates; §VII-G's ECC-2-per-line variant\n\
         (Params::with_line_ecc) is the analytic answer there."
    );
}
