//! Figure 9: system energy-delay product of SuDoku-Z normalized to the
//! error-free baseline, per workload.

//! `--metrics-json <path>` exports every workload's full data point
//! (timing counters, energy breakdown, Figure 8/9 ratios) as JSON.

use sudoku_bench::{header, Args};
use sudoku_sim::{compare_workload, geo_mean, paper_workloads, RunnerConfig};

fn main() {
    let args = Args::parse(0, 100_000);
    header("Figure 9 — system EDP of SuDoku-Z normalized to error-free");
    let cfg = RunnerConfig::paper_default(args.accesses, args.seed);
    let mut ratios = Vec::new();
    let mut points = Vec::new();
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "workload", "norm.EDP", "PLT energy", "codec", "scrub"
    );
    for w in paper_workloads(cfg.system.cores) {
        let c = compare_workload(&cfg, &w);
        let r = c.edp_ratio();
        ratios.push(r);
        println!(
            "{:<16} {:>10.5} {:>10.2}uJ {:>10.2}uJ {:>10.2}uJ",
            c.name,
            r,
            c.sudoku.energy.plt_j * 1e6,
            c.sudoku.energy.codec_j * 1e6,
            c.sudoku.energy.scrub_j * 1e6,
        );
        points.push(c.to_json());
    }
    let gm = geo_mean(ratios.iter().copied());
    println!(
        "\ngeometric-mean EDP increase: {:.3}% (paper Figure 9: ≤0.4%)",
        (gm - 1.0) * 100.0
    );
    if let Some(path) = &args.metrics_json {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "fig9")
            .field_f64("geomean_edp_ratio", gm)
            .field_raw("workloads", &format!("[{}]", points.join(",")));
        std::fs::write(path, obj.finish() + "\n").expect("write --metrics-json output");
        println!("wrote per-workload metrics to {path}");
    }
}
