//! Ablation of the pair-flip SDR extension (beyond the paper): how much of
//! SuDoku-Z's advantage can a *single-hash* design recover by spending
//! O(mismatch²) extra flip trials?

use sudoku_bench::{flag, header, sci, Args};
use sudoku_core::Scheme;
use sudoku_reliability::montecarlo::{
    run_group_campaign_observed, GroupScenario, ThroughputReport,
};

fn main() {
    let args = Args::parse(4000, 0);
    header("Ablation — pair-flip SDR extension vs the paper's design");
    println!(
        "{:<30} {:>12} {:>14} {:>12}",
        "scenario", "Y (paper)", "Y + pair-SDR", "Z (paper)"
    );
    let mut reports: Vec<(String, ThroughputReport)> = Vec::new();
    let cases: Vec<(&str, Vec<u32>)> = vec![
        ("two lines × 2 faults", vec![2, 2]),
        ("two lines × 3 faults", vec![3, 3]),
        ("3-fault + 2-fault", vec![3, 2]),
        ("three lines × 2 faults", vec![2, 2, 2]),
        ("two lines × 4 faults", vec![4, 4]),
    ];
    for (case, (label, counts)) in cases.into_iter().enumerate() {
        let mut rates = Vec::new();
        for (scheme, pair) in [(Scheme::Y, false), (Scheme::Y, true), (Scheme::Z, false)] {
            let scenario = GroupScenario {
                scheme,
                group: 128,
                fault_counts: counts.clone(),
                pair_sdr: pair,
            };
            let (s, report, telemetry) = run_group_campaign_observed(
                &scenario,
                args.trials,
                args.seed,
                args.threads,
                args.observe(),
            );
            let slug = format!(
                "pair_sdr_c{case}_{}{}",
                scheme.to_string().to_lowercase(),
                if pair { "_pair" } else { "" }
            );
            args.write_telemetry(Some(&slug), &telemetry);
            rates.push(s.success_rate());
            reports.push((
                format!("{label} / {scheme}{}", if pair { "+pair" } else { "" }),
                report,
            ));
        }
        println!(
            "{label:<30} {:>12} {:>14} {:>12}",
            sci(rates[0]),
            sci(rates[1]),
            sci(rates[2])
        );
    }
    println!(
        "\npair-SDR lifts the single-hash design to Z-like success on 3-fault\n\
         pairs (two flips + ECC-1 reach t+2 faults) but still cannot fix\n\
         ≥4-fault pairs or fully-overlapping patterns — the second hash\n\
         remains the stronger and cheaper mechanism, as the paper chose."
    );
    println!("\ncampaign throughput:");
    for (label, report) in &reports {
        report.println(label);
    }

    if flag("--json") {
        sudoku_bench::write_bench_reports("ablation_pair_sdr", &reports);
    }
}
