//! Table II: FIT rate of a 64 MB cache under uniform per-line ECC-1 … ECC-6
//! at BER 5.3×10⁻⁶ per 20 ms scrub interval.

use sudoku_bench::{header, sci};
use sudoku_reliability::analytic::{ecc_cache_fail, ecc_fit, ecc_line_fail, Params};

fn main() {
    header("Table II — FIT of 64 MB cache vs ECC strength (BER 5.3e-6, 20 ms)");
    let params = Params::paper_default();
    let paper_line = [3.9e-6, 3.8e-9, 2.9e-12, 1.9e-15, 1e-18, 4.9e-22];
    let paper_cache = [9.8e-1, 4e-3, 3.1e-6, 2e-9, 1.1e-12, 5.1e-16];
    let paper_fit = [1e14, 7.2e11, 5.5e8, 3.5e5, 191.0, 0.092];
    println!(
        "{:<8} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "scheme", "P(line)", "paper", "P(cache)", "paper", "FIT", "paper"
    );
    for t in 1u32..=6 {
        let i = (t - 1) as usize;
        println!(
            "ECC-{t:<4} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
            sci(ecc_line_fail(&params, t)),
            sci(paper_line[i]),
            sci(ecc_cache_fail(&params, t)),
            sci(paper_cache[i]),
            sci(ecc_fit(&params, t)),
            sci(paper_fit[i]),
        );
    }
    println!("\n(only ECC-6 reaches the 1-FIT target, at 60 bits/line of storage)");
}
