//! Table XI: CPPC, RAID-6, and 2DP vs SuDoku, all provisioned with
//! SuDoku-equivalent resources (CRC-31 per line, 512-line groups).

use sudoku_bench::{header, sci};
use sudoku_reliability::analytic::{cppc_fit, raid6_fit, twodp_fit, z_fit_paper_style, Params};

fn main() {
    header("Table XI — CPPC / RAID-6 / 2DP vs SuDoku (FIT)");
    let params = Params::paper_default();
    let rows = [
        ("CPPC + CRC-31", cppc_fit(&params), 1.69e14),
        ("RAID-6 + CRC-31", raid6_fit(&params), 571e3),
        ("2DP ECC-1 + CRC-31", twodp_fit(&params), 2.8e8),
        ("SuDoku", z_fit_paper_style(&params), 1.05e-4),
    ];
    println!(
        "{:<22} {:>14} {:>14}",
        "scheme", "FIT (ours)", "FIT (paper)"
    );
    for (name, ours, paper) in rows {
        println!("{name:<22} {:>14} {:>14}", sci(ours), sci(paper));
    }
    let sudoku = z_fit_paper_style(&params);
    let best_baseline = raid6_fit(&params).min(twodp_fit(&params));
    println!(
        "\nSuDoku is {:.1e}x as strong as the best parity baseline\n\
         (paper claims \"at least 10^6 times\": both hold).",
        best_baseline / sudoku
    );
    println!(
        "notes: 2DP's vertical parity + ECC-1 is computationally SuDoku-Y on a\n\
         single hash, so its model coincides with Y; RAID-6 differs from the\n\
         paper's underived 5.7e5 — our model counts ≥3 multi-bit lines per group."
    );
}
