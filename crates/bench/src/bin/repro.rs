//! Umbrella harness: regenerates every table and figure in sequence by
//! spawning the individual experiment binaries (light default settings).
//!
//! `cargo run -p sudoku-bench --release --bin repro [-- --trials N --accesses N]`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "storage",
    "latency",
    "fig8",
    "fig9",
    "mttf",
    "sdr_cases",
    "table4_mc",
    "wer",
    "ablation_group",
    "ablation_schemes",
    "ablation_pair_sdr",
    "ecc2_sdr",
    "bursts",
    "plt_traffic",
    "fig8_cores",
    "baselines_mc",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        let status = Command::new(&path).args(&passthrough).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("experiment {exp} failed: {other:?}");
                failed.push(*exp);
            }
        }
    }
    if failed.is_empty() {
        println!(
            "\nall {} experiments regenerated successfully.",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
