//! Umbrella harness: regenerates every table and figure in sequence by
//! spawning the individual experiment binaries (light default settings).
//!
//! `cargo run -p sudoku-bench --release --bin repro [-- --trials N --accesses N]`
//!
//! Telemetry flags fan out: `--events <path>` / `--metrics-json <path>`
//! are rewritten per child (the experiment name spliced into the file
//! stem), so one invocation collects every campaign's event log.

use std::process::Command;
use sudoku_bench::labeled_path;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "storage",
    "latency",
    "fig8",
    "fig9",
    "mttf",
    "sdr_cases",
    "table4_mc",
    "wer",
    "ablation_group",
    "ablation_schemes",
    "ablation_pair_sdr",
    "ecc2_sdr",
    "bursts",
    "plt_traffic",
    "fig8_cores",
    "baselines_mc",
    "forensics",
];

/// Rewrites the value after each path-valued telemetry flag so children
/// don't overwrite each other's output files.
fn rewrite_paths(args: &[String], exp: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut label_next = false;
    for a in args {
        if label_next {
            out.push(labeled_path(a, exp));
            label_next = false;
        } else {
            label_next = a == "--events" || a == "--metrics-json";
            out.push(a.clone());
        }
    }
    out
}

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        let status = Command::new(&path)
            .args(rewrite_paths(&passthrough, exp))
            .status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("experiment {exp} failed: {other:?}");
                failed.push(*exp);
            }
        }
    }
    if failed.is_empty() {
        println!(
            "\nall {} experiments regenerated successfully.",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
