//! Functional Monte-Carlo of the Table XI baselines: the CPPC, RAID-6 and
//! uniform-ECC implementations are exercised with real injected faults at
//! an elevated BER, confirming the ordering the analytic Table XI reports.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sudoku_bench::{header, sci, Args};
use sudoku_codes::TOTAL_BITS;
use sudoku_core::baselines::{BaselineOutcome, CppcCache, EccOnlyCache, Raid6Cache};
use sudoku_core::Scheme;
use sudoku_fault::{choose_distinct, sample_binomial, FaultInjector, ScrubSchedule};
use sudoku_reliability::montecarlo::{run_interval_campaign_timed, McConfig};

const LINES: u64 = 1 << 12;
const GROUP: u32 = 64;
const BER: f64 = 2e-4;

fn inject_plan(seed: u64) -> Vec<(u64, Vec<usize>)> {
    let mut injector = FaultInjector::new(BER, seed);
    injector
        .cache_plan(LINES)
        .into_iter()
        .map(|lf| {
            let bits = choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64)
                .into_iter()
                .map(|b| b as usize)
                .collect();
            (lf.line, bits)
        })
        .collect()
}

fn main() {
    let args = Args::parse(300, 0);
    header("Table XI cross-check — functional Monte-Carlo of the baselines");
    let trials = args.trials;

    // CPPC: single global parity.
    let mut cppc_fail = 0u64;
    for t in 0..trials {
        let mut cache = CppcCache::new(LINES);
        for (line, bits) in inject_plan(args.seed + t) {
            for b in bits {
                cache.inject_fault(line, b);
            }
        }
        cppc_fail += (!cache.scrub().is_empty()) as u64;
    }

    // RAID-6: two parities per group.
    let mut raid6_fail = 0u64;
    for t in 0..trials {
        let mut cache = Raid6Cache::new(LINES, GROUP).expect("valid raid6 config");
        for (line, bits) in inject_plan(args.seed + t) {
            for b in bits {
                cache.inject_fault(line, b);
            }
        }
        raid6_fail += (!cache.scrub().is_empty()) as u64;
    }

    // Uniform ECC-2 per line (representative of the Table II ladder).
    let mut ecc2_fail = 0u64;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x55);
    for _ in 0..trials {
        let mut cache = EccOnlyCache::new(2, LINES);
        let n_bits = cache.stored_bits_per_line() as u64;
        let mut any_fail = false;
        // Inject per faulty line, mirroring the plan-based flow.
        let p_line = 1.0 - (1.0 - BER).powi(n_bits as i32);
        let faulty = sample_binomial(&mut rng, LINES, p_line);
        for line in choose_distinct(&mut rng, LINES, faulty) {
            let k = sudoku_fault::sample_binomial_at_least_one(&mut rng, n_bits, BER);
            for b in choose_distinct(&mut rng, n_bits, k) {
                cache.inject_fault(line, b as usize);
            }
            if cache.scrub_line(line) == BaselineOutcome::Uncorrectable {
                any_fail = true;
            }
        }
        ecc2_fail += any_fail as u64;
    }

    // SuDoku-Z via the standard campaign at the same scale.
    let (z, z_report) = run_interval_campaign_timed(&McConfig {
        scheme: Scheme::Z,
        lines: LINES,
        group: GROUP,
        ber: BER,
        trials,
        seed: args.seed,
        threads: args.threads,
        scrub: ScrubSchedule::paper_default(),
    });

    println!(
        "per-interval failure rates over {trials} trials at BER {} ({} lines, groups of {GROUP}):",
        sci(BER),
        LINES
    );
    println!(
        "  CPPC + CRC-31:    {}",
        sci(cppc_fail as f64 / trials as f64)
    );
    println!(
        "  ECC-2 per line:   {}",
        sci(ecc2_fail as f64 / trials as f64)
    );
    println!(
        "  RAID-6 + CRC-31:  {}",
        sci(raid6_fail as f64 / trials as f64)
    );
    println!("  SuDoku-Z:         {}", sci(z.due_rate()));
    println!("\nordering matches Table XI: CPPC ≫ uniform-ECC ≫ RAID-6 ≫ SuDoku.");
    z_report.println("SuDoku-Z campaign");
    if sudoku_bench::flag("--json") {
        sudoku_bench::write_bench_reports("baselines_mc", &[("sudoku_z".to_string(), z_report)]);
    }
}
