//! Monte-Carlo MTTF measurement: full-scale (64 MB, 2²⁰ lines) interval
//! campaigns driving the *real* correction engines, cross-validating the
//! analytic ladder of §III-F/§IV-E.

use sudoku_bench::{flag, header, sci, Args};
use sudoku_core::Scheme;
use sudoku_reliability::analytic::{x_cache_fail, x_mttf_seconds, Params};
use sudoku_reliability::montecarlo::{run_interval_campaign_observed, McConfig};

fn main() {
    let args = Args::parse(2000, 0);
    header("MTTF cross-validation — full-scale Monte-Carlo vs analytic");
    let params = Params::paper_default();

    // SuDoku-X at paper scale: DUE probability per interval is ~5e-3, so a
    // few thousand trials give a tight estimate.
    let cfg = McConfig::paper_default(Scheme::X, args.trials, args.seed);
    let (summary, report, tel_x) = run_interval_campaign_observed(&cfg, args.observe());
    args.write_telemetry(Some("mttf_x"), &tel_x);
    let (lo, hi) = summary.due_rate_ci();
    println!(
        "SuDoku-X, {} intervals at BER 5.3e-6 over 2^20 lines:",
        summary.trials
    );
    println!(
        "  faulty bits/interval: {:.0} (paper: ~2880)",
        summary.faulty_bits as f64 / summary.trials as f64
    );
    println!(
        "  multi-bit lines/interval: {:.2} (paper: ~4)",
        summary.multibit_lines as f64 / summary.trials as f64
    );
    println!(
        "  DUE rate/interval: {} (95% CI {} – {})",
        sci(summary.due_rate()),
        sci(lo),
        sci(hi)
    );
    println!(
        "  measured MTTF: {:.2} s | analytic: {:.2} s | paper: 3.71 s",
        summary.mttf_seconds(&cfg.scrub),
        x_mttf_seconds(&params)
    );
    println!(
        "  analytic DUE/interval for comparison: {}",
        sci(x_cache_fail(&params))
    );
    assert_eq!(summary.sdc_intervals, 0, "no SDC expected at these scales");
    report.println("X campaign");

    // SuDoku-Y at the same scale: the measured rate should drop by orders
    // of magnitude (most trials repair everything).
    let cfg_y = McConfig::paper_default(Scheme::Y, args.trials, args.seed ^ 0xABCD);
    let (sy, sy_report, tel_y) = run_interval_campaign_observed(&cfg_y, args.observe());
    args.write_telemetry(Some("mttf_y"), &tel_y);
    println!(
        "\nSuDoku-Y, {} intervals: DUE intervals {} (rate {}), SDR repairs {}",
        sy.trials,
        sy.due_intervals,
        sci(sy.due_rate()),
        sy.sdr_repairs
    );
    println!("  (paper: Y fails once per ~3.9 h = every ~700k intervals; expect 0 here)");
    sy_report.println("Y campaign");

    let cfg_z = McConfig::paper_default(Scheme::Z, args.trials / 2, args.seed ^ 0x1234);
    let (sz, sz_report, tel_z) = run_interval_campaign_observed(&cfg_z, args.observe());
    args.write_telemetry(Some("mttf_z"), &tel_z);
    println!(
        "\nSuDoku-Z, {} intervals: DUE intervals {} (expect 0; MTTF is ~10^12 h)",
        sz.trials, sz.due_intervals
    );
    sz_report.println("Z campaign");

    if flag("--json") {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "mttf_cross_validation")
            .field_raw("x_campaign", &report.to_json())
            .field_raw("y_campaign", &sy_report.to_json())
            .field_raw("z_campaign", &sz_report.to_json());
        if args.observe().enabled() {
            obj.field_raw("x_phases", &tel_x.phases.to_json())
                .field_raw("y_phases", &tel_y.phases.to_json())
                .field_raw("z_phases", &tel_z.phases.to_json());
        }
        std::fs::write("BENCH_mttf.json", obj.finish() + "\n").expect("write BENCH_mttf.json");
        println!("wrote BENCH_mttf.json");
    }
}
