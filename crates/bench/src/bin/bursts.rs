//! Burst/disturb faults (paper §VI, Table V): spatially correlated flips
//! from particle strikes or disturb mechanisms. CRC-31 guarantees
//! detection of any burst up to 31 bits, and the parity-group machinery
//! repairs whole-line damage of any width — this experiment measures both
//! on the real engines.

use sudoku_bench::{header, Args};
use sudoku_codes::LineData;
use sudoku_core::{Scheme, SudokuCache, SudokuConfig};
use sudoku_fault::FaultInjector;

fn main() {
    let args = Args::parse(2000, 0);
    header("Burst-fault study — disturb/particle-strike patterns (§VI)");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "burst width", "detected", "repaired", "DUE"
    );
    for width in [2u32, 4, 8, 16, 31, 64, 128] {
        let mut injector = FaultInjector::new(1e-6, args.seed + width as u64);
        let mut detected = 0u64;
        let mut repaired = 0u64;
        let mut due = 0u64;
        for t in 0..args.trials {
            let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16))
                .expect("valid configuration");
            let payload = {
                let mut d = LineData::zero();
                d.set_bit((t % 512) as usize, true);
                d
            };
            for i in 0..256 {
                cache.write(i, &payload);
            }
            let victim = t % 256;
            let mut line = cache.stored_line(victim);
            let before = line;
            injector.inject_burst(&mut line, width);
            for b in line.diff_positions(&before) {
                cache.inject_fault(victim, b);
            }
            let report = cache.scrub_lines(&[victim]);
            // "Detected" = the scrubber noticed anything at all.
            if report.ecc1_repairs + report.meta_repairs + report.multibit_lines > 0 {
                detected += 1;
            }
            if report.fully_repaired() && cache.read(victim).map(|d| d == payload).unwrap_or(false)
            {
                repaired += 1;
            } else {
                due += 1;
            }
        }
        println!(
            "{width:>12} {:>11.2}% {:>11.2}% {:>12}",
            detected as f64 / args.trials as f64 * 100.0,
            repaired as f64 / args.trials as f64 * 100.0,
            due
        );
    }
    println!(
        "\nany single-line burst — even far beyond CRC-31's 31-bit detection\n\
         guarantee — is detected (bursts are never valid codewords of the\n\
         CRC+ECC stack in practice) and reconstructed whole via RAID-4: the\n\
         group parity does not care how many bits of the victim line died."
    );
}
