//! Chaos soak: concurrent load against the sharded service while the
//! harness injects worker panics (some holding the shard mutex, poisoning
//! it), a scrub-daemon panic, permanent stuck-at cells, queue saturation,
//! and a mid-run shutdown with producers still blocked on backpressure.
//!
//! ```text
//! cargo run --release -p sudoku-bench --bin chaos -- --shards 4 --panic-shards 1
//! cargo run --release -p sudoku-bench --bin chaos -- \
//!     --shards 8 --panic-shards 2 --panic-daemon --stuck-ber 1e-5 --json
//! ```
//!
//! The soak asserts the degraded-mode contract end to end:
//!
//! * **No client panic** — every client runs under `catch_unwind`; a
//!   single unwinding client fails the run (exit 2).
//! * **No SDC** — every client keeps a golden copy of its writes; a read
//!   from a live shard that returns different data is silent corruption
//!   (exit 2). Lines on quarantined shards are excluded: an accepted
//!   write dropped by a dying worker is *lost*, not corrupted, and the
//!   shard fails fast rather than serving stale data.
//! * **Bounded DUE escalation** — detected-uncorrectable reads must stay
//!   under `--max-due` (exit 3).
//! * **Prompt detection** — the soak always runs the live telemetry plane
//!   and, after injecting the worker panics, polls `GET /healthz` until it
//!   flips to `503` with a non-empty quarantined-shard list. That
//!   time-to-detection must stay within one sampler interval
//!   (`--ttd-budget-ms`, default = `--sample-ms`; exit 5 otherwise) and is
//!   recorded as `ttd_ms` in `BENCH_chaos.json`.
//! * **Prompt alerting** — before the worker panics, the harness stalls
//!   the scrub daemon for `--stall-ms` (alive but not scrubbing) and
//!   polls `GET /alerts.json` for the watchdog's `daemon_stuck`,
//!   `deadline_miss`, and `tick_lag_breach` alerts; after the daemon
//!   panic it polls for `daemon_dead`. Per-class time-to-detection is
//!   recorded as `ttd_alert_ms` in `BENCH_chaos.json`, and at least
//!   three of the four classes must fire (exit 6 otherwise).
//!
//! `--telemetry-port <p>` pins the scrape endpoint (default: an ephemeral
//! port, printed at startup); `--flight-recorder <path>` streams the
//! sampler's snapshots to `<path>` as JSONL for artifact upload;
//! `--alerts <path>` streams the audit plane's structured alerts to
//! `<path>` as JSONL.
//!
//! `--json` writes `BENCH_chaos.json` with the full degraded-mode counter
//! set, alert TTDs, and achieved-scrub-interval quantiles for CI artifact
//! upload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use sudoku_bench::{flag, git_rev, header};
use sudoku_codes::LineData;
use sudoku_core::{Scheme, SudokuConfig};
use sudoku_fault::StuckBitMap;
use sudoku_sim::ZipfGen;
use sudoku_svc::{
    AuditConfig, Service, ServiceConfig, ServiceError, ServiceHandle, TelemetryConfig,
};

/// Alert classes whose time-to-detection the soak measures, in the order
/// they are expected to fire: the stall raises the first three, the
/// daemon panic the last.
const TTD_CLASSES: [&str; 4] = [
    "daemon_stuck",
    "deadline_miss",
    "tick_lag_breach",
    "daemon_dead",
];

struct Opts {
    shards: usize,
    lines: u64,
    clients: usize,
    requests: u64,
    ber: f64,
    stuck_ber: f64,
    tick_ms: u64,
    queue: usize,
    seed: u64,
    panic_shards: usize,
    panic_after_ms: u64,
    shutdown_after_ms: u64,
    max_due: u64,
    telemetry_port: u16,
    flight_recorder: Option<String>,
    sample_ms: u64,
    ttd_budget_ms: u64,
    stall_ms: u64,
    alerts: Option<String>,
}

impl Opts {
    fn parse() -> Opts {
        let argv: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<&str> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1))
                .map(String::as_str)
        };
        let u =
            |flag: &str, default: u64| get(flag).and_then(|v| v.parse().ok()).unwrap_or(default);
        let f =
            |flag: &str, default: f64| get(flag).and_then(|v| v.parse().ok()).unwrap_or(default);
        Opts {
            shards: u("--shards", 4) as usize,
            lines: u("--lines", 1 << 13),
            clients: u("--clients", 4) as usize,
            requests: u("--requests", 200_000),
            ber: f("--ber", 1e-4),
            stuck_ber: f("--stuck-ber", 1e-5),
            tick_ms: u("--tick-ms", 1),
            queue: u("--queue", 8) as usize, // tiny: the soak lives under saturation
            seed: u("--seed", 42),
            panic_shards: u("--panic-shards", 1) as usize,
            panic_after_ms: u("--panic-after-ms", 40),
            shutdown_after_ms: u("--shutdown-after-ms", 120),
            max_due: u("--max-due", u64::MAX),
            telemetry_port: u("--telemetry-port", 0) as u16,
            flight_recorder: get("--flight-recorder").map(String::from),
            sample_ms: u("--sample-ms", 50),
            ttd_budget_ms: u("--ttd-budget-ms", u("--sample-ms", 50)),
            stall_ms: u("--stall-ms", 100),
            alerts: get("--alerts").map(String::from),
        }
    }
}

/// Minimal HTTP/1.1 GET against the service's own scrape endpoint:
/// returns the status code and body, or `None` on any transport error.
fn http_get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(250)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body))
}

/// Polls `/healthz` until it reports the injected quarantine (503 with a
/// non-empty shard list), returning the time that took. `None` when the
/// deadline passed without detection.
fn time_to_detection(addr: SocketAddr, deadline: Duration) -> Option<Duration> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Some((status, body)) = http_get(addr, "/healthz") {
            if status == 503 && !body.contains("\"quarantined\":[]") {
                return Some(start.elapsed());
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    None
}

/// Polls `GET /alerts.json` until every named alert class has appeared in
/// the stream (or the deadline passes), recording each class's first-seen
/// latency. Undetected classes stay `None`.
fn time_to_alerts(addr: SocketAddr, classes: &[&str], deadline: Duration) -> Vec<Option<Duration>> {
    let start = Instant::now();
    let mut seen: Vec<Option<Duration>> = vec![None; classes.len()];
    while start.elapsed() < deadline && seen.iter().any(Option::is_none) {
        if let Some((status, body)) = http_get(addr, "/alerts.json") {
            if status == 200 {
                for (slot, class) in seen.iter_mut().zip(classes) {
                    if slot.is_none() && body.contains(&format!("\"class\":\"{class}\"")) {
                        *slot = Some(start.elapsed());
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    seen
}

#[derive(Debug, Default)]
struct ClientResult {
    reads: u64,
    writes: u64,
    sdc: u64,
    due: u64,
    shed: u64,
    /// Reads served correctly after the client first saw a quarantine.
    served_degraded: u64,
}

/// One chaos client: unpaced zipfian mix over its own line slice, golden
/// oracle on every read, tolerant of every [`ServiceError`]. Returns when
/// its quota is spent or the service shuts down under it.
fn chaos_client(
    handle: &ServiceHandle,
    worker: u64,
    workers: u64,
    span: u64,
    requests: u64,
    write_frac: f64,
    seed: u64,
) -> ClientResult {
    let mut result = ClientResult::default();
    let mut golden: HashMap<u64, LineData> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(seed ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut zipf = ZipfGen::new(span, 0.8, seed ^ (worker << 17));
    let mut saw_quarantine = false;
    for i in 0..requests {
        let line = zipf.next_rank() * workers + worker;
        if rng.gen_bool(write_frac) {
            let mut data = LineData::zero();
            data.set_bit((line as usize).wrapping_mul(31) % 512, true);
            data.set_bit((i as usize).wrapping_mul(7) % 512, true);
            match handle.write(line, &data) {
                Ok(()) => {
                    golden.insert(line, data);
                    result.writes += 1;
                }
                Err(ServiceError::ShuttingDown) => {
                    result.shed += 1;
                    break;
                }
                Err(_) => {
                    saw_quarantine = true;
                    result.shed += 1;
                }
            }
        } else {
            // Slot-completed read: clean lines come straight off the seqlock
            // view; everything else queues a packet whose completion slot
            // resolves (with an error) even when the shard worker dies.
            match handle.read(line) {
                Ok(data) => {
                    result.reads += 1;
                    if saw_quarantine {
                        result.served_degraded += 1;
                    }
                    let expect = golden.get(&line).copied().unwrap_or_else(LineData::zero);
                    // Oracle: only lines on live shards count. A line
                    // whose shard died may have lost accepted writes —
                    // that is shed availability, not silent corruption.
                    if data != expect && !handle.quarantined().contains(&handle.shard_of(line)) {
                        result.sdc += 1;
                    }
                }
                Err(ServiceError::ShuttingDown) => {
                    result.shed += 1;
                    break;
                }
                Err(e) if e.is_due() => {
                    result.reads += 1;
                    result.due += 1;
                }
                Err(_) => {
                    saw_quarantine = true;
                    result.shed += 1;
                }
            }
        }
    }
    result
}

fn main() {
    let opts = Opts::parse();
    header("Chaos soak (worker panics + stuck bits + saturation + mid-run shutdown)");
    println!(
        "shards = {}, clients = {}, lines = {}, queue = {}, ber = {:.2e}, stuck ber = {:.2e}, \
         panic shards = {}, seed = {}",
        opts.shards,
        opts.clients,
        opts.lines,
        opts.queue,
        opts.ber,
        opts.stuck_ber,
        opts.panic_shards,
        opts.seed
    );

    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xC0FF_EE00);
    let stuck = StuckBitMap::random(&mut rng, opts.lines, opts.stuck_ber);
    println!(
        "stuck map: {} lines, {} stuck bits",
        stuck.faulty_lines(),
        stuck.total_stuck_bits()
    );
    let config = ServiceConfig {
        cache: SudokuConfig::small(Scheme::Z, opts.lines, 16),
        n_shards: opts.shards,
        queue_depth: opts.queue,
        scrub_every: Some(Duration::from_millis(opts.tick_ms.max(1))),
        ber: opts.ber,
        seed: opts.seed,
        stuck,
        degraded: Default::default(),
        // Always on: the soak asserts detection latency through the same
        // endpoint an operator would watch.
        telemetry: Some(TelemetryConfig {
            sample_every: Duration::from_millis(opts.sample_ms.max(1)),
            flight_recorder_cap: 256,
            jsonl_path: opts.flight_recorder.as_ref().map(Into::into),
            port: Some(opts.telemetry_port),
        }),
        audit: AuditConfig {
            alerts_jsonl: opts.alerts.as_ref().map(Into::into),
            ..AuditConfig::default()
        },
    };
    let service = Service::start(config).expect("valid service config");
    let telemetry_addr = service.telemetry_addr().expect("telemetry endpoint is on");
    println!("telemetry: GET http://{telemetry_addr}/metrics | /healthz | /snapshot.json");
    let chaos_handle = service.handle();
    let workers = opts.clients.max(1) as u64;
    let span = (opts.lines / workers).max(1);

    let mut client_panics = 0u64;
    let mut totals = ClientResult::default();
    let mut ttd: Option<Duration> = None;
    let mut ttd_alerts: Vec<Option<Duration>> = vec![None; TTD_CLASSES.len()];
    let injected_panics = opts.panic_shards.min(opts.shards.saturating_sub(1));
    let report = std::thread::scope(|s| {
        let joins: Vec<_> = (0..workers)
            .map(|w| {
                let handle = service.handle();
                let requests = opts.requests;
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        chaos_client(&handle, w, workers, span, requests, 0.3, opts.seed)
                    }))
                })
            })
            .collect();

        // Chaos controller: let the soak warm up under saturation, then
        // stall the daemon (alive but not scrubbing) while watching the
        // alert stream, kill workers (alternating plain and lock-holding
        // panics), kill the daemon, and finally shut down mid-flight.
        std::thread::sleep(Duration::from_millis(opts.panic_after_ms));
        let mut poll_spent = Duration::ZERO;
        if opts.stall_ms > 0 {
            service.inject_daemon_stall(Duration::from_millis(opts.stall_ms));
            println!("injected scrub daemon stall: {} ms", opts.stall_ms);
            // The stall-driven classes: `daemon_stuck` once the tick
            // counter freezes past the stall budget, `deadline_miss` once
            // packet staleness crosses the 20 ms guarantee, and
            // `tick_lag_breach` when the delayed tick finally starts and
            // reports its lag.
            let deadline = Duration::from_millis(opts.stall_ms) + Duration::from_secs(2);
            let poll_start = Instant::now();
            let stall_ttds = time_to_alerts(telemetry_addr, &TTD_CLASSES[..3], deadline);
            ttd_alerts[..3].copy_from_slice(&stall_ttds);
            poll_spent += poll_start.elapsed();
            for (class, t) in TTD_CLASSES[..3].iter().zip(&stall_ttds) {
                match t {
                    Some(d) => {
                        println!(
                            "alert {class}: raised {:.1} ms after stall",
                            d.as_secs_f64() * 1e3
                        )
                    }
                    None => println!(
                        "alert {class}: not raised within {:.0} ms",
                        deadline.as_secs_f64() * 1e3
                    ),
                }
            }
        }
        for shard in 0..injected_panics {
            let hold_lock = shard % 2 == 1;
            let _ = chaos_handle.inject_worker_panic(shard, hold_lock);
            println!("injected worker panic: shard {shard} (hold_lock = {hold_lock})");
        }
        // Time-to-detection: injection → /healthz going 503 with the
        // quarantined shard listed. Measured before the daemon panic so
        // the 503 is attributable to the worker quarantine alone.
        if injected_panics > 0 {
            let deadline = Duration::from_millis(opts.ttd_budget_ms) + Duration::from_secs(2);
            let poll_start = Instant::now();
            ttd = time_to_detection(telemetry_addr, deadline);
            poll_spent += poll_start.elapsed();
            match ttd {
                Some(d) => println!(
                    "time-to-detection: {:.1} ms (budget {} ms)",
                    d.as_secs_f64() * 1e3,
                    opts.ttd_budget_ms
                ),
                None => println!(
                    "time-to-detection: /healthz never reported the quarantine \
                     (polled {:.0} ms)",
                    poll_spent.as_secs_f64() * 1e3
                ),
            }
        }
        service.inject_daemon_panic();
        println!("injected scrub daemon panic");
        {
            // The daemon honors the panic flag at its next tick; the
            // watchdog then notices the dead thread within one scan.
            let poll_start = Instant::now();
            let dead = time_to_alerts(telemetry_addr, &TTD_CLASSES[3..], Duration::from_secs(2));
            ttd_alerts[3] = dead[0];
            poll_spent += poll_start.elapsed();
            match dead[0] {
                Some(d) => println!(
                    "alert daemon_dead: raised {:.1} ms after panic",
                    d.as_secs_f64() * 1e3
                ),
                None => println!("alert daemon_dead: not raised within 2000 ms"),
            }
        }
        std::thread::sleep(
            Duration::from_millis(opts.shutdown_after_ms.saturating_sub(opts.panic_after_ms))
                .saturating_sub(poll_spent),
        );
        println!("mid-run shutdown (producers may be blocked on full queues)...");
        let audit = service.audit().snapshot();
        let report = service.shutdown();
        for join in joins {
            match join.join().expect("client thread never unwinds") {
                Ok(r) => {
                    totals.reads += r.reads;
                    totals.writes += r.writes;
                    totals.sdc += r.sdc;
                    totals.due += r.due;
                    totals.shed += r.shed;
                    totals.served_degraded += r.served_degraded;
                }
                Err(_) => client_panics += 1,
            }
        }
        (report, audit)
    });
    let (report, audit) = report;

    println!(
        "clients: {} reads, {} writes, {} shed, {} due, {} sdc, {} served-degraded, {} panics",
        totals.reads,
        totals.writes,
        totals.shed,
        totals.due,
        totals.sdc,
        totals.served_degraded,
        client_panics
    );
    println!(
        "service: worker panics = {:?}, daemon panicked = {}, quarantined = {:?}",
        report.worker_panics, report.daemon_panicked, report.quarantined
    );
    println!(
        "degraded: {} rejects, {} spared lines, {} stuck reasserts, {} skipped H2 escalations",
        report.degraded.shard_down_rejects,
        report.degraded.spared_lines,
        report.degraded.stuck_reasserts,
        report.degraded.skipped_h2_escalations
    );
    println!(
        "scrub: {} ticks ({} skipped), {} escalations, {} unresolved",
        report.scrub_ticks, report.skipped_ticks, report.escalations, report.unresolved_lines
    );
    let interval = &audit.achieved_scrub_interval_ns;
    println!(
        "audit: {} alerts ({} critical), {} deadline misses, achieved scrub interval \
         p50 = {:.1} ms / p99 = {:.1} ms / max = {:.1} ms over {} packets",
        audit.alerts_total,
        audit.alerts_critical,
        audit.scrub_deadline_misses,
        interval.quantile(0.50) as f64 / 1e6,
        interval.quantile(0.99) as f64 / 1e6,
        interval.max() as f64 / 1e6,
        interval.count()
    );

    if flag("--json") {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "chaos_soak")
            .field_u64("shards", opts.shards as u64)
            .field_u64("clients", workers)
            .field_u64("panic_shards", opts.panic_shards as u64)
            .field_u64("reads", totals.reads)
            .field_u64("writes", totals.writes)
            .field_u64("shed", totals.shed)
            .field_u64("due", totals.due)
            .field_u64("sdc", totals.sdc)
            .field_u64("served_degraded", totals.served_degraded)
            .field_u64("client_panics", client_panics)
            .field_bool("daemon_panicked", report.daemon_panicked)
            .field_array_u64(
                "worker_panics",
                report.worker_panics.iter().map(|&s| s as u64),
            )
            .field_raw("degraded", &report.degraded.to_json());
        match ttd {
            Some(d) => obj.field_f64("ttd_ms", d.as_secs_f64() * 1e3),
            None => obj.field_raw("ttd_ms", "null"),
        };
        let mut ttd_obj = sudoku_obs::json::JsonObject::new();
        for (class, t) in TTD_CLASSES.iter().zip(&ttd_alerts) {
            match t {
                Some(d) => ttd_obj.field_f64(class, d.as_secs_f64() * 1e3),
                None => ttd_obj.field_raw(class, "null"),
            };
        }
        obj.field_raw("ttd_alert_ms", &ttd_obj.finish())
            .field_u64("stall_ms", opts.stall_ms)
            .field_u64("alerts_total", audit.alerts_total)
            .field_u64("alerts_critical", audit.alerts_critical)
            .field_u64("scrub_deadline_misses", audit.scrub_deadline_misses)
            .field_u64(
                "scrub_interval_p50_ns",
                audit.achieved_scrub_interval_ns.quantile(0.50),
            )
            .field_u64(
                "scrub_interval_p99_ns",
                audit.achieved_scrub_interval_ns.quantile(0.99),
            )
            .field_u64(
                "scrub_interval_max_ns",
                audit.achieved_scrub_interval_ns.max(),
            )
            .field_u64("ttd_budget_ms", opts.ttd_budget_ms)
            .field_u64("sample_ms", opts.sample_ms)
            .field_u64("seed", opts.seed)
            .field_str("git_rev", &git_rev());
        std::fs::write("BENCH_chaos.json", obj.finish() + "\n").expect("write BENCH_chaos.json");
        println!("wrote BENCH_chaos.json");
    }

    if totals.sdc > 0 || client_panics > 0 {
        eprintln!(
            "FAIL: sdc = {}, client panics = {} (must both be 0)",
            totals.sdc, client_panics
        );
        std::process::exit(2);
    }
    if totals.due > opts.max_due {
        eprintln!(
            "FAIL: due = {} exceeds --max-due {}",
            totals.due, opts.max_due
        );
        std::process::exit(3);
    }
    if opts.panic_shards > 0 && totals.served_degraded == 0 && totals.reads > 0 {
        eprintln!("FAIL: no reads served after quarantine — surviving shards did not serve");
        std::process::exit(4);
    }
    if injected_panics > 0 {
        let budget = Duration::from_millis(opts.ttd_budget_ms);
        match ttd {
            None => {
                eprintln!("FAIL: /healthz never reported the injected quarantine");
                std::process::exit(5);
            }
            Some(d) if d > budget => {
                eprintln!(
                    "FAIL: time-to-detection {:.1} ms exceeds the {} ms budget \
                     (one sampler interval)",
                    d.as_secs_f64() * 1e3,
                    opts.ttd_budget_ms
                );
                std::process::exit(5);
            }
            Some(_) => {}
        }
    }
    if opts.stall_ms > 0 {
        let detected = ttd_alerts.iter().filter(|t| t.is_some()).count();
        if detected < 3 {
            eprintln!(
                "FAIL: only {detected} of {} alert classes fired \
                 (need >= 3 of {TTD_CLASSES:?})",
                TTD_CLASSES.len()
            );
            std::process::exit(6);
        }
    }
    println!("PASS: survived the soak with no SDC and no client panic");
}
