//! Table XII: SuDoku vs Hi-ECC (ECC-6 over 1-KB regions).

use sudoku_bench::{header, sci};
use sudoku_reliability::analytic::{hiecc_fit, z_fit_paper_style, Params};

fn main() {
    header("Table XII — SuDoku vs Hi-ECC");
    let params = Params::paper_default();
    println!(
        "{:<10} {:>14} {:>14}",
        "scheme", "FIT (ours)", "FIT (paper)"
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "SuDoku",
        sci(z_fit_paper_style(&params)),
        sci(1.05e-4)
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "Hi-ECC",
        sci(hiecc_fit(&params)),
        sci(1.47)
    );
    println!(
        "\nHi-ECC protects 16x more bits per codeword, so ≥7 faults per 1 KB\n\
         region arrive often enough to miss the 1-FIT target; SuDoku holds it.\n\
         (Our binomial model puts Hi-ECC higher than the paper's 1.47; both\n\
         agree Hi-ECC fails the target while SuDoku exceeds it by >10^3.)"
    );
}
