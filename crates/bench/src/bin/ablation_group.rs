//! Ablation (paper §III-D): RAID-Group size trades storage, repair latency
//! and reliability against each other.

use sudoku_bench::{flag, header, sci};
use sudoku_core::STT_READ_NS;
use sudoku_reliability::analytic::{x_fit, y_fit, z_fit_paper_style, Params};

fn main() {
    header("Ablation — RAID-Group size (paper default: 512 lines)");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "group", "PLT (KB)", "repair (µs)", "X FIT", "Y FIT", "Z FIT"
    );
    let mut rows = String::from("[");
    for group in [64u32, 128, 256, 512, 1024, 2048] {
        let params = Params {
            group,
            ..Params::paper_default()
        };
        let plt_kb = params.n_groups() * 64 / 1024; // one PLT, 64 B payload per line
        let repair_us = group as f64 * STT_READ_NS / 1e3;
        println!(
            "{group:<8} {plt_kb:>10} {repair_us:>12.1} {:>12} {:>12} {:>12}",
            sci(x_fit(&params)),
            sci(y_fit(&params)),
            sci(z_fit_paper_style(&params)),
        );
        if rows.len() > 1 {
            rows.push(',');
        }
        let mut row = sudoku_obs::json::JsonObject::new();
        row.field_u64("group", group as u64)
            .field_u64("plt_kb", plt_kb)
            .field_f64("repair_us", repair_us)
            .field_f64("x_fit", x_fit(&params))
            .field_f64("y_fit", y_fit(&params))
            .field_f64("z_fit", z_fit_paper_style(&params));
        rows.push_str(&row.finish());
    }
    rows.push(']');
    if flag("--json") {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_str("name", "ablation_group")
            .field_raw("rows", &rows);
        std::fs::write("BENCH_ablation_group.json", obj.finish() + "\n")
            .expect("write BENCH_ablation_group.json");
        println!("wrote BENCH_ablation_group.json");
    }
    println!(
        "\nsmaller groups: more parity SRAM, faster repair, fewer collisions;\n\
         larger groups: cheaper storage but more multi-line collisions per\n\
         group. 512 balances 128 KB of SRAM per PLT against ~4.6 µs repairs."
    );
}
