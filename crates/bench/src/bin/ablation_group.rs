//! Ablation (paper §III-D): RAID-Group size trades storage, repair latency
//! and reliability against each other.

use sudoku_bench::{header, sci};
use sudoku_core::STT_READ_NS;
use sudoku_reliability::analytic::{x_fit, y_fit, z_fit_paper_style, Params};

fn main() {
    header("Ablation — RAID-Group size (paper default: 512 lines)");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "group", "PLT (KB)", "repair (µs)", "X FIT", "Y FIT", "Z FIT"
    );
    for group in [64u32, 128, 256, 512, 1024, 2048] {
        let params = Params {
            group,
            ..Params::paper_default()
        };
        let plt_kb = params.n_groups() * 64 / 1024; // one PLT, 64 B payload per line
        let repair_us = group as f64 * STT_READ_NS / 1e3;
        println!(
            "{group:<8} {plt_kb:>10} {repair_us:>12.1} {:>12} {:>12} {:>12}",
            sci(x_fit(&params)),
            sci(y_fit(&params)),
            sci(z_fit_paper_style(&params)),
        );
    }
    println!(
        "\nsmaller groups: more parity SRAM, faster repair, fewer collisions;\n\
         larger groups: cheaper storage but more multi-line collisions per\n\
         group. 512 balances 128 KB of SRAM per PLT against ~4.6 µs repairs."
    );
}
