//! Figure 7: cache failure probability (DUE + SDC) over time for SuDoku-X,
//! SuDoku-Y, SuDoku-Z and ECC-6, plus the MTTF ladder.

use sudoku_bench::{header, ratio, sci};
use sudoku_reliability::analytic::{
    ecc_cache_fail, ecc_fit, failure_probability_by, sdc_fit, x_cache_fail, x_fit, x_mttf_seconds,
    y_cache_fail, y_fit, y_mttf_hours, z_cache_fail, z_fit, z_fit_paper_style, Params,
};

fn main() {
    header("Figure 7 — failure probability over time: X, Y, Z vs ECC-6");
    let params = Params::paper_default();
    let sdc = sdc_fit(&params);
    let px = x_cache_fail(&params);
    let py = y_cache_fail(&params);
    let pz_paper_style = z_fit_paper_style(&params) / params.scrub.intervals_per_billion_hours();
    let pe6 = ecc_cache_fail(&params, 6);

    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "time", "SuDoku-X", "SuDoku-Y", "SuDoku-Z", "ECC-6"
    );
    let times: [(f64, &str); 8] = [
        (1.0, "1 s"),
        (10.0, "10 s"),
        (60.0, "1 min"),
        (3600.0, "1 h"),
        (86_400.0, "1 day"),
        (2_592_000.0, "30 days"),
        (31_536_000.0, "1 year"),
        (3.15e9, "100 years"),
    ];
    for (t, label) in times {
        println!(
            "{label:>12} {:>12} {:>12} {:>12} {:>12}",
            sci(failure_probability_by(&params, px, t)),
            sci(failure_probability_by(&params, py, t)),
            sci(failure_probability_by(&params, pz_paper_style, t)),
            sci(failure_probability_by(&params, pe6, t)),
        );
    }

    println!("\nMTTF / FIT ladder (DUE + SDC):");
    println!(
        "  SuDoku-X: MTTF {:>10}   FIT {:>10}   (paper: 3.71 s)",
        format!("{:.2} s", x_mttf_seconds(&params)),
        sci(x_fit(&params) + sdc)
    );
    println!(
        "  SuDoku-Y: MTTF {:>10}   FIT {:>10}   (paper: 3.49–3.9 h)",
        format!("{:.1} h", y_mttf_hours(&params)),
        sci(y_fit(&params) + sdc)
    );
    let zf = z_fit_paper_style(&params) + sdc;
    println!(
        "  SuDoku-Z: FIT {:>10} (paper-style model; paper: 1.05e-4)",
        sci(zf)
    );
    println!(
        "            FIT {:>10} (our leading-order model; cache_fail {:.2e})",
        sci(z_fit(&params) + sdc),
        z_cache_fail(&params)
    );
    let e6 = ecc_fit(&params, 6);
    println!("  ECC-6:    FIT {:>10}   (paper: 0.092)", sci(e6));
    println!(
        "\nheadline: SuDoku-Z is {} as reliable as ECC-6 (paper: 874x)",
        ratio(e6, zf)
    );
}
