//! # sudoku-bench
//!
//! Experiment harness for the SuDoku reproduction: one binary per table and
//! figure of the paper (run `cargo run -p sudoku-bench --bin repro` for all
//! of them), plus Criterion benches for the codec and correction paths.
//!
//! Every binary prints the paper's reported value next to the reproduced
//! one, and accepts `--seed N`, `--trials N`, `--threads N`,
//! `--accesses N` where applicable.

#![warn(missing_docs)]

use sudoku_reliability::montecarlo::{CampaignTelemetry, Observe, ThroughputReport};

/// Formats a value in 3-significant-digit scientific notation, the way the
/// paper's tables print probabilities and FIT rates.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if x.is_infinite() {
        return "inf".to_string();
    }
    if (0.01..10_000.0).contains(&x.abs()) {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Prints a boxed section header.
pub fn header(title: &str) {
    let bar = "=".repeat(title.len() + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Simple `--flag value` argument extraction.
#[derive(Clone, Debug)]
pub struct Args {
    /// RNG seed (`--seed`, default 42).
    pub seed: u64,
    /// Monte-Carlo trials (`--trials`).
    pub trials: u64,
    /// Worker threads (`--threads`, 0 = all cores).
    pub threads: usize,
    /// Simulated LLC accesses per core (`--accesses`).
    pub accesses: u64,
    /// Recovery-event JSONL output path (`--events <path>`).
    pub events: Option<String>,
    /// Telemetry metrics JSON output path (`--metrics-json <path>`).
    pub metrics_json: Option<String>,
}

impl Args {
    /// Parses the process arguments with the given defaults.
    pub fn parse(default_trials: u64, default_accesses: u64) -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let get_str = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1))
                .cloned()
        };
        let get = |flag: &str| -> Option<u64> { get_str(flag).and_then(|v| v.parse().ok()) };
        Args {
            seed: get("--seed").unwrap_or(42),
            trials: get("--trials").unwrap_or(default_trials),
            threads: get("--threads").unwrap_or(0) as usize,
            accesses: get("--accesses").unwrap_or(default_accesses),
            events: get_str("--events"),
            metrics_json: get_str("--metrics-json"),
        }
    }

    /// Telemetry depth implied by the flags: campaigns record events only
    /// when an output path asked for them.
    pub fn observe(&self) -> Observe {
        if self.events.is_some() || self.metrics_json.is_some() {
            Observe::Unbounded
        } else {
            Observe::Off
        }
    }

    /// Writes one campaign's telemetry sidecar files: the event log as
    /// JSONL to `--events` and the histogram/phase metrics to
    /// `--metrics-json`. With `Some(label)`, the label is spliced into the
    /// file stem so multi-campaign bins keep their outputs apart.
    pub fn write_telemetry(&self, label: Option<&str>, telemetry: &CampaignTelemetry) {
        let dest = |base: &Option<String>| -> Option<String> {
            base.as_ref()
                .map(|p| label.map_or_else(|| p.clone(), |l| labeled_path(p, l)))
        };
        if let Some(path) = dest(&self.events) {
            std::fs::write(&path, telemetry.events_jsonl()).expect("write --events output");
            println!("wrote {} recovery events to {path}", telemetry.events.len());
        }
        if let Some(path) = dest(&self.metrics_json) {
            std::fs::write(&path, telemetry.to_json()).expect("write --metrics-json output");
            println!("wrote telemetry metrics to {path}");
        }
    }
}

/// Whether a bare `--flag` (no value) is present on the command line.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Splices a label into a path's file stem: `out.jsonl` + `mttf_x` →
/// `out.mttf_x.jsonl` (appended when the path has no extension).
pub fn labeled_path(path: &str, label: &str) -> String {
    match path.rfind('.').filter(|&i| !path[i..].contains('/')) {
        Some(i) => format!("{}.{label}{}", &path[..i], &path[i..]),
        None => format!("{path}.{label}"),
    }
}

/// Writes `BENCH_<name>.json` with one labeled [`ThroughputReport`] per
/// campaign — the machine-readable shape shared by every multi-campaign
/// bin's `--json` flag.
pub fn write_bench_reports(name: &str, reports: &[(String, ThroughputReport)]) {
    let mut campaigns = String::from("[");
    for (i, (label, report)) in reports.iter().enumerate() {
        if i > 0 {
            campaigns.push(',');
        }
        let mut one = sudoku_obs::json::JsonObject::new();
        one.field_str("label", label)
            .field_raw("campaign", &report.to_json());
        campaigns.push_str(&one.finish());
    }
    campaigns.push(']');
    let mut obj = sudoku_obs::json::JsonObject::new();
    obj.field_str("name", name)
        .field_raw("campaigns", &campaigns);
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, obj.finish() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// The current short git revision, resolved **at run time** (never baked
/// in at compile time — a stale build must not stamp a stale rev into a
/// fresh `BENCH_*.json`). `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Extracts the first `"key": "value"` string from a JSON text — the
/// string companion of [`json_f64_field`], for fields like `git_rev`.
/// Escapes inside the value are not interpreted (none of the fields this
/// reads contain any).
pub fn json_str_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Warns (stderr) when a committed baseline was produced by a different
/// git revision than the one running now — its figures may not be
/// comparable. Returns whether the revisions matched.
pub fn warn_baseline_rev(baseline_json: &str, baseline_name: &str) -> bool {
    let baseline_rev = json_str_field(baseline_json, "git_rev");
    let current = git_rev();
    match baseline_rev {
        Some(rev) if rev == current => true,
        Some(rev) => {
            eprintln!(
                "warning: {baseline_name} was written at git rev {rev} but HEAD is \
                 {current}; baseline figures may not be comparable"
            );
            false
        }
        None => {
            eprintln!("warning: {baseline_name} carries no git_rev stamp");
            false
        }
    }
}

/// Extracts the first `"key": <number>` value from a JSON text. The
/// workspace's serde is a no-op shim, so baseline files are re-read with
/// this narrow scanner instead of a full parser.
pub fn json_f64_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Ratio formatted as "N.NNx".
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.0}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_ranges() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.092), "0.092");
        assert_eq!(sci(5.3e-6), "5.30e-6");
        assert_eq!(sci(1.69e14), "1.69e14");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    fn args_defaults() {
        let a = Args::parse(100, 1000);
        assert_eq!(a.trials, 100);
        assert_eq!(a.accesses, 1000);
        assert!(a.events.is_none());
        assert!(a.metrics_json.is_none());
        assert!(!a.observe().enabled());
    }

    #[test]
    fn labeled_path_splices_before_extension() {
        assert_eq!(labeled_path("out.jsonl", "mttf_x"), "out.mttf_x.jsonl");
        assert_eq!(labeled_path("a/b.c/out", "z"), "a/b.c/out.z");
        assert_eq!(labeled_path("events", "y"), "events.y");
    }

    #[test]
    fn json_str_field_scans_strings() {
        let text = "{\"name\":\"svc_loadgen\",\"req_per_sec\":12.5,\"git_rev\":\"0ba23e8\"}";
        assert_eq!(json_str_field(text, "git_rev"), Some("0ba23e8".into()));
        assert_eq!(json_str_field(text, "name"), Some("svc_loadgen".into()));
        assert_eq!(json_str_field(text, "req_per_sec"), None);
        assert_eq!(json_str_field(text, "missing"), None);
    }

    #[test]
    fn git_rev_is_runtime_resolved() {
        // In this checkout it is a short hex rev; anywhere else "unknown".
        let rev = git_rev();
        assert!(!rev.is_empty());
    }

    #[test]
    fn json_f64_field_scans_numbers() {
        let text = "{\n  \"name\": \"x\",\n  \"trials_per_sec\": 743.412,\n  \"n\": 3\n}";
        assert_eq!(json_f64_field(text, "trials_per_sec"), Some(743.412));
        assert_eq!(json_f64_field(text, "n"), Some(3.0));
        assert_eq!(json_f64_field(text, "missing"), None);
        assert_eq!(json_f64_field(text, "name"), None);
    }
}
