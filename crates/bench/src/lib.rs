//! # sudoku-bench
//!
//! Experiment harness for the SuDoku reproduction: one binary per table and
//! figure of the paper (run `cargo run -p sudoku-bench --bin repro` for all
//! of them), plus Criterion benches for the codec and correction paths.
//!
//! Every binary prints the paper's reported value next to the reproduced
//! one, and accepts `--seed N`, `--trials N`, `--threads N`,
//! `--accesses N` where applicable.

#![warn(missing_docs)]

/// Formats a value in 3-significant-digit scientific notation, the way the
/// paper's tables print probabilities and FIT rates.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if x.is_infinite() {
        return "inf".to_string();
    }
    if (0.01..10_000.0).contains(&x.abs()) {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Prints a boxed section header.
pub fn header(title: &str) {
    let bar = "=".repeat(title.len() + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Simple `--flag value` argument extraction.
#[derive(Clone, Debug)]
pub struct Args {
    /// RNG seed (`--seed`, default 42).
    pub seed: u64,
    /// Monte-Carlo trials (`--trials`).
    pub trials: u64,
    /// Worker threads (`--threads`, 0 = all cores).
    pub threads: usize,
    /// Simulated LLC accesses per core (`--accesses`).
    pub accesses: u64,
}

impl Args {
    /// Parses the process arguments with the given defaults.
    pub fn parse(default_trials: u64, default_accesses: u64) -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<u64> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        Args {
            seed: get("--seed").unwrap_or(42),
            trials: get("--trials").unwrap_or(default_trials),
            threads: get("--threads").unwrap_or(0) as usize,
            accesses: get("--accesses").unwrap_or(default_accesses),
        }
    }
}

/// Whether a bare `--flag` (no value) is present on the command line.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Ratio formatted as "N.NNx".
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.0}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_ranges() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.092), "0.092");
        assert_eq!(sci(5.3e-6), "5.30e-6");
        assert_eq!(sci(1.69e14), "1.69e14");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    fn args_defaults() {
        let a = Args::parse(100, 1000);
        assert_eq!(a.trials, 100);
        assert_eq!(a.accesses, 1000);
    }
}
