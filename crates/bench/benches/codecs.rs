//! Codec throughput: the latency asymmetry the paper's argument rests on —
//! CRC-31 + ECC-1 are trivial per line, multi-bit BCH (ECC-6) is not
//! (paper §I: "multibit ECC encoders and decoders incur latencies of
//! several tens of cycles", vs single-cycle ECC-1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use sudoku_codes::{crc31, line_ecc, BitBuf, HammingSec, LineCodec, LineData};

fn sample_line(seed: u64) -> LineData {
    let mut data = LineData::zero();
    let mut x = seed | 1;
    for i in 0..512 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x & 1 == 1 {
            data.set_bit(i, true);
        }
    }
    data
}

fn bench_crc31(c: &mut Criterion) {
    let engine = crc31();
    let line = sample_line(1);
    c.bench_function("crc31_checksum_line", |b| {
        b.iter(|| engine.checksum_line(black_box(&line)))
    });
}

fn bench_ecc1(c: &mut Criterion) {
    let code = HammingSec::new(543);
    let mut payload = BitBuf::zeros(543);
    for i in (0..543).step_by(3) {
        payload.set(i, true);
    }
    let check = code.encode(&payload);
    c.bench_function("ecc1_encode_543", |b| {
        b.iter(|| code.encode(black_box(&payload)))
    });
    c.bench_function("ecc1_decode_single_error", |b| {
        b.iter_batched(
            || {
                let mut p = payload.clone();
                p.flip(100);
                p
            },
            |mut p| code.decode(&mut p, check),
            BatchSize::SmallInput,
        )
    });
}

fn bench_line_codec(c: &mut Criterion) {
    let codec = LineCodec::shared();
    let data = sample_line(3);
    let stored = codec.encode(&data);
    c.bench_function("line_codec_encode", |b| {
        b.iter(|| codec.encode(black_box(&data)))
    });
    c.bench_function("line_codec_read_check_clean", |b| {
        b.iter(|| codec.read_check(black_box(&stored)))
    });
    let mut faulty = stored;
    faulty.flip_bit(42);
    c.bench_function("line_codec_read_check_repair", |b| {
        b.iter(|| codec.read_check(black_box(&faulty)))
    });
}

fn bench_bch(c: &mut Criterion) {
    for t in [1usize, 6] {
        let code = line_ecc(t).expect("line ECC");
        let mut data = BitBuf::zeros(512);
        for i in (0..512).step_by(5) {
            data.set(i, true);
        }
        let parity = code.encode(&data);
        c.bench_function(&format!("bch_t{t}_encode"), |b| {
            b.iter(|| code.encode(black_box(&data)))
        });
        c.bench_function(&format!("bch_t{t}_decode_{t}_errors"), |b| {
            b.iter_batched(
                || {
                    let mut d = data.clone();
                    for e in 0..t {
                        d.flip(e * 67 + 3);
                    }
                    (d, parity.clone())
                },
                |(mut d, mut p)| code.decode(&mut d, &mut p),
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(codecs, bench_crc31, bench_ecc1, bench_line_codec, bench_bch);
criterion_main!(codecs);
