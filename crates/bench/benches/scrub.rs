//! Scrub-pass throughput: the whole-cache walk (paper §II-D) and the
//! sparse full-scale interval used by the Monte-Carlo campaigns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sudoku_core::Scheme;
use sudoku_fault::ScrubSchedule;
use sudoku_reliability::montecarlo::{run_interval, McConfig};

fn bench_dense_scrub(c: &mut Criterion) {
    use sudoku_codes::LineData;
    use sudoku_core::{SudokuCache, SudokuConfig};
    c.bench_function("dense_scrub_4096_lines_clean", |b| {
        b.iter_batched(
            || {
                let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, 4096, 64))
                    .expect("valid config");
                for i in 0..4096u64 {
                    let mut d = LineData::zero();
                    d.set_bit((i as usize * 7) % 512, true);
                    cache.write(i, &d);
                }
                cache
            },
            |mut cache| cache.scrub(),
            BatchSize::LargeInput,
        )
    });
}

fn bench_sparse_interval(c: &mut Criterion) {
    let cfg = McConfig {
        scheme: Scheme::Z,
        lines: 1 << 20,
        group: 512,
        ber: 5.3e-6,
        trials: 1,
        seed: 1,
        threads: 1,
        scrub: ScrubSchedule::paper_default(),
    };
    let mut seed = 0u64;
    c.bench_function("sparse_full_scale_interval_64mb", |b| {
        b.iter(|| {
            seed += 1;
            run_interval(&cfg, seed)
        })
    });
}

criterion_group!(scrub, bench_dense_scrub, bench_sparse_interval);
criterion_main!(scrub);
