//! Recovery-path latency: RAID-4 reconstruction, SDR, and cross-hash (Z)
//! recovery on real caches (paper §III-D and §VII-B magnitudes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sudoku_codes::LineData;
use sudoku_core::{Scheme, SudokuCache, SudokuConfig};

fn populated_cache(scheme: Scheme) -> SudokuCache {
    let mut cache =
        SudokuCache::new(SudokuConfig::small(scheme, 4096, 64)).expect("valid bench config");
    for i in 0..4096u64 {
        let mut d = LineData::zero();
        d.set_bit((i as usize * 13) % 512, true);
        cache.write(i, &d);
    }
    cache
}

fn bench_raid4(c: &mut Criterion) {
    c.bench_function("raid4_repair_one_line_group64", |b| {
        b.iter_batched(
            || {
                let mut cache = populated_cache(Scheme::X);
                for bit in [1, 2, 3, 4] {
                    cache.inject_fault(10, bit);
                }
                cache
            },
            |mut cache| cache.scrub_lines(&[10]),
            BatchSize::LargeInput,
        )
    });
}

fn bench_sdr(c: &mut Criterion) {
    c.bench_function("sdr_repair_two_double_fault_lines", |b| {
        b.iter_batched(
            || {
                let mut cache = populated_cache(Scheme::Y);
                cache.inject_fault(0, 5);
                cache.inject_fault(0, 6);
                cache.inject_fault(1, 7);
                cache.inject_fault(1, 8);
                cache
            },
            |mut cache| cache.scrub_lines(&[0, 1]),
            BatchSize::LargeInput,
        )
    });
}

fn bench_crosshash(c: &mut Criterion) {
    c.bench_function("sudoku_z_crosshash_two_triple_fault_lines", |b| {
        b.iter_batched(
            || {
                let mut cache = populated_cache(Scheme::Z);
                for bit in [10, 20, 30] {
                    cache.inject_fault(1, bit);
                }
                for bit in [11, 21, 31] {
                    cache.inject_fault(3, bit);
                }
                cache
            },
            |mut cache| cache.scrub_lines(&[1, 3]),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(correction, bench_raid4, bench_sdr, bench_crosshash);
criterion_main!(correction);
