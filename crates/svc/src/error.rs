//! The typed error surface of the degraded-mode service.
//!
//! Every client-facing operation returns `Result<_, ServiceError>` instead
//! of panicking: a dead shard is an error *for requests routed to it*, not
//! a process abort, and a shut-down service is an error, not a poisoned
//! `expect`. The variants are deliberately few — clients only need to
//! distinguish "this line is gone" (retry elsewhere / surface upstream),
//! "this shard is gone" (the other N−1 still serve), and "the service is
//! gone" (stop sending).

use std::fmt;
use sudoku_core::UncorrectableError;

/// Why a service request could not be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The line's owning shard is quarantined (its worker panicked or its
    /// state mutex was poisoned); requests to it fail fast while the
    /// remaining shards keep serving.
    ShardDown(usize),
    /// The service is shutting down (or already shut down); the request
    /// was not accepted.
    ShuttingDown,
    /// The read was served but the line is detectably uncorrectable — a
    /// DUE, the honest failure mode of the SuDoku ladder.
    Uncorrectable(UncorrectableError),
}

impl ServiceError {
    /// Whether this is a detected-uncorrectable (DUE) outcome, as opposed
    /// to an availability failure.
    pub fn is_due(&self) -> bool {
        matches!(self, ServiceError::Uncorrectable(_))
    }

    /// The quarantined shard, when the error is [`ServiceError::ShardDown`].
    pub fn shard(&self) -> Option<usize> {
        match self {
            ServiceError::ShardDown(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShardDown(s) => write!(f, "shard {s} is quarantined"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Uncorrectable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Uncorrectable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UncorrectableError> for ServiceError {
    fn from(e: UncorrectableError) -> Self {
        ServiceError::Uncorrectable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let down = ServiceError::ShardDown(3);
        assert_eq!(down.to_string(), "shard 3 is quarantined");
        assert_eq!(down.shard(), Some(3));
        assert!(!down.is_due());
        let due = ServiceError::from(UncorrectableError { line: 9 });
        assert!(due.is_due());
        assert_eq!(due.shard(), None);
        assert!(due.to_string().contains("line 9"));
        assert_eq!(
            ServiceError::ShuttingDown.to_string(),
            "service is shutting down"
        );
    }
}
