//! The typed error surface of the degraded-mode service.
//!
//! Every client-facing operation returns `Result<_, ServiceError>` instead
//! of panicking: a dead shard is an error *for requests routed to it*, not
//! a process abort, and a shut-down service is an error, not a poisoned
//! `expect`. The variants are deliberately few — clients only need to
//! distinguish "this line is gone" (retry elsewhere / surface upstream),
//! "this shard is gone" (the other N−1 still serve), and "the service is
//! gone" (stop sending).

use std::fmt;
use sudoku_core::UncorrectableError;

/// Why a service request could not be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The line's owning shard is quarantined (its worker panicked or its
    /// state mutex was poisoned); requests to it fail fast while the
    /// remaining shards keep serving.
    ShardDown(usize),
    /// The service is shutting down (or already shut down); the request
    /// was not accepted.
    ShuttingDown,
    /// The read was served but the line is detectably uncorrectable — a
    /// DUE, the honest failure mode of the SuDoku ladder.
    Uncorrectable(UncorrectableError),
}

impl ServiceError {
    /// Whether this is a detected-uncorrectable (DUE) outcome, as opposed
    /// to an availability failure.
    pub fn is_due(&self) -> bool {
        matches!(self, ServiceError::Uncorrectable(_))
    }

    /// The quarantined shard, when the error is [`ServiceError::ShardDown`].
    pub fn shard(&self) -> Option<usize> {
        match self {
            ServiceError::ShardDown(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShardDown(s) => write!(f, "shard {s} is quarantined"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Uncorrectable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Uncorrectable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UncorrectableError> for ServiceError {
    fn from(e: UncorrectableError) -> Self {
        ServiceError::Uncorrectable(e)
    }
}

/// Why a [`Service`] failed to start (distinct from [`ServiceError`],
/// which covers per-request failures on a *running* service).
///
/// [`Service`]: crate::Service
#[derive(Debug)]
pub enum StartError {
    /// The cache/shard configuration failed validation.
    Config(sudoku_core::ConfigError),
    /// The telemetry plane could not come up (scrape-endpoint bind,
    /// flight-recorder JSONL file creation).
    Telemetry(std::io::Error),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Config(e) => write!(f, "{e}"),
            StartError::Telemetry(e) => write!(f, "telemetry plane failed to start: {e}"),
        }
    }
}

impl std::error::Error for StartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StartError::Config(e) => Some(e),
            StartError::Telemetry(e) => Some(e),
        }
    }
}

impl From<sudoku_core::ConfigError> for StartError {
    fn from(e: sudoku_core::ConfigError) -> Self {
        StartError::Config(e)
    }
}

impl From<std::io::Error> for StartError {
    fn from(e: std::io::Error) -> Self {
        StartError::Telemetry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let down = ServiceError::ShardDown(3);
        assert_eq!(down.to_string(), "shard 3 is quarantined");
        assert_eq!(down.shard(), Some(3));
        assert!(!down.is_due());
        let due = ServiceError::from(UncorrectableError { line: 9 });
        assert!(due.is_due());
        assert_eq!(due.shard(), None);
        assert!(due.to_string().contains("line 9"));
        assert_eq!(
            ServiceError::ShuttingDown.to_string(),
            "service is shutting down"
        );
    }
}
