//! # sudoku-svc
//!
//! The concurrent, sharded SuDoku cache **service**: the single-threaded
//! [`SudokuCache`] of `sudoku-core` partitioned by Hash-1 RAID-Group into
//! `N` shards and put behind worker threads, a background scrub daemon,
//! and a load generator — recovery coexisting with demand traffic, the
//! operating point the paper budgets for in §VII-B.
//!
//! Three layers:
//!
//! * [`ShardedCache`] — the sharded storage engine. Hash-1 groups are
//!   distributed round-robin over shards, so the whole Hash-1 half of the
//!   recovery ladder (ECC-1 → CRC detect → RAID-4 → SDR) is shard-local;
//!   Hash-2 groups cross shards *by construction*, so SuDoku-Z recovery
//!   escalates to a cross-shard coordinator that gathers members from
//!   their owning shards and drives the same [`RepairEngine`] the
//!   single-threaded cache uses. The deterministic whole-cache scrub
//!   replicates the reference fixpoint schedule exactly — `N`-shard scrub
//!   outcomes and `CacheStats` totals are invariant in `N`.
//! * [`Service`] — the live front-end: per-shard bounded request queues
//!   with backpressure, one worker thread per shard, a scrub daemon
//!   ticking every shard with per-shard forked fault injectors, and
//!   graceful drain/shutdown.
//! * [`loadgen`] — replay of `sim::trace` workload mixes (or a zipfian
//!   stream) against a running service at a target request rate, with a
//!   golden-copy oracle that counts silent data corruption.
//! * [`telemetry`] / [`Exporter`] — the live telemetry plane: a lock-free
//!   [`TelemetryRegistry`] every worker updates wait-free, a sampler
//!   thread recording periodic [`TelemetrySnapshot`]s into a bounded
//!   [`FlightRecorder`] ring (and optional JSONL time series), and a
//!   std-only TCP endpoint serving `GET /metrics` (Prometheus text),
//!   `/healthz`, and `/snapshot.json` while the service runs.
//!
//! The service is **degraded-mode tolerant**: nothing on the client path
//! panics. Handle operations return [`ServiceError`]; a shard whose worker
//! panicked (or whose mutex was poisoned) is quarantined behind
//! [`ShardHealth`] while the other N−1 shards keep serving; permanently
//! faulty (stuck-at) cells reassert after every write and repair, and
//! lines the ladder keeps losing to them are remapped to per-shard
//! [`SpareTable`]s. See the [`degraded`] module.
//!
//! [`SudokuCache`]: sudoku_core::SudokuCache
//! [`RepairEngine`]: sudoku_core::RepairEngine

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod degraded;
mod error;
mod exporter;
pub mod loadgen;
pub mod promtext;
mod service;
mod sharded;
mod slot;
pub mod telemetry;
mod view;
pub mod watchdog;

pub use audit::{
    AuditConfig, AuditPlane, AuditSnapshot, F64Gauge, ReliabilityEstimator, ScrubDeadlineTracker,
};
pub use degraded::{DegradedConfig, DegradedStats, ShardHealth, SpareTable};
pub use error::{ServiceError, StartError};
pub use exporter::Exporter;
pub use loadgen::{AddrMode, LoadReport, LoadgenConfig};
pub use service::{ReadReply, Service, ServiceConfig, ServiceHandle, ServiceReport};
pub use sharded::{merge_reports, ShardSession, ShardedCache};
pub use telemetry::{
    Exemplar, FlightRecorder, TelemetryConfig, TelemetryRegistry, TelemetrySnapshot, TraceOutcome,
    TracePath, TraceRecord,
};
pub use watchdog::{ScanObs, Watchdog};
