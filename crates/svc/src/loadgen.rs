//! Load generation against a running [`Service`]: replay of `sim::trace`
//! workload mixes or a zipfian stream at a target request rate, with a
//! golden-copy oracle for silent-data-corruption detection.
//!
//! Each load worker owns a disjoint slice of the line address space
//! (lines `≡ worker (mod workers)`), so its private golden map is
//! authoritative for every line it touches: a read that returns data
//! differing from the golden copy is an SDC — the failure mode SuDoku
//! exists to prevent — while a read error is a (detected) DUE. The
//! address slicing is deliberately orthogonal to the service's Hash-1
//! sharding, so every load worker exercises every shard.

use crate::service::{Service, ServiceHandle, ServiceReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use sudoku_codes::LineData;
use sudoku_sim::{CoreSpec, TraceGen, ZipfGen};

/// How a load worker picks line addresses.
#[derive(Clone, Copy, Debug)]
pub enum AddrMode {
    /// Replay a `sim::trace` synthetic workload shape (APKI, write
    /// fraction, footprint, hot set), folded onto the worker's slice.
    Workload(CoreSpec),
    /// Zipf(θ)-distributed ranks over the worker's slice; writes drawn
    /// i.i.d. with the configured write fraction.
    Zipf {
        /// Skew parameter (0 = uniform; ≈1 = classic Zipf).
        theta: f64,
    },
}

/// Load-generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client workers.
    pub workers: usize,
    /// Requests issued per worker.
    pub requests_per_worker: u64,
    /// Target total request rate in req/s (0 = unpaced, go as fast as
    /// backpressure allows).
    pub target_rps: u64,
    /// Write fraction for [`AddrMode::Zipf`] (workload mode brings its own).
    pub write_frac: f64,
    /// Address generation mode.
    pub mode: AddrMode,
    /// Seed for the per-worker generators.
    pub seed: u64,
}

impl LoadgenConfig {
    /// A small zipfian default: 2 workers, 0.3 write fraction, θ = 0.8.
    pub fn small(requests_per_worker: u64, seed: u64) -> Self {
        LoadgenConfig {
            workers: 2,
            requests_per_worker,
            target_rps: 0,
            write_frac: 0.3,
            mode: AddrMode::Zipf { theta: 0.8 },
            seed,
        }
    }
}

/// End-of-run load report: client-side counts plus the drained service's
/// own report.
#[derive(Debug)]
pub struct LoadReport {
    /// Total requests issued.
    pub requests: u64,
    /// Reads issued.
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
    /// Reads whose data silently differed from the golden copy (must be 0).
    pub sdc: u64,
    /// Reads that returned a detected uncorrectable error.
    pub due: u64,
    /// Requests shed for availability reasons: rejected at the door
    /// (quarantined shard / shutdown) or stranded when a worker died.
    pub shed: u64,
    /// Wall-clock duration of the load phase.
    pub elapsed: Duration,
    /// Achieved request rate.
    pub req_per_sec: f64,
    /// The drained service's report (stats, histograms, scrub counters).
    pub service: ServiceReport,
}

impl LoadReport {
    /// JSON object with the load-side headline numbers and the read-latency
    /// quantiles the soak gates on.
    pub fn to_json(&self) -> String {
        let lat = &self.service.hists.read_latency_ns;
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("requests", self.requests)
            .field_u64("reads", self.reads)
            .field_u64("writes", self.writes)
            .field_u64("sdc", self.sdc)
            .field_u64("due", self.due)
            .field_u64("shed", self.shed)
            .field_f64("elapsed_s", self.elapsed.as_secs_f64())
            .field_f64("req_per_sec", self.req_per_sec)
            .field_u64("p50_read_ns", lat.quantile(0.50))
            .field_u64("p99_read_ns", lat.quantile(0.99))
            .field_u64("p999_read_ns", lat.quantile(0.999))
            .field_raw("service", &self.service.to_json());
        obj.finish()
    }
}

struct WorkerResult {
    reads: u64,
    writes: u64,
    sdc: u64,
    due: u64,
    shed: u64,
}

/// Runs the load against `service`, then drains and shuts it down.
///
/// Consumes the service so the report can include its final state; the
/// returned [`LoadReport`] carries both sides of the run.
pub fn run(service: Service, config: &LoadgenConfig) -> LoadReport {
    let n_lines = service.state().config().geometry.lines();
    let workers = config.workers.max(1) as u64;
    let span = (n_lines / workers).max(1);
    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let handle = service.handle();
                s.spawn(move || load_worker(&handle, config, w, workers, span))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut report = LoadReport {
        requests: 0,
        reads: 0,
        writes: 0,
        sdc: 0,
        due: 0,
        shed: 0,
        elapsed,
        req_per_sec: 0.0,
        service: service.shutdown(),
    };
    for r in &results {
        report.reads += r.reads;
        report.writes += r.writes;
        report.sdc += r.sdc;
        report.due += r.due;
        report.shed += r.shed;
    }
    report.requests = report.reads + report.writes;
    report.req_per_sec = report.requests as f64 / elapsed.as_secs_f64().max(1e-9);
    report
}

/// One client worker: issues its request quota against its own line slice,
/// keeping a golden copy of everything it wrote.
fn load_worker(
    handle: &ServiceHandle,
    config: &LoadgenConfig,
    worker: u64,
    workers: u64,
    span: u64,
) -> WorkerResult {
    let mut result = WorkerResult {
        reads: 0,
        writes: 0,
        sdc: 0,
        due: 0,
        shed: 0,
    };
    let mut golden: HashMap<u64, LineData> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(config.seed ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut zipf = match config.mode {
        AddrMode::Zipf { theta } => Some(ZipfGen::new(span, theta, config.seed ^ (worker << 17))),
        AddrMode::Workload(_) => None,
    };
    let mut trace = match config.mode {
        AddrMode::Workload(spec) => Some(TraceGen::new(spec, worker as u32, config.seed)),
        AddrMode::Zipf { .. } => None,
    };
    // Pacing: each of W workers issues at rps/W, i.e. one request every
    // W/rps seconds.
    let pace = (config.target_rps > 0)
        .then(|| Duration::from_secs_f64(workers as f64 / config.target_rps as f64));
    let mut next_due = Instant::now();
    for i in 0..config.requests_per_worker {
        if let Some(pace) = pace {
            let now = Instant::now();
            if now < next_due {
                std::thread::sleep(next_due - now);
            }
            next_due += pace;
        }
        // The worker's slice is lines ≡ worker (mod workers): disjoint
        // between workers, interleaved across shards.
        let (rank, is_write) = match (&mut zipf, &mut trace) {
            (Some(z), _) => (z.next_rank(), rng.gen_bool(config.write_frac)),
            (_, Some(t)) => {
                let access = t.next_access();
                (access.line_addr % span, access.is_write)
            }
            _ => unreachable!("one generator is always configured"),
        };
        let line = rank * workers + worker;
        if is_write {
            let mut data = LineData::zero();
            data.set_bit((line as usize).wrapping_mul(31) % 512, true);
            data.set_bit((i as usize).wrapping_mul(7) % 512, true);
            match handle.write(line, &data) {
                Ok(()) => {
                    golden.insert(line, data);
                    result.writes += 1;
                }
                // Rejected at the door: nothing was accepted, the golden
                // copy stays authoritative for the line's last good value.
                Err(_) => result.shed += 1,
            }
        } else {
            // Slot-completed read: clean lines are served lock-free off the
            // seqlock view without ever touching the shard queue; dirty or
            // suspect lines fall through to a queued packet whose completion
            // slot resolves even if the shard's worker dies mid-request.
            match handle.read(line) {
                Ok(data) => {
                    result.reads += 1;
                    let expect = golden.get(&line).copied().unwrap_or_else(LineData::zero);
                    if data != expect {
                        result.sdc += 1;
                    }
                }
                Err(e) if e.is_due() => {
                    result.reads += 1;
                    result.due += 1;
                }
                // Availability error: rejected at the door or stranded by a
                // dying worker.
                Err(_) => result.shed += 1,
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn unpaced_zipf_load_has_no_sdc() {
        let mut svc_config = ServiceConfig::small(512, 4, 0.0, 7);
        svc_config.scrub_every = None;
        let service = Service::start(svc_config).unwrap();
        let report = run(service, &LoadgenConfig::small(500, 7));
        assert_eq!(report.requests, 1000);
        assert_eq!(report.sdc, 0);
        assert_eq!(report.due, 0);
        assert_eq!(report.shed, 0);
        assert_eq!(report.service.reads, report.reads);
        assert!(report.req_per_sec > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"sdc\":0"), "{json}");
        assert!(json.contains("\"p99_read_ns\""), "{json}");
    }

    #[test]
    fn paced_workload_mode_roughly_honors_rate() {
        let mut svc_config = ServiceConfig::small(512, 2, 0.0, 8);
        svc_config.scrub_every = None;
        let service = Service::start(svc_config).unwrap();
        let spec = CoreSpec {
            apki: 20.0,
            write_frac: 0.4,
            footprint_lines: 128,
            hot_lines: 32,
            hot_frac: 0.7,
        };
        let config = LoadgenConfig {
            workers: 2,
            requests_per_worker: 100,
            target_rps: 4000,
            write_frac: 0.0,
            mode: AddrMode::Workload(spec),
            seed: 8,
        };
        let report = run(service, &config);
        assert_eq!(report.requests, 200);
        assert_eq!(report.sdc, 0);
        // 200 requests at 4000 req/s should take at least ~50 ms.
        assert!(
            report.elapsed >= Duration::from_millis(40),
            "{:?}",
            report.elapsed
        );
    }
}
