//! The std-only scrape endpoint of the telemetry plane: a tiny HTTP/1.x
//! server on `127.0.0.1` answering
//!
//! * `GET /metrics` — a fresh [`TelemetrySnapshot`] (including the audit
//!   plane's deadline/burn/alert metrics) in Prometheus text exposition
//!   format,
//! * `GET /healthz` — `200` with a small JSON body while every shard is up
//!   and the scrub daemon alive, `503` with the quarantined-shard list the
//!   moment anything is down (computed **live** from [`ShardHealth`], not
//!   from the last sampler tick, so detection latency is a scrape away).
//!   The body also carries the watchdog's `degraded_reasons` — soft
//!   conditions (tick lag, queue saturation, budget burn) that do **not**
//!   flip the status code, so liveness probes never flap on them,
//! * `GET /snapshot.json` — the flight recorder's most recent snapshot
//!   (or a fresh capture before the sampler's first tick),
//! * `GET /alerts.json[?after=SEQ]` — the watchdog's structured alert
//!   stream; `after` returns only alerts with `seq > SEQ`, so pollers can
//!   tail the stream without re-reading it,
//! * `GET /traces.json` — the sampled causal traces plus the latency
//!   histogram exemplars (per-bucket most-recent trace IDs) that link a
//!   p999 bucket to a concrete request.
//!
//! No HTTP library: the accept loop parses exactly the request line,
//! answers with `Content-Length` + `Connection: close`, and serves one
//! request per connection. Malformed request lines get `400`, non-`GET`
//! methods `405`, unknown paths `404` — a broken scraper sees an honest
//! status, never a silent hangup. That is all `curl`, Prometheus, and the
//! CI smoke jobs need, and it keeps the no-new-dependencies invariant.
//!
//! [`ShardHealth`]: crate::ShardHealth

use crate::audit::AuditPlane;
use crate::sharded::ShardedCache;
use crate::telemetry::{FlightRecorder, TelemetryRegistry, TelemetrySnapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use sudoku_obs::json::JsonObject;

/// How long the accept loop naps when no connection is pending.
const ACCEPT_NAP: Duration = Duration::from_millis(5);

/// Per-connection read/write timeout: a stuck scraper must not wedge the
/// exporter thread.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The running scrape endpoint. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Exporter {
    /// Binds `127.0.0.1:port` (0 = ephemeral; read the chosen port back
    /// via [`Exporter::addr`]) and starts the serving thread.
    ///
    /// # Errors
    ///
    /// The bind error, verbatim (port in use, no permission).
    pub fn start(
        port: u16,
        state: Arc<ShardedCache>,
        registry: Arc<TelemetryRegistry>,
        recorder: Arc<FlightRecorder>,
        plane: Arc<AuditPlane>,
    ) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            serve_loop(
                &listener,
                &state,
                &registry,
                &recorder,
                &plane,
                &thread_stop,
            );
        });
        Ok(Exporter {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn serve_loop(
    listener: &TcpListener,
    state: &ShardedCache,
    registry: &TelemetryRegistry,
    recorder: &FlightRecorder,
    plane: &AuditPlane,
    stop: &AtomicBool,
) {
    // Scrape-triggered snapshots get their own (negative-free, but
    // distinct) sequence space: the sampler numbers the flight-recorder
    // ring; these number ad-hoc captures.
    let scrape_seq = AtomicU64::new(0);
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection; any per-connection error is
                // the scraper's problem, never the service's.
                let _ = serve_connection(stream, state, registry, recorder, plane, &scrape_seq);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_NAP);
            }
            Err(_) => std::thread::sleep(ACCEPT_NAP),
        }
    }
}

/// What the request parser made of the request line.
enum Request {
    /// A plausible `GET <target> HTTP/1.x` line.
    Get(String),
    /// A well-formed request line with any other method.
    OtherMethod(String),
    /// Anything else: truncated, oversized, empty, or not HTTP.
    Malformed,
}

fn serve_connection(
    mut stream: TcpStream,
    state: &ShardedCache,
    registry: &TelemetryRegistry,
    recorder: &FlightRecorder,
    plane: &AuditPlane,
    scrape_seq: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let target = match read_request(&mut stream)? {
        Request::Get(target) => target,
        Request::OtherMethod(method) => {
            return respond(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain",
                &format!("method {method} not allowed; this endpoint is GET-only\n"),
            );
        }
        Request::Malformed => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "malformed request line\n",
            );
        }
    };
    // `?query` strings only matter to /alerts.json; every other endpoint
    // ignores them rather than 404ing a scraper that appends one.
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target.as_str(), ""),
    };
    let (status, content_type, body) = match path {
        "/metrics" => {
            let seq = scrape_seq.fetch_add(1, Ordering::Relaxed);
            let snap = TelemetrySnapshot::capture_with_audit(seq, state, registry, Some(plane));
            ("200 OK", "text/plain; version=0.0.4", snap.to_prometheus())
        }
        "/healthz" => {
            // Live health, straight off the shared atomics — a worker
            // panic is visible here the instant quarantine lands, without
            // waiting for a sampler tick. The status code is a pure
            // function of quarantine + daemon death; the watchdog's soft
            // degradation reasons ride in the body only, so probes don't
            // flap on a tick-lag blip.
            let quarantined = state.health().quarantined();
            let daemon_dead = registry.daemon_dead.get() != 0;
            let healthy = quarantined.is_empty() && !daemon_dead;
            let reasons: Vec<String> = plane
                .degraded_reasons()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            let mut obj = JsonObject::new();
            obj.field_str("status", if healthy { "ok" } else { "degraded" })
                .field_array_u64("quarantined", quarantined.iter().map(|&s| s as u64))
                .field_u64("shards_up", state.health().n_up() as u64)
                .field_u64("shards", state.n_shards() as u64)
                .field_bool("daemon_dead", daemon_dead)
                .field_raw("degraded_reasons", &format!("[{}]", reasons.join(",")))
                .field_u64("alerts_total", plane.alerts.total())
                .field_u64("alerts_critical", plane.alerts.criticals());
            let status = if healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "application/json", obj.finish())
        }
        "/snapshot.json" => {
            let snap = recorder.latest().unwrap_or_else(|| {
                let seq = scrape_seq.fetch_add(1, Ordering::Relaxed);
                TelemetrySnapshot::capture_with_audit(seq, state, registry, Some(plane))
            });
            ("200 OK", "application/json", snap.to_json())
        }
        "/alerts.json" => {
            // `?after=SEQ` tails the stream: only alerts with seq > SEQ.
            // A malformed value is a client bug worth surfacing, not
            // guessing around.
            match parse_after(query) {
                Ok(after) => ("200 OK", "application/json", alerts_json(plane, after)),
                Err(bad) => (
                    "400 Bad Request",
                    "text/plain",
                    format!("bad query parameter: {bad}\n"),
                ),
            }
        }
        "/traces.json" => ("200 OK", "application/json", traces_json(registry)),
        _ => (
            "404 Not Found",
            "text/plain",
            format!("no such endpoint: {path}\n"),
        ),
    };
    respond(&mut stream, status, content_type, &body)
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Parses the optional `after=SEQ` pair out of a query string. Unknown
/// keys are ignored (scrapers add cachebusters); a non-numeric `after` is
/// an error carrying the offending pair.
fn parse_after(query: &str) -> Result<u64, String> {
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        if let Some(value) = pair.strip_prefix("after=") {
            return value.parse::<u64>().map_err(|_| pair.to_string());
        }
    }
    Ok(0)
}

/// The `/alerts.json` body: log totals plus every retained alert with
/// `seq > after`, oldest first.
fn alerts_json(plane: &AuditPlane, after: u64) -> String {
    let alerts: Vec<String> = plane
        .alerts
        .since(after)
        .iter()
        .map(|a| a.to_json())
        .collect();
    let mut obj = JsonObject::new();
    obj.field_u64("total", plane.alerts.total())
        .field_u64("criticals", plane.alerts.criticals())
        .field_u64("dropped", plane.alerts.dropped())
        .field_u64("after", after)
        .field_raw("alerts", &format!("[{}]", alerts.join(",")));
    obj.finish()
}

/// The `/traces.json` body: the sampled causal traces (oldest first) plus
/// the read/write latency-histogram exemplars — for each bucket that has
/// one, the most recent trace ID that landed there and the bucket's
/// `le` upper bound in ns.
fn traces_json(registry: &TelemetryRegistry) -> String {
    let traces: Vec<String> = registry
        .recent_traces()
        .iter()
        .map(|t| t.to_json())
        .collect();
    let exemplar_json = |slots: Vec<(usize, u64, u64)>| {
        let items: Vec<String> = slots
            .into_iter()
            .map(|(bucket, le_ns, trace)| {
                let mut obj = JsonObject::new();
                obj.field_u64("bucket", bucket as u64)
                    .field_u64("le_ns", le_ns)
                    .field_u64("trace", trace);
                obj.finish()
            })
            .collect();
        format!("[{}]", items.join(","))
    };
    let (read_ex, write_ex) = registry.exemplars();
    let mut obj = JsonObject::new();
    obj.field_u64("traces_issued", registry.traces_issued())
        .field_raw("traces", &format!("[{}]", traces.join(",")))
        .field_raw("read_exemplars", &exemplar_json(read_ex))
        .field_raw("write_exemplars", &exemplar_json(write_ex));
    obj.finish()
}

/// Reads the request head and classifies its request line. Scrapers send
/// tiny heads, so a couple of reads suffice; a head that fills the buffer
/// without completing its request line is malformed (no legitimate
/// scrape target is 2 KiB long).
fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut buf = [0u8; 2048];
    let mut used = 0usize;
    let mut complete = false;
    loop {
        let n = match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => return Err(e),
        };
        used += n;
        if buf[..used].windows(2).any(|w| w == b"\r\n") {
            complete = true;
            break;
        }
        if used == buf.len() {
            break; // oversized request line
        }
    }
    if !complete {
        return Ok(Request::Malformed);
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    Ok(match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(path), Some(version)) if version.starts_with("HTTP/") => {
            Request::Get(path.to_string())
        }
        (Some(method), Some(_path), Some(version))
            if version.starts_with("HTTP/") && method.chars().all(|c| c.is_ascii_uppercase()) =>
        {
            Request::OtherMethod(method.to_string())
        }
        _ => Request::Malformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use sudoku_core::{Scheme, SudokuConfig};

    fn test_exporter() -> (Exporter, Arc<ShardedCache>) {
        let (exporter, state, _plane) = test_exporter_with_plane();
        (exporter, state)
    }

    fn test_exporter_with_plane() -> (Exporter, Arc<ShardedCache>, Arc<AuditPlane>) {
        let state =
            Arc::new(ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap());
        let registry = Arc::new(TelemetryRegistry::new(2));
        registry.reads.add(5);
        let recorder = Arc::new(FlightRecorder::new(8));
        let plane =
            Arc::new(AuditPlane::new(state.plan(), AuditConfig::default()).expect("no jsonl"));
        let exporter = Exporter::start(
            0,
            Arc::clone(&state),
            registry,
            recorder,
            Arc::clone(&plane),
        )
        .expect("ephemeral bind");
        (exporter, state, plane)
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (exporter, _state) = test_exporter();
        let (head, body) = get(exporter.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("sudoku_reads_total 5"), "{body}");
        assert!(
            body.contains("# TYPE sudoku_read_latency_ns histogram"),
            "{body}"
        );
    }

    #[test]
    fn healthz_flips_to_503_on_quarantine() {
        let (exporter, state) = test_exporter();
        let (head, body) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        state.health().quarantine(1);
        let (head, body) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(body.contains("\"quarantined\":[1]"), "{body}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
    }

    #[test]
    fn snapshot_endpoint_serves_json_even_before_first_sample() {
        let (exporter, _state) = test_exporter();
        let (head, body) = get(exporter.addr(), "/snapshot.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(
            body.starts_with('{') && body.trim_end().ends_with('}'),
            "{body}"
        );
        assert!(body.contains("\"reads\":5"), "{body}");
    }

    #[test]
    fn unknown_path_is_404_and_exporter_survives() {
        let (exporter, _state) = test_exporter();
        let (head, _) = get(exporter.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        // Still serving afterwards.
        let (head, _) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    fn raw(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to exporter");
        stream.write_all(request).unwrap();
        // Half-close so a request with no CRLF terminator reads as EOF on
        // the server instead of waiting out the IO timeout.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    #[test]
    fn malformed_requests_get_400_not_a_hangup() {
        let (exporter, _state) = test_exporter();
        // Garbage that never completes a request line.
        let resp = raw(exporter.addr(), b"definitely not http");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // A request line with no HTTP version.
        let resp = raw(exporter.addr(), b"GET /metrics\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // An oversized request line (fills the head buffer, never CRLF).
        let resp = raw(exporter.addr(), &vec![b'a'; 4096]);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // Still serving afterwards.
        let (head, _) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn non_get_methods_get_405() {
        let (exporter, _state) = test_exporter();
        let resp = raw(
            exporter.addr(),
            b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        let resp = raw(exporter.addr(), b"DELETE /alerts.json HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    }

    #[test]
    fn metrics_include_audit_plane_families() {
        let (exporter, _state, _plane) = test_exporter_with_plane();
        let (head, body) = get(exporter.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        for family in [
            "sudoku_scrub_deadline_misses_total",
            "sudoku_achieved_scrub_interval_ns",
            "sudoku_scrub_staleness_ns",
            "sudoku_observed_ber",
            "sudoku_error_budget_burn_fast",
            "sudoku_alerts_total",
        ] {
            assert!(body.contains(family), "missing {family} in:\n{body}");
        }
    }

    #[test]
    fn alerts_endpoint_serves_and_tails_the_stream() {
        use sudoku_obs::{AlertClass, Severity};
        let (exporter, _state, plane) = test_exporter_with_plane();
        plane.alerts.raise(
            AlertClass::TickLagBreach,
            Severity::Warning,
            Some(1),
            5e6,
            2e6,
            "tick started 5 ms late (budget 2 ms)",
        );
        plane.alerts.raise(
            AlertClass::DaemonDead,
            Severity::Critical,
            None,
            1.0,
            0.0,
            "scrub daemon died",
        );
        let (head, body) = get(exporter.addr(), "/alerts.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"total\":2"), "{body}");
        assert!(body.contains("\"class\":\"tick_lag_breach\""), "{body}");
        assert!(body.contains("\"class\":\"daemon_dead\""), "{body}");
        // Tail past the first alert: only the second comes back.
        let (_, body) = get(exporter.addr(), "/alerts.json?after=1");
        assert!(!body.contains("tick_lag_breach"), "{body}");
        assert!(body.contains("daemon_dead"), "{body}");
        // A malformed `after` is the client's bug, reported as such.
        let (head, _) = get(exporter.addr(), "/alerts.json?after=banana");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }

    #[test]
    fn healthz_body_carries_degraded_reasons_without_status_change() {
        let (exporter, _state, plane) = test_exporter_with_plane();
        plane.set_degraded_reasons(vec!["tick_lag_breach".into()]);
        let (head, body) = get(exporter.addr(), "/healthz");
        // Soft conditions never flip the probe status.
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(
            body.contains("\"degraded_reasons\":[\"tick_lag_breach\"]"),
            "{body}"
        );
    }

    #[test]
    fn traces_endpoint_serves_traces_and_exemplars() {
        let state =
            Arc::new(ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap());
        let registry = Arc::new(TelemetryRegistry::new(2));
        registry.note_request(crate::telemetry::TraceRecord {
            trace: 0,
            shard: 0,
            write: false,
            path: crate::telemetry::TracePath::Inline,
            outcome: crate::telemetry::TraceOutcome::Ok,
            queue_wait_ns: 0,
            service_ns: 1000,
            h2_ns: 0,
        });
        let recorder = Arc::new(FlightRecorder::new(8));
        let plane =
            Arc::new(AuditPlane::new(state.plan(), AuditConfig::default()).expect("no jsonl"));
        let exporter = Exporter::start(0, state, registry, recorder, plane).expect("bind");
        let (head, body) = get(exporter.addr(), "/traces.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"traces_issued\":0"), "{body}");
        assert!(body.contains("\"path\":\"inline\""), "{body}");
        assert!(body.contains("\"read_exemplars\":[{\"bucket\":"), "{body}");
        assert!(body.contains("\"trace\":0"), "{body}");
    }
}
