//! The std-only scrape endpoint of the telemetry plane: a tiny HTTP/1.x
//! server on `127.0.0.1` answering
//!
//! * `GET /metrics` — a fresh [`TelemetrySnapshot`] in Prometheus text
//!   exposition format,
//! * `GET /healthz` — `200` with a small JSON body while every shard is up
//!   and the scrub daemon alive, `503` with the quarantined-shard list the
//!   moment anything is down (computed **live** from [`ShardHealth`], not
//!   from the last sampler tick, so detection latency is a scrape away),
//! * `GET /snapshot.json` — the flight recorder's most recent snapshot
//!   (or a fresh capture before the sampler's first tick).
//!
//! No HTTP library: the accept loop parses exactly the request line of a
//! `GET`, answers with `Content-Length` + `Connection: close`, and serves
//! one request per connection. That is all `curl`, Prometheus, and the CI
//! smoke jobs need, and it keeps the no-new-dependencies invariant.
//!
//! [`ShardHealth`]: crate::ShardHealth

use crate::sharded::ShardedCache;
use crate::telemetry::{FlightRecorder, TelemetryRegistry, TelemetrySnapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use sudoku_obs::json::JsonObject;

/// How long the accept loop naps when no connection is pending.
const ACCEPT_NAP: Duration = Duration::from_millis(5);

/// Per-connection read/write timeout: a stuck scraper must not wedge the
/// exporter thread.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The running scrape endpoint. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Exporter {
    /// Binds `127.0.0.1:port` (0 = ephemeral; read the chosen port back
    /// via [`Exporter::addr`]) and starts the serving thread.
    ///
    /// # Errors
    ///
    /// The bind error, verbatim (port in use, no permission).
    pub fn start(
        port: u16,
        state: Arc<ShardedCache>,
        registry: Arc<TelemetryRegistry>,
        recorder: Arc<FlightRecorder>,
    ) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            serve_loop(&listener, &state, &registry, &recorder, &thread_stop);
        });
        Ok(Exporter {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn serve_loop(
    listener: &TcpListener,
    state: &ShardedCache,
    registry: &TelemetryRegistry,
    recorder: &FlightRecorder,
    stop: &AtomicBool,
) {
    // Scrape-triggered snapshots get their own (negative-free, but
    // distinct) sequence space: the sampler numbers the flight-recorder
    // ring; these number ad-hoc captures.
    let scrape_seq = AtomicU64::new(0);
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection; any per-connection error is
                // the scraper's problem, never the service's.
                let _ = serve_connection(stream, state, registry, recorder, &scrape_seq);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_NAP);
            }
            Err(_) => std::thread::sleep(ACCEPT_NAP),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    state: &ShardedCache,
    registry: &TelemetryRegistry,
    recorder: &FlightRecorder,
    scrape_seq: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let path = match read_request_path(&mut stream)? {
        Some(path) => path,
        None => return Ok(()), // unparseable; just hang up
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => {
            let seq = scrape_seq.fetch_add(1, Ordering::Relaxed);
            let snap = TelemetrySnapshot::capture(seq, state, registry);
            ("200 OK", "text/plain; version=0.0.4", snap.to_prometheus())
        }
        "/healthz" => {
            // Live health, straight off the shared atomics — a worker
            // panic is visible here the instant quarantine lands, without
            // waiting for a sampler tick.
            let quarantined = state.health().quarantined();
            let daemon_dead = registry.daemon_dead.get() != 0;
            let healthy = quarantined.is_empty() && !daemon_dead;
            let mut obj = JsonObject::new();
            obj.field_str("status", if healthy { "ok" } else { "degraded" })
                .field_array_u64("quarantined", quarantined.iter().map(|&s| s as u64))
                .field_u64("shards_up", state.health().n_up() as u64)
                .field_u64("shards", state.n_shards() as u64)
                .field_bool("daemon_dead", daemon_dead);
            let status = if healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "application/json", obj.finish())
        }
        "/snapshot.json" => {
            let snap = recorder.latest().unwrap_or_else(|| {
                let seq = scrape_seq.fetch_add(1, Ordering::Relaxed);
                TelemetrySnapshot::capture(seq, state, registry)
            });
            ("200 OK", "application/json", snap.to_json())
        }
        _ => (
            "404 Not Found",
            "text/plain",
            format!("no such endpoint: {path}\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads the request head and returns the `GET` target path, or `None`
/// for anything that is not a plausible `GET <path> HTTP/1.x` line.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 2048];
    let mut used = 0usize;
    // Read until the end of the request line; scrapers send tiny heads,
    // so a couple of reads suffice. Stop at buffer capacity regardless.
    loop {
        let n = match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => return Err(e),
        };
        used += n;
        if buf[..used].windows(2).any(|w| w == b"\r\n") || used == buf.len() {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_core::{Scheme, SudokuConfig};

    fn test_exporter() -> (Exporter, Arc<ShardedCache>) {
        let state =
            Arc::new(ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap());
        let registry = Arc::new(TelemetryRegistry::new(2));
        registry.reads.add(5);
        let recorder = Arc::new(FlightRecorder::new(8));
        let exporter =
            Exporter::start(0, Arc::clone(&state), registry, recorder).expect("ephemeral bind");
        (exporter, state)
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (exporter, _state) = test_exporter();
        let (head, body) = get(exporter.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("sudoku_reads_total 5"), "{body}");
        assert!(
            body.contains("# TYPE sudoku_read_latency_ns histogram"),
            "{body}"
        );
    }

    #[test]
    fn healthz_flips_to_503_on_quarantine() {
        let (exporter, state) = test_exporter();
        let (head, body) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        state.health().quarantine(1);
        let (head, body) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(body.contains("\"quarantined\":[1]"), "{body}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
    }

    #[test]
    fn snapshot_endpoint_serves_json_even_before_first_sample() {
        let (exporter, _state) = test_exporter();
        let (head, body) = get(exporter.addr(), "/snapshot.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(
            body.starts_with('{') && body.trim_end().ends_with('}'),
            "{body}"
        );
        assert!(body.contains("\"reads\":5"), "{body}");
    }

    #[test]
    fn unknown_path_is_404_and_exporter_survives() {
        let (exporter, _state) = test_exporter();
        let (head, _) = get(exporter.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        // Still serving afterwards.
        let (head, _) = get(exporter.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }
}
