//! The live service front-end: per-shard worker threads behind bounded
//! request queues, a background scrub daemon with per-shard forked fault
//! injectors, and graceful drain/shutdown.
//!
//! Queueing/backpressure semantics: each shard has one bounded MPSC queue
//! ([`std::sync::mpsc::sync_channel`]); producers block when a shard's
//! queue is full, so a hot shard throttles its own clients rather than
//! growing without bound. The queue is FIFO, which is also what makes
//! shutdown a *drain*: the shutdown marker is enqueued last, so every
//! request accepted before it is fully served first.
//!
//! The scrub daemon ticks shards round-robin on the configured interval:
//! inject (per-shard decorrelated [`FaultInjector::fork`] streams, so
//! concurrent injection is reproducible regardless of thread
//! interleaving), then a shard-local Hash-1 scrub, then cross-shard
//! escalation of whatever the shard could not resolve alone.

use crate::sharded::ShardedCache;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sudoku_codes::LineData;
use sudoku_core::{CacheStats, ConfigError, Recorder, ShardPlan, SudokuConfig, UncorrectableError};
use sudoku_fault::FaultInjector;
use sudoku_obs::{RecoveryHistograms, ServiceHistograms};

/// Configuration of a running [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The cache geometry and scheme (the service applies
    /// [`SudokuConfig::with_deferred_hash2`] internally per shard).
    pub cache: SudokuConfig,
    /// Number of shards = number of worker threads.
    pub n_shards: usize,
    /// Bound of each shard's request queue (producers block when full).
    pub queue_depth: usize,
    /// Scrub daemon tick period; `None` disables the daemon.
    pub scrub_every: Option<Duration>,
    /// Per-interval transient bit error rate injected by the daemon
    /// (0.0 = scrub without injection).
    pub ber: f64,
    /// Master seed; per-shard injectors fork decorrelated streams from it.
    pub seed: u64,
}

impl ServiceConfig {
    /// A small functional-test configuration: SuDoku-Z, `lines` lines in
    /// groups of 16, 4 shards, a 2 ms scrub tick.
    pub fn small(lines: u64, n_shards: usize, ber: f64, seed: u64) -> Self {
        ServiceConfig {
            cache: SudokuConfig::small(sudoku_core::Scheme::Z, lines, 16),
            n_shards,
            queue_depth: 64,
            scrub_every: Some(Duration::from_millis(2)),
            ber,
            seed,
        }
    }
}

/// One demand request to a shard worker.
enum Request {
    Read {
        line: u64,
        enqueued: Instant,
        reply: Sender<ReadReply>,
    },
    Write {
        line: u64,
        data: LineData,
        enqueued: Instant,
    },
    /// Drain marker: the worker exits after serving everything before it.
    Shutdown,
}

/// The answer to a [`ServiceHandle`] read.
#[derive(Clone, Copy, Debug)]
pub struct ReadReply {
    /// The line that was read.
    pub line: u64,
    /// The recovered data, or a DUE.
    pub result: Result<LineData, UncorrectableError>,
}

#[derive(Clone, Copy, Debug, Default)]
struct WorkerCounters {
    reads: u64,
    writes: u64,
    escalated_reads: u64,
    due_reads: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct DaemonCounters {
    ticks: u64,
    injected_lines: u64,
    escalations: u64,
    escalated_lines: u64,
    unresolved_lines: u64,
}

/// End-of-run summary assembled by [`Service::shutdown`].
#[derive(Debug)]
pub struct ServiceReport {
    /// Shard count the service ran with.
    pub shards: usize,
    /// Aggregate cache counters (all shards + coordinator).
    pub stats: CacheStats,
    /// Per-shard cache counters.
    pub per_shard: Vec<CacheStats>,
    /// Service-level latency/queue-depth histograms (workers + daemon).
    pub hists: ServiceHistograms,
    /// Recovery-ladder histograms harvested from every shard recorder.
    pub recovery_hists: RecoveryHistograms,
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// Demand reads that needed cross-shard escalation.
    pub escalated_reads: u64,
    /// Demand reads that remained uncorrectable (DUE).
    pub due_reads: u64,
    /// Scrub daemon ticks completed (one tick = one shard).
    pub scrub_ticks: u64,
    /// Lines faulted by the daemon's injectors.
    pub injected_lines: u64,
    /// Cross-shard escalations triggered by scrub leftovers.
    pub escalations: u64,
    /// Lines handed to those escalations.
    pub escalated_lines: u64,
    /// Lines still unresolved after escalation (scrub-detected DUEs).
    pub unresolved_lines: u64,
}

impl ServiceReport {
    /// Uncorrected lines from any path (demand DUEs + scrub DUEs).
    pub fn total_due(&self) -> u64 {
        self.due_reads + self.unresolved_lines
    }

    /// JSON object with the headline counters and latency quantiles.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("shards", self.shards as u64)
            .field_u64("reads", self.reads)
            .field_u64("writes", self.writes)
            .field_u64("escalated_reads", self.escalated_reads)
            .field_u64("due_reads", self.due_reads)
            .field_u64("scrub_ticks", self.scrub_ticks)
            .field_u64("injected_lines", self.injected_lines)
            .field_u64("escalations", self.escalations)
            .field_u64("escalated_lines", self.escalated_lines)
            .field_u64("unresolved_lines", self.unresolved_lines)
            .field_raw("stats", &self.stats.to_json())
            .field_raw("service_hists", &self.hists.to_json());
        obj.finish()
    }
}

/// A cloneable client of a running [`Service`]: routes each request to the
/// owning shard's queue, blocking when that queue is full (backpressure).
#[derive(Clone)]
pub struct ServiceHandle {
    plan: ShardPlan,
    senders: Vec<SyncSender<Request>>,
    depths: Arc<Vec<AtomicUsize>>,
}

impl ServiceHandle {
    /// Enqueues a write for `line`'s shard, blocking on a full queue.
    pub fn write(&self, line: u64, data: &LineData) {
        let s = self.plan.shard_of_line(line);
        self.depths[s].fetch_add(1, Ordering::Relaxed);
        self.senders[s]
            .send(Request::Write {
                line,
                data: *data,
                enqueued: Instant::now(),
            })
            .expect("service is shut down");
    }

    /// Enqueues a read whose reply goes to `reply` (a caller-owned
    /// channel, so a worker thread can keep several reads in flight).
    pub fn read_to(&self, line: u64, reply: &Sender<ReadReply>) {
        let s = self.plan.shard_of_line(line);
        self.depths[s].fetch_add(1, Ordering::Relaxed);
        self.senders[s]
            .send(Request::Read {
                line,
                enqueued: Instant::now(),
                reply: reply.clone(),
            })
            .expect("service is shut down");
    }

    /// Blocking read convenience: enqueue, wait for the reply.
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] when even cross-shard recovery failed (DUE).
    pub fn read(&self, line: u64) -> Result<LineData, UncorrectableError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.read_to(line, &tx);
        rx.recv().expect("service is shut down").result
    }

    /// Current depth of each shard's request queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.depths
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }
}

/// The running concurrent sharded cache service.
///
/// # Examples
///
/// ```
/// use sudoku_svc::{Service, ServiceConfig};
/// use sudoku_codes::LineData;
///
/// let service = Service::start(ServiceConfig::small(256, 4, 0.0, 42))?;
/// let handle = service.handle();
/// let mut data = LineData::zero();
/// data.set_bit(9, true);
/// handle.write(17, &data);
/// assert_eq!(handle.read(17)?, data);
/// let report = service.shutdown();
/// assert_eq!(report.writes, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Service {
    state: Arc<ShardedCache>,
    senders: Vec<SyncSender<Request>>,
    depths: Arc<Vec<AtomicUsize>>,
    workers: Vec<JoinHandle<(ServiceHistograms, WorkerCounters)>>,
    daemon: Option<JoinHandle<(ServiceHistograms, DaemonCounters)>>,
    stop: Arc<AtomicBool>,
}

impl Service {
    /// Starts the shard workers (and the scrub daemon, when configured).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from cache/shard validation.
    pub fn start(config: ServiceConfig) -> Result<Self, ConfigError> {
        let state = Arc::new(ShardedCache::new(config.cache, config.n_shards)?);
        let depths = Arc::new(
            (0..config.n_shards)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let mut senders = Vec::with_capacity(config.n_shards);
        let mut workers = Vec::with_capacity(config.n_shards);
        for shard in 0..config.n_shards {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            senders.push(tx);
            let state = Arc::clone(&state);
            let depths = Arc::clone(&depths);
            workers.push(std::thread::spawn(move || {
                worker_loop(&state, shard, &rx, &depths[shard])
            }));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let daemon = config.scrub_every.map(|tick| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let master = FaultInjector::new(config.ber, config.seed);
            std::thread::spawn(move || daemon_loop(&state, tick, &master, &stop))
        });
        Ok(Service {
            state,
            senders,
            depths,
            workers,
            daemon,
            stop,
        })
    }

    /// A new client handle (cheap to clone, safe to share across threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            plan: *self.state.plan(),
            senders: self.senders.clone(),
            depths: Arc::clone(&self.depths),
        }
    }

    /// The sharded storage engine behind the service (for direct
    /// inspection in tests; demand traffic should go through handles).
    pub fn state(&self) -> &Arc<ShardedCache> {
        &self.state
    }

    /// Graceful drain and shutdown: stops the scrub daemon, enqueues a
    /// drain marker behind every already-accepted request, joins all
    /// threads, and assembles the end-of-run report. Every request
    /// accepted before the call is fully served.
    pub fn shutdown(self) -> ServiceReport {
        // 1. Stop the daemon first so no new scrub work races the drain.
        self.stop.store(true, Ordering::Relaxed);
        let (mut hists, mut daemon_counters) =
            (ServiceHistograms::default(), DaemonCounters::default());
        if let Some(handle) = self.daemon {
            let (h, c) = handle.join().expect("scrub daemon panicked");
            hists.merge(&h);
            daemon_counters = c;
        }
        // 2. Drain the shards: the FIFO queue serves everything enqueued
        //    before the marker.
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        drop(self.senders);
        let mut counters = WorkerCounters::default();
        for worker in self.workers {
            let (h, c) = worker.join().expect("shard worker panicked");
            hists.merge(&h);
            counters.reads += c.reads;
            counters.writes += c.writes;
            counters.escalated_reads += c.escalated_reads;
            counters.due_reads += c.due_reads;
        }
        // 3. Harvest telemetry and counters from the quiesced engine.
        let mut master = Recorder::unbounded();
        self.state.harvest_recorders(&mut master);
        ServiceReport {
            shards: self.state.n_shards(),
            stats: self.state.stats(),
            per_shard: self.state.shard_stats(),
            hists,
            recovery_hists: master.hists,
            reads: counters.reads,
            writes: counters.writes,
            escalated_reads: counters.escalated_reads,
            due_reads: counters.due_reads,
            scrub_ticks: daemon_counters.ticks,
            injected_lines: daemon_counters.injected_lines,
            escalations: daemon_counters.escalations,
            escalated_lines: daemon_counters.escalated_lines,
            unresolved_lines: daemon_counters.unresolved_lines,
        }
    }
}

fn worker_loop(
    state: &ShardedCache,
    _shard: usize,
    rx: &Receiver<Request>,
    depth: &AtomicUsize,
) -> (ServiceHistograms, WorkerCounters) {
    let mut hists = ServiceHistograms::default();
    let mut counters = WorkerCounters::default();
    while let Ok(request) = rx.recv() {
        match request {
            Request::Shutdown => break,
            Request::Read {
                line,
                enqueued,
                reply,
            } => {
                let d = depth.fetch_sub(1, Ordering::Relaxed);
                hists.queue_depth.record(d as u64);
                counters.reads += 1;
                let result = match state.read_local(line) {
                    Ok(data) => Ok(data),
                    Err(_) => {
                        // Shard-local (Hash-1) ladder exhausted: cross-shard
                        // Hash-2 escalation, then one retry.
                        counters.escalated_reads += 1;
                        state.escalate(&[line]);
                        state.read_local(line)
                    }
                };
                if result.is_err() {
                    counters.due_reads += 1;
                }
                hists
                    .read_latency_ns
                    .record(enqueued.elapsed().as_nanos() as u64);
                let _ = reply.send(ReadReply { line, result });
            }
            Request::Write {
                line,
                data,
                enqueued,
            } => {
                let d = depth.fetch_sub(1, Ordering::Relaxed);
                hists.queue_depth.record(d as u64);
                counters.writes += 1;
                state.write(line, &data);
                hists
                    .write_latency_ns
                    .record(enqueued.elapsed().as_nanos() as u64);
            }
        }
    }
    (hists, counters)
}

fn daemon_loop(
    state: &ShardedCache,
    tick: Duration,
    master: &FaultInjector,
    stop: &AtomicBool,
) -> (ServiceHistograms, DaemonCounters) {
    let mut hists = ServiceHistograms::default();
    let mut counters = DaemonCounters::default();
    // One decorrelated injector per shard: the fault streams are fixed by
    // (seed, shard) alone, independent of tick interleaving.
    let mut injectors: Vec<FaultInjector> = (0..state.n_shards())
        .map(|s| master.fork(s as u64))
        .collect();
    let mut next_shard = 0usize;
    'daemon: loop {
        // Sleep in small slices so shutdown stays prompt.
        let deadline = Instant::now() + tick;
        while Instant::now() < deadline {
            if stop.load(Ordering::Relaxed) {
                break 'daemon;
            }
            std::thread::sleep(tick.min(Duration::from_millis(1)));
        }
        let shard = next_shard;
        next_shard = (next_shard + 1) % state.n_shards();
        let started = Instant::now();
        let injected = if master.ber() > 0.0 {
            state.inject_shard(shard, &mut injectors[shard])
        } else {
            Vec::new()
        };
        counters.injected_lines += injected.len() as u64;
        let (_report, leftover) = state.scrub_shard_local(shard, &injected);
        hists
            .scrub_tick_ns
            .record(started.elapsed().as_nanos() as u64);
        if !leftover.is_empty() {
            let escalation_start = Instant::now();
            let report = state.escalate(&leftover);
            hists
                .escalation_ns
                .record(escalation_start.elapsed().as_nanos() as u64);
            counters.escalations += 1;
            counters.escalated_lines += leftover.len() as u64;
            counters.unresolved_lines += report.unresolved.len() as u64;
        }
        counters.ticks += 1;
    }
    (hists, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with(bits: &[usize]) -> LineData {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let mut config = ServiceConfig::small(256, 4, 0.0, 1);
        config.scrub_every = None;
        config.queue_depth = 4; // small queue: the test exercises blocking
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        for line in 0..200u64 {
            handle.write(line, &data_with(&[line as usize % 512]));
        }
        let report = service.shutdown();
        assert_eq!(report.writes, 200, "drain must serve every write");
        assert_eq!(report.stats.writes, 200);
        assert_eq!(report.due_reads, 0);
    }

    #[test]
    fn concurrent_clients_roundtrip_against_separate_shards() {
        let mut config = ServiceConfig::small(512, 4, 0.0, 2);
        config.scrub_every = None;
        let service = Service::start(config).unwrap();
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let handle = service.handle();
                s.spawn(move || {
                    for i in 0..64u64 {
                        let line = worker * 128 + i;
                        let data = data_with(&[(line as usize * 3) % 512]);
                        handle.write(line, &data);
                        assert_eq!(handle.read(line).unwrap(), data);
                    }
                });
            }
        });
        let report = service.shutdown();
        assert_eq!(report.reads, 256);
        assert_eq!(report.writes, 256);
        assert_eq!(report.due_reads, 0);
        assert!(report.hists.read_latency_ns.count() == 256);
    }

    #[test]
    fn scrub_daemon_heals_injected_faults() {
        let mut config = ServiceConfig::small(1024, 4, 2e-4, 3);
        config.scrub_every = Some(Duration::from_millis(1));
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        // Demand traffic concurrent with injection + scrub.
        for line in 0..256u64 {
            handle.write(line * 4, &data_with(&[line as usize % 512]));
        }
        std::thread::sleep(Duration::from_millis(40));
        for line in 0..256u64 {
            assert_eq!(
                handle.read(line * 4).unwrap(),
                data_with(&[line as usize % 512]),
                "line {line} corrupted"
            );
        }
        let report = service.shutdown();
        assert!(report.scrub_ticks >= 4, "{report:?}");
        assert!(report.injected_lines > 0, "{report:?}");
        assert_eq!(report.due_reads, 0);
    }
}
