//! The live service front-end: a work-stealing worker pool serving
//! batched **work packets** off per-shard bounded queues, a lock-free
//! clean-read fast path, preallocated completion slots, a background scrub
//! daemon with per-shard forked fault injectors, a live telemetry plane,
//! and graceful drain/shutdown.
//!
//! # The demand path
//!
//! A read first tries the seqlock **line view** ([`ShardedCache::try_read_clean`]):
//! load the line's published `(data, crc)` under the seqlock, verify the
//! CRC-31 inline, and serve without touching any mutex — the overwhelming
//! common case in the paper's BER regime. Only a miss (faulty line, torn
//! snapshot, writer in flight, spared line, quarantined shard) falls
//! through to the claimed path.
//!
//! Everything else funnels through one per-shard **claim** (an atomic
//! flag admitting a single drainer at a time, so **repairs stay
//! serialized per shard**). A client whose shard claim is free serves its
//! own op *inline*: drain whatever is FIFO-ahead in the shard queue, run
//! the op through a [`ShardSession`], release — no op allocation, no
//! context switch. A held claim is yielded to and retried a few times
//! (its holder is mid-op, sub-µs) before the client pays the queue path:
//! the op lands on the owning shard's bounded [`VecDeque`] (producers
//! block when a shard's queue is at its bound, so a hot shard throttles
//! its own clients), writes fire-and-forget behind a per-line pending
//! gate that keeps lock-free readers honest, and reads ride preallocated
//! per-thread [`CompletionSlot`]s: whoever drains the queue — the
//! enqueuer itself via flat combining, the claim holder's release
//! re-check, or a pool worker as the backstop — pops up to [`BATCH`] ops
//! at once, serves the packet through one session, writes each result
//! and flips one atomic flag; the client spins briefly then parks. No
//! per-request channel allocation anywhere on the hot path.
//!
//! The scrub daemon ticks shards round-robin on the configured interval:
//! inject (per-shard decorrelated [`FaultInjector::fork`] streams, so
//! concurrent injection is reproducible regardless of thread
//! interleaving), then a shard-local Hash-1 scrub, then cross-shard
//! escalation of whatever the shard could not resolve alone. Its bulk
//! passes take the shard mutex in small chunks, so a tick never convoys
//! the demand path for more than a few µs at a time.
//!
//! # Telemetry
//!
//! Every worker and the daemon publish into a shared lock-free
//! [`TelemetryRegistry`] as they go — counters (including the lock-free
//! hit/retry rate), queue-depth gauges, and per-phase latency histograms
//! (queue wait → shard service → cross-shard H2 gather+repair), threaded
//! by a per-request trace ID. The end-of-run [`ServiceReport`] is a final
//! read of that registry; with [`ServiceConfig::telemetry`] set, a sampler
//! thread additionally records periodic [`TelemetrySnapshot`]s into a
//! bounded flight recorder (and optional JSONL time series), and a
//! std-only TCP exporter serves `GET /metrics`, `/healthz`, and
//! `/snapshot.json` while the service runs.
//!
//! # Failure semantics
//!
//! Nothing on the client path panics, and no completion handle is ever
//! lost: handles stay *outside* the per-op `catch_unwind`, so a panic
//! mid-op quarantines the shard and then error-completes the op and
//! everything queued behind it. Every handle operation returns
//! `Result<_, `[`ServiceError`]`>`:
//!
//! * A worker panic (organic or injected via
//!   [`ServiceHandle::inject_worker_panic`]) is caught at the op boundary;
//!   the shard is **quarantined**, its queued ops complete with
//!   [`ServiceError::ShardDown`], and subsequent requests to it fail fast
//!   while the other N−1 shards keep serving. The registry (shared, not
//!   worker-local) keeps everything the packet recorded.
//! * A scrub daemon panic is caught per tick; scrubbing stops but demand
//!   traffic continues, and [`ServiceReport::daemon_panicked`] says so.
//! * Shutdown never panics and never strands a client: workers exit only
//!   after verifying every queue is empty with acceptance closed, so
//!   every accepted op was served (live shards) or error-completed (dead
//!   shards). Panicked shards land in [`ServiceReport::worker_panics`],
//!   surviving telemetry is harvested (a poisoned shard mutex does not
//!   block counter collection), and the degraded-mode counters land in
//!   [`ServiceReport::degraded`].
//!
//! [`TelemetrySnapshot`]: crate::TelemetrySnapshot
//! [`CompletionSlot`]: crate::slot::CompletionSlot

use crate::audit::{AuditConfig, AuditPlane};
use crate::degraded::{DegradedConfig, DegradedStats};
use crate::error::{ServiceError, StartError};
use crate::exporter::Exporter;
use crate::sharded::{ShardSession, ShardedCache};
use crate::slot::{CompletionSlot, SlotSender};
use crate::telemetry::{
    FlightRecorder, TelemetryConfig, TelemetryRegistry, TelemetrySnapshot, TraceOutcome, TracePath,
    TraceRecord,
};
use crate::watchdog::watchdog_loop;
use std::collections::{BTreeSet, VecDeque};
use std::io::Write as _;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sudoku_codes::LineData;
use sudoku_core::{CacheStats, Recorder, ShardPlan, SudokuConfig};
use sudoku_fault::{FaultInjector, StuckBitMap};
use sudoku_obs::{RecoveryHistograms, ServiceHistograms};

/// Ops per work packet: one shard-mutex acquire is amortized over up to
/// this many demand operations.
const BATCH: usize = 32;

/// Yield-and-retry rounds a client spends on a held shard claim before
/// falling back to the queue. Claims are held for sub-µs inline ops, so
/// the holder usually finishes within a yield; the queue fallback keeps
/// the bound on a holder that got preempted mid-op.
const CLAIM_RETRIES: usize = 16;

/// Configuration of a running [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The cache geometry and scheme (the service applies
    /// [`SudokuConfig::with_deferred_hash2`] internally per shard).
    pub cache: SudokuConfig,
    /// Number of shards = number of pool workers.
    pub n_shards: usize,
    /// Bound of each shard's request queue (producers block when full).
    pub queue_depth: usize,
    /// Scrub daemon tick period; `None` disables the daemon.
    pub scrub_every: Option<Duration>,
    /// Per-interval transient bit error rate injected by the daemon
    /// (0.0 = scrub without injection).
    pub ber: f64,
    /// Master seed; per-shard injectors fork decorrelated streams from it.
    pub seed: u64,
    /// Permanent (stuck-at) cells of the underlying array — physics, not
    /// controller state: they reassert after every write and repair.
    pub stuck: StuckBitMap,
    /// Quarantine/sparing policy for degraded operation.
    pub degraded: DegradedConfig,
    /// Live telemetry plane (sampler, flight recorder, scrape endpoint);
    /// `None` runs the lock-free registry only, with zero extra threads.
    pub telemetry: Option<TelemetryConfig>,
    /// Reliability audit plane: scrub-deadline tracking, error-budget
    /// burn estimation, and the anomaly watchdog. Always on (the plane is
    /// lock-free and the watchdog is one light thread); this configures
    /// its thresholds.
    pub audit: AuditConfig,
}

impl ServiceConfig {
    /// A small functional-test configuration: SuDoku-Z, `lines` lines in
    /// groups of 16, 4 shards, a 2 ms scrub tick, a pristine array.
    pub fn small(lines: u64, n_shards: usize, ber: f64, seed: u64) -> Self {
        ServiceConfig {
            cache: SudokuConfig::small(sudoku_core::Scheme::Z, lines, 16),
            n_shards,
            queue_depth: 64,
            scrub_every: Some(Duration::from_millis(2)),
            ber,
            seed,
            stuck: StuckBitMap::new(),
            degraded: DegradedConfig::default(),
            telemetry: None,
            audit: AuditConfig::default(),
        }
    }
}

/// Where a queued read's reply goes.
enum ReadDest {
    /// A client's preallocated completion slot (the common case).
    Slot(SlotSender<Result<LineData, ServiceError>>),
    /// A caller-owned channel ([`ServiceHandle::read_to`]), so one client
    /// thread can keep several reads in flight.
    Channel(Sender<ReadReply>),
}

impl ReadDest {
    fn complete(self, line: u64, trace: u64, result: Result<LineData, ServiceError>) {
        match self {
            ReadDest::Slot(sender) => sender.complete(result),
            ReadDest::Channel(tx) => {
                let _ = tx.send(ReadReply {
                    line,
                    trace,
                    result,
                });
            }
        }
    }
}

/// One demand operation queued for a shard.
enum Op {
    Read {
        line: u64,
        trace: u64,
        enqueued: Instant,
        dest: ReadDest,
    },
    Write {
        line: u64,
        trace: u64,
        data: LineData,
        enqueued: Instant,
    },
    /// Chaos injection: the serving worker panics on purpose when it pops
    /// this, optionally while holding the shard's state mutex (which
    /// poisons it, like a real mid-repair panic would).
    Panic { hold_lock: bool },
}

/// The answer to a [`ServiceHandle`] read.
#[derive(Clone, Copy, Debug)]
pub struct ReadReply {
    /// The line that was read.
    pub line: u64,
    /// The request's trace ID (allocated at enqueue; the same ID keys the
    /// sampled per-phase [`TraceRecord`]s in `/snapshot.json`).
    pub trace: u64,
    /// The recovered data, a DUE, or an availability error.
    pub result: Result<LineData, ServiceError>,
}

/// One shard's bounded op queue, claimable by one pool worker at a time.
struct ShardQueue {
    ops: Mutex<VecDeque<Op>>,
    /// Lock-free mirror of `ops.len()`, so parking workers can test
    /// "unclaimed shard with work" without touching the queue mutex.
    len: AtomicUsize,
    /// Set while a worker is serving this shard — the claim is what keeps
    /// repairs serialized per shard even with a stealing pool.
    claimed: AtomicBool,
    /// Signalled when ops are popped, releasing producers blocked on the
    /// queue bound.
    not_full: Condvar,
}

impl ShardQueue {
    fn new() -> Self {
        ShardQueue {
            ops: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            claimed: AtomicBool::new(false),
            not_full: Condvar::new(),
        }
    }
}

/// The shared demand plane: per-shard queues plus the pool's wake/idle
/// machinery and shutdown state.
struct Demand {
    queues: Vec<ShardQueue>,
    /// Ops enqueued but not yet popped, across all shards (incremented
    /// *after* the push, so a nonzero queue implies `pending` catches up).
    pending: AtomicU64,
    /// Cleared by shutdown; checked by producers under the queue lock, so
    /// the workers' verify-empty exit cannot race a late push.
    accepting: AtomicBool,
    idle: Mutex<()>,
    wake: Condvar,
    /// Workers currently inside the park protocol (between announcing the
    /// park under the `idle` lock and leaving the wait). Producers skip
    /// the notify entirely while this is zero — under load, enqueue costs
    /// two atomics instead of a mutex + condvar signal per op.
    parked: AtomicUsize,
    /// Shards whose serving worker caught a panic (quarantined).
    panicked: Mutex<BTreeSet<usize>>,
    queue_depth: usize,
}

impl Demand {
    /// Enqueues `op` on `shard`'s queue, blocking (with periodic re-checks
    /// of shutdown and shard health) while the queue is at its bound.
    /// The depth gauge is incremented under the queue lock, so it can
    /// never drift from the queue's true occupancy. `Panic` ops bypass the
    /// bound and the gauge — chaos must land even on a saturated shard.
    fn enqueue(
        &self,
        shard: usize,
        op: Op,
        state: &ShardedCache,
        reg: &TelemetryRegistry,
    ) -> Result<(), ServiceError> {
        let q = &self.queues[shard];
        let counted = !matches!(op, Op::Panic { .. });
        let mut ops = q.ops.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !self.accepting.load(Ordering::Acquire) {
                return Err(ServiceError::ShuttingDown);
            }
            if !state.health().is_up(shard) {
                state.note_reject();
                return Err(ServiceError::ShardDown(shard));
            }
            if !counted || ops.len() < self.queue_depth {
                break;
            }
            // Saturated: make sure a pool worker is coming to drain (the
            // combining clients ahead of us may all be blocked right here
            // too), then wait for the pop.
            self.notify_parked();
            let (guard, _) = q
                .not_full
                .wait_timeout(ops, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            ops = guard;
        }
        ops.push_back(op);
        q.len.fetch_add(1, Ordering::SeqCst);
        if counted {
            reg.depth(shard).inc();
        }
        drop(ops);
        self.pending.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Wakes a parked pool worker if there is one. Callers that will NOT
    /// combine (drain the queue themselves) after an enqueue must call
    /// this, or their op waits out a worker park timeout. The SeqCst pair
    /// with the park protocol closes the race: a worker announces the
    /// park (`parked += 1`) *before* re-checking the queues, so either
    /// this producer observes `parked > 0` and notifies (lock-then-notify,
    /// so the signal cannot fall between the worker's re-check and its
    /// wait), or the worker's re-check observes the producer's `len`
    /// increment and never parks. Combining producers skip even these two
    /// atomics' futex half: enqueue itself never signals.
    fn notify_parked(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            drop(self.idle.lock().unwrap_or_else(|e| e.into_inner()));
            self.wake.notify_one();
        }
    }

    /// True when some shard has queued ops and no worker owns its claim —
    /// i.e. a sweeping worker would find work right now.
    fn claimable(&self) -> bool {
        self.queues
            .iter()
            .any(|q| q.len.load(Ordering::SeqCst) > 0 && !q.claimed.load(Ordering::SeqCst))
    }

    /// Pops up to [`BATCH`] ops from `shard`'s queue. `Panic` ops ride in
    /// a packet of their own: the panic protocol (drop the session, maybe
    /// poison the mutex) must not share a session with real ops.
    fn pop_batch(&self, shard: usize) -> Vec<Op> {
        let q = &self.queues[shard];
        if q.len.load(Ordering::SeqCst) == 0 {
            return Vec::new(); // skip the mutex on the empty-queue drain
        }
        let mut ops = q.ops.lock().unwrap_or_else(|e| e.into_inner());
        let mut batch = Vec::with_capacity(BATCH.min(ops.len()));
        while batch.len() < BATCH {
            match ops.front() {
                None => break,
                Some(Op::Panic { .. }) => {
                    if batch.is_empty() {
                        batch.push(ops.pop_front().expect("front exists"));
                    }
                    break;
                }
                Some(_) => batch.push(ops.pop_front().expect("front exists")),
            }
        }
        drop(ops);
        if !batch.is_empty() {
            q.len.fetch_sub(batch.len(), Ordering::SeqCst);
            self.pending
                .fetch_sub(batch.len() as u64, Ordering::Release);
            q.not_full.notify_all();
        }
        batch
    }
}

std::thread_local! {
    /// Per-thread preallocated completion slot: a client blocks on its
    /// own slot until the worker answers, so one reusable slot per thread
    /// replaces a per-request channel allocation. (Writes complete at
    /// acceptance and need no slot at all.)
    static READ_SLOT: Arc<CompletionSlot<Result<LineData, ServiceError>>> = CompletionSlot::new();
}

/// End-of-run summary assembled by [`Service::shutdown`].
#[derive(Debug)]
pub struct ServiceReport {
    /// Shard count the service ran with.
    pub shards: usize,
    /// Aggregate cache counters (all shards + coordinator).
    pub stats: CacheStats,
    /// Per-shard cache counters.
    pub per_shard: Vec<CacheStats>,
    /// Service-level latency/queue-depth histograms (workers + daemon).
    pub hists: ServiceHistograms,
    /// Recovery-ladder histograms harvested from every shard recorder.
    pub recovery_hists: RecoveryHistograms,
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// Demand writes rejected (owning shard down).
    pub failed_writes: u64,
    /// Demand reads that needed cross-shard escalation.
    pub escalated_reads: u64,
    /// Demand reads that remained uncorrectable (DUE).
    pub due_reads: u64,
    /// Demand reads served lock-free off the seqlock line view.
    pub lockfree_reads: u64,
    /// Scrub daemon ticks completed (one tick = one shard).
    pub scrub_ticks: u64,
    /// Daemon ticks skipped because the shard was quarantined.
    pub skipped_ticks: u64,
    /// Lines faulted by the daemon's injectors.
    pub injected_lines: u64,
    /// Cross-shard escalations triggered by scrub leftovers.
    pub escalations: u64,
    /// Lines handed to those escalations.
    pub escalated_lines: u64,
    /// Lines still unresolved after escalation (scrub-detected DUEs).
    pub unresolved_lines: u64,
    /// Shards whose serving worker panicked (caught; shard quarantined).
    pub worker_panics: Vec<usize>,
    /// Whether the scrub daemon died to a caught panic.
    pub daemon_panicked: bool,
    /// Shards quarantined at shutdown (worker panics + poisoned locks).
    pub quarantined: Vec<usize>,
    /// Degraded-mode counters: sparing, stuck-cell physics, fail-fasts.
    pub degraded: DegradedStats,
    /// Alerts the watchdog raised over the run.
    pub alerts: u64,
    /// Critical-severity alerts among them.
    pub critical_alerts: u64,
    /// Line-range packets whose achieved scrub interval exceeded the
    /// configured deadline.
    pub scrub_deadline_misses: u64,
}

impl ServiceReport {
    /// Uncorrected lines from any path (demand DUEs + scrub DUEs).
    pub fn total_due(&self) -> u64 {
        self.due_reads + self.unresolved_lines
    }

    /// Whether the run ended with every shard up and no caught panics.
    pub fn fully_healthy(&self) -> bool {
        self.worker_panics.is_empty() && !self.daemon_panicked && self.quarantined.is_empty()
    }

    /// JSON object with the headline counters and latency quantiles.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("shards", self.shards as u64)
            .field_u64("reads", self.reads)
            .field_u64("writes", self.writes)
            .field_u64("failed_writes", self.failed_writes)
            .field_u64("escalated_reads", self.escalated_reads)
            .field_u64("due_reads", self.due_reads)
            .field_u64("lockfree_reads", self.lockfree_reads)
            .field_u64("scrub_ticks", self.scrub_ticks)
            .field_u64("skipped_ticks", self.skipped_ticks)
            .field_u64("injected_lines", self.injected_lines)
            .field_u64("escalations", self.escalations)
            .field_u64("escalated_lines", self.escalated_lines)
            .field_u64("unresolved_lines", self.unresolved_lines)
            .field_array_u64(
                "worker_panics",
                self.worker_panics.iter().map(|&s| s as u64),
            )
            .field_bool("daemon_panicked", self.daemon_panicked)
            .field_array_u64("quarantined", self.quarantined.iter().map(|&s| s as u64))
            .field_u64("alerts", self.alerts)
            .field_u64("critical_alerts", self.critical_alerts)
            .field_u64("scrub_deadline_misses", self.scrub_deadline_misses)
            .field_raw("degraded", &self.degraded.to_json())
            .field_raw("stats", &self.stats.to_json())
            .field_raw("service_hists", &self.hists.to_json());
        obj.finish()
    }
}

/// A cloneable client of a running [`Service`]: serves clean reads
/// lock-free off the seqlock line view, and routes everything else to the
/// owning shard's queue, blocking when that queue is full (backpressure).
#[derive(Clone)]
pub struct ServiceHandle {
    plan: ShardPlan,
    demand: Arc<Demand>,
    registry: Arc<TelemetryRegistry>,
    state: Arc<ShardedCache>,
}

impl ServiceHandle {
    /// The shard that owns `line` (useful for interpreting
    /// [`ServiceError::ShardDown`]).
    pub fn shard_of(&self, line: u64) -> usize {
        self.plan.shard_of_line(line)
    }

    /// Shards currently quarantined, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        self.state.health().quarantined()
    }

    /// Why an accepted op came back without an answer: the shard died
    /// mid-flight, or the whole service is tearing down.
    fn disconnect_error(&self, s: usize) -> ServiceError {
        if self.state.health().is_up(s) {
            ServiceError::ShuttingDown
        } else {
            self.state.note_reject();
            ServiceError::ShardDown(s)
        }
    }

    /// Serves `line` lock-free off the seqlock view when it is verifiably
    /// clean, doing the full per-request telemetry accounting. `None`
    /// means the caller must take the queued path; a hit returns the data
    /// with the trace ID it was recorded under.
    fn fast_read(&self, line: u64, shard: usize) -> Option<(LineData, u64)> {
        if !self.demand.accepting.load(Ordering::Acquire) {
            return None; // shutdown: the queued path reports ShuttingDown
        }
        let service_start = Instant::now();
        let (hit, retries) = self.state.try_read_clean(line);
        let data = hit?;
        let trace = self.registry.next_trace_id();
        self.registry.reads.inc();
        self.registry.clean_read_lockfree_hits.inc();
        self.registry.seqlock_retries.add(u64::from(retries));
        self.registry.note_request(TraceRecord {
            trace,
            shard: shard as u32,
            write: false,
            path: TracePath::Lockfree,
            outcome: TraceOutcome::Ok,
            queue_wait_ns: 0,
            service_ns: service_start.elapsed().as_nanos() as u64,
            h2_ns: 0,
        });
        Some((data, trace))
    }

    /// Serves a read inline on this thread: win `shard`'s claim, drain
    /// whatever is FIFO-ahead in its queue (write-pending lines settle
    /// here), then run the locked ladder read directly — no op, no slot,
    /// no context switch. `None` when another thread holds the claim (the
    /// caller enqueues behind it). Accounting is identical to the worker
    /// path, with zero queue wait.
    fn read_inline(
        &self,
        line: u64,
        shard: usize,
        trace: u64,
    ) -> Option<Result<LineData, ServiceError>> {
        let q = &self.demand.queues[shard];
        if q.claimed.swap(true, Ordering::Acquire) {
            return None;
        }
        drain_claimed(&self.state, &self.demand, shard, &self.registry);
        let service_start = Instant::now();
        let mut h2_ns = 0u64;
        let mut session = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_read(
                &self.state,
                shard,
                line,
                trace,
                &mut session,
                &mut h2_ns,
                &self.registry,
            )
        }));
        drop(session);
        let result = match outcome {
            Ok(result) => {
                self.registry.reads.inc();
                if matches!(result, Err(ServiceError::Uncorrectable(_))) {
                    self.registry.due_reads.inc();
                }
                self.registry.note_request(TraceRecord {
                    trace,
                    shard: shard as u32,
                    write: false,
                    path: TracePath::Inline,
                    outcome: read_outcome(&result),
                    queue_wait_ns: 0,
                    service_ns: service_start.elapsed().as_nanos() as u64,
                    h2_ns,
                });
                result
            }
            Err(_) => {
                fail_shard(&self.state, &self.demand, shard);
                Err(ServiceError::ShardDown(shard))
            }
        };
        release_claim(&self.state, &self.demand, shard, &self.registry);
        Some(result)
    }

    /// Serves a write inline on this thread (same protocol as
    /// [`ServiceHandle::read_inline`]): drain the queue FIFO-ahead, apply
    /// through a session, release. Returns `false` when the claim is held
    /// elsewhere — the caller falls back to the fire-and-forget enqueue.
    fn write_inline(&self, line: u64, shard: usize, trace: u64, data: &LineData) -> bool {
        let q = &self.demand.queues[shard];
        if q.claimed.swap(true, Ordering::Acquire) {
            return false;
        }
        drain_claimed(&self.state, &self.demand, shard, &self.registry);
        let service_start = Instant::now();
        let mut session = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_write(&self.state, shard, line, trace, data, &mut session)
        }));
        drop(session);
        match outcome {
            Ok(result) => {
                match &result {
                    Ok(()) => self.registry.writes.inc(),
                    Err(_) => self.registry.failed_writes.inc(),
                }
                self.registry.note_request(TraceRecord {
                    trace,
                    shard: shard as u32,
                    write: true,
                    path: TracePath::Inline,
                    outcome: if result.is_ok() {
                        TraceOutcome::Ok
                    } else {
                        TraceOutcome::Error
                    },
                    queue_wait_ns: 0,
                    service_ns: service_start.elapsed().as_nanos() as u64,
                    h2_ns: 0,
                });
            }
            Err(_) => {
                fail_shard(&self.state, &self.demand, shard);
                self.registry.failed_writes.inc();
            }
        }
        release_claim(&self.state, &self.demand, shard, &self.registry);
        true
    }

    /// Enqueues a write for `line`'s shard (blocking on a full queue) and
    /// returns as soon as it is **accepted** — the worker applies it
    /// asynchronously. Acceptance marks the line write-pending in the
    /// lock-free view, so every subsequent read of the line (from this or
    /// any other thread that learned of the write) takes the shard queue's
    /// FIFO path *behind* the write: fire-and-forget stays
    /// read-your-write consistent. A write a dying shard never applies is
    /// counted in [`ServiceReport::failed_writes`] and surfaces as
    /// [`ServiceError::ShardDown`] on later reads of the line.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShardDown`] when the owning shard is quarantined at
    /// acceptance, [`ServiceError::ShuttingDown`] when the service no
    /// longer accepts requests.
    pub fn write(&self, line: u64, data: &LineData) -> Result<(), ServiceError> {
        let shard = self.plan.shard_of_line(line);
        if !self.state.health().is_up(shard) {
            self.state.note_reject();
            return Err(ServiceError::ShardDown(shard));
        }
        if !self.demand.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let trace = self.registry.next_trace_id();
        // Queue-bypass fast path: if the shard's claim is free, serve the
        // write synchronously on this thread — no op allocation, no queue
        // mutex, no pending-gate round trip. The engine write itself is
        // ~0.3µs; everything the queue adds is overhead we skip here. A
        // held claim is usually sub-µs (its holder is mid-inline-op), so
        // yield to it and retry before paying the queue path — enqueueing
        // would open a pending window that knocks every reader of this
        // line off the lock-free view.
        for attempt in 0..=CLAIM_RETRIES {
            if self.write_inline(line, shard, trace, data) {
                return Ok(());
            }
            if attempt < CLAIM_RETRIES {
                thread::yield_now();
            }
        }
        self.state.begin_write(line);
        let accepted = self.demand.enqueue(
            shard,
            Op::Write {
                line,
                trace,
                data: *data,
                enqueued: Instant::now(),
            },
            &self.state,
            &self.registry,
        );
        if accepted.is_err() {
            // Rejected at the door: nothing will ever apply (or retire) it.
            self.state.retire_write(line);
            return accepted;
        }
        // Flat-combining assist: try to drain the shard queue (our write
        // included) right here. On a small machine this applies the write
        // without a single context switch; losing the claim race is fine —
        // the holder's drain covers our op.
        claim_and_drain(&self.state, &self.demand, shard, &self.registry);
        accepted
    }

    /// Reads `line`, preferring the lock-free clean path; a view miss
    /// enqueues the read whose reply goes to `reply` (a caller-owned
    /// channel, so a client thread can keep several reads in flight). On
    /// a lock-free hit the reply is delivered before this returns.
    ///
    /// # Errors
    ///
    /// Same acceptance errors as [`ServiceHandle::write`]; on `Err` no
    /// reply will arrive for this request.
    pub fn read_to(&self, line: u64, reply: &Sender<ReadReply>) -> Result<(), ServiceError> {
        let shard = self.plan.shard_of_line(line);
        if let Some((data, trace)) = self.fast_read(line, shard) {
            let _ = reply.send(ReadReply {
                line,
                trace,
                result: Ok(data),
            });
            return Ok(());
        }
        if !self.state.health().is_up(shard) {
            self.state.note_reject();
            return Err(ServiceError::ShardDown(shard));
        }
        let trace = self.registry.next_trace_id();
        self.demand.enqueue(
            shard,
            Op::Read {
                line,
                trace,
                enqueued: Instant::now(),
                dest: ReadDest::Channel(reply.clone()),
            },
            &self.state,
            &self.registry,
        )?;
        // Flat-combining assist: drain the shard queue ourselves if the
        // claim is free — the reply (ours included) is sent inline.
        claim_and_drain(&self.state, &self.demand, shard, &self.registry);
        Ok(())
    }

    /// Blocking read: lock-free off the seqlock view when the line is
    /// verifiably clean, otherwise enqueued and answered through this
    /// thread's completion slot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Uncorrectable`] when even cross-shard recovery
    /// failed (DUE), [`ServiceError::ShardDown`] when the owning shard is
    /// quarantined (including mid-flight: a request stranded by a worker
    /// panic reports the shard, never a panic or a hang), and
    /// [`ServiceError::ShuttingDown`] when the service is gone.
    pub fn read(&self, line: u64) -> Result<LineData, ServiceError> {
        let shard = self.plan.shard_of_line(line);
        if let Some((data, _trace)) = self.fast_read(line, shard) {
            return Ok(data);
        }
        if !self.state.health().is_up(shard) {
            self.state.note_reject();
            return Err(ServiceError::ShardDown(shard));
        }
        if !self.demand.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let trace = self.registry.next_trace_id();
        // Queue-bypass fast path: a free claim lets us drain whatever is
        // FIFO-ahead (our line's pending write included) and run the
        // locked ladder read right here — no slot, no wait. On a held
        // claim, yield to the holder and retry: its release re-check
        // drains anything queued meanwhile, often republishing our line
        // clean, so the lock-free view is worth re-probing each round.
        for attempt in 0..=CLAIM_RETRIES {
            if let Some(result) = self.read_inline(line, shard, trace) {
                return result;
            }
            if attempt < CLAIM_RETRIES {
                thread::yield_now();
                if let Some((data, _trace)) = self.fast_read(line, shard) {
                    return Ok(data);
                }
            }
        }
        READ_SLOT.with(|slot| {
            self.demand.enqueue(
                shard,
                Op::Read {
                    line,
                    trace,
                    enqueued: Instant::now(),
                    dest: ReadDest::Slot(slot.arm()),
                },
                &self.state,
                &self.registry,
            )?;
            // Flat-combining assist: winning the claim serves our own op
            // (and everything FIFO-ahead of it, write-pending lines
            // included) on this thread, filling the slot before the wait
            // even starts — zero context switches on the miss path.
            claim_and_drain(&self.state, &self.demand, shard, &self.registry);
            slot.wait()
                .unwrap_or_else(|| Err(self.disconnect_error(shard)))
        })
    }

    /// Chaos hook: the worker serving `shard` panics on purpose when it
    /// pops this op — with `hold_lock`, while holding the shard's state
    /// mutex, poisoning it exactly like an organic mid-repair panic.
    ///
    /// # Errors
    ///
    /// The same acceptance errors as any other request.
    pub fn inject_worker_panic(&self, shard: usize, hold_lock: bool) -> Result<(), ServiceError> {
        self.demand
            .enqueue(shard, Op::Panic { hold_lock }, &self.state, &self.registry)?;
        // No combining here — the chaos op should land on whichever pool
        // worker (or combining client) claims the shard next, so wake one.
        self.demand.notify_parked();
        Ok(())
    }

    /// Current depth of each shard's request queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.registry
            .queue_depths()
            .into_iter()
            .map(|d| d as usize)
            .collect()
    }

    /// The live metrics registry this handle feeds.
    pub fn registry(&self) -> &Arc<TelemetryRegistry> {
        &self.registry
    }
}

/// The running concurrent sharded cache service.
///
/// # Examples
///
/// ```
/// use sudoku_svc::{Service, ServiceConfig};
/// use sudoku_codes::LineData;
///
/// let service = Service::start(ServiceConfig::small(256, 4, 0.0, 42))?;
/// let handle = service.handle();
/// let mut data = LineData::zero();
/// data.set_bit(9, true);
/// handle.write(17, &data)?;
/// assert_eq!(handle.read(17)?, data);
/// let report = service.shutdown();
/// assert_eq!(report.writes, 1);
/// assert!(report.fully_healthy());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Service {
    state: Arc<ShardedCache>,
    demand: Arc<Demand>,
    registry: Arc<TelemetryRegistry>,
    workers: Vec<JoinHandle<()>>,
    daemon: Option<JoinHandle<bool>>,
    stop: Arc<AtomicBool>,
    daemon_panic: Arc<AtomicBool>,
    recorder: Option<Arc<FlightRecorder>>,
    sampler: Option<JoinHandle<()>>,
    sampler_stop: Arc<AtomicBool>,
    exporter: Option<Exporter>,
    plane: Arc<AuditPlane>,
    watchdog: Option<JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
    daemon_stall_us: Arc<AtomicU64>,
}

impl Service {
    /// Starts the worker pool (and the scrub daemon, when configured).
    ///
    /// # Errors
    ///
    /// [`StartError::Config`] for cache/shard validation failures,
    /// [`StartError::Telemetry`] when the scrape endpoint cannot bind or
    /// the flight-recorder JSONL file cannot be created.
    pub fn start(config: ServiceConfig) -> Result<Self, StartError> {
        let state = Arc::new(ShardedCache::with_faults(
            config.cache,
            config.n_shards,
            config.stuck,
            config.degraded,
        )?);
        let registry = Arc::new(TelemetryRegistry::new(config.n_shards));
        let demand = Arc::new(Demand {
            queues: (0..config.n_shards).map(|_| ShardQueue::new()).collect(),
            pending: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            parked: AtomicUsize::new(0),
            panicked: Mutex::new(BTreeSet::new()),
            queue_depth: config.queue_depth.max(1),
        });
        let mut workers = Vec::with_capacity(config.n_shards);
        for home in 0..config.n_shards {
            let state = Arc::clone(&state);
            let demand = Arc::clone(&demand);
            let registry = Arc::clone(&registry);
            workers.push(std::thread::spawn(move || {
                worker_loop(&state, &demand, home, &registry);
            }));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let daemon_panic = Arc::new(AtomicBool::new(false));
        let daemon_stall_us = Arc::new(AtomicU64::new(0));
        // The audit plane exists regardless of telemetry config: deadline
        // accounting and alerting are part of the reliability story, not
        // an optional extra.
        let plane = Arc::new(AuditPlane::new(state.plan(), config.audit.clone())?);
        let daemon = config.scrub_every.map(|tick| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let panic_flag = Arc::clone(&daemon_panic);
            let registry = Arc::clone(&registry);
            let plane = Arc::clone(&plane);
            let stall = Arc::clone(&daemon_stall_us);
            let master = FaultInjector::new(config.ber, config.seed);
            std::thread::spawn(move || {
                daemon_loop(
                    &state,
                    tick,
                    &master,
                    &stop,
                    &panic_flag,
                    &registry,
                    &plane,
                    &stall,
                )
            })
        });
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let state = Arc::clone(&state);
            let plane = Arc::clone(&plane);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&watchdog_stop);
            let scrub_every = config.scrub_every;
            let queue_bound = config.queue_depth.max(1) as u64;
            Some(std::thread::spawn(move || {
                watchdog_loop(&state, &plane, &registry, scrub_every, queue_bound, &stop)
            }))
        };
        // The optional plane: sampler + flight recorder + scrape endpoint.
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let (recorder, sampler, exporter) = match &config.telemetry {
            None => (None, None, None),
            Some(tcfg) => {
                let recorder = Arc::new(FlightRecorder::new(tcfg.flight_recorder_cap));
                let jsonl = match &tcfg.jsonl_path {
                    None => None,
                    Some(path) => Some(std::io::BufWriter::new(std::fs::File::create(path)?)),
                };
                let exporter = match tcfg.port {
                    None => None,
                    Some(port) => Some(Exporter::start(
                        port,
                        Arc::clone(&state),
                        Arc::clone(&registry),
                        Arc::clone(&recorder),
                        Arc::clone(&plane),
                    )?),
                };
                let sampler = {
                    let state = Arc::clone(&state);
                    let registry = Arc::clone(&registry);
                    let recorder = Arc::clone(&recorder);
                    let plane = Arc::clone(&plane);
                    let stop = Arc::clone(&sampler_stop);
                    let every = tcfg.sample_every.max(Duration::from_millis(1));
                    std::thread::spawn(move || {
                        sampler_loop(&state, &registry, &recorder, &plane, jsonl, every, &stop)
                    })
                };
                (Some(recorder), Some(sampler), exporter)
            }
        };
        Ok(Service {
            state,
            demand,
            registry,
            workers,
            daemon,
            stop,
            daemon_panic,
            recorder,
            sampler,
            sampler_stop,
            exporter,
            plane,
            watchdog,
            watchdog_stop,
            daemon_stall_us,
        })
    }

    /// A new client handle (cheap to clone, safe to share across threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            plan: *self.state.plan(),
            demand: Arc::clone(&self.demand),
            registry: Arc::clone(&self.registry),
            state: Arc::clone(&self.state),
        }
    }

    /// The sharded storage engine behind the service (for direct
    /// inspection in tests; demand traffic should go through handles).
    pub fn state(&self) -> &Arc<ShardedCache> {
        &self.state
    }

    /// The live metrics registry every worker and the daemon publish into.
    pub fn registry(&self) -> &Arc<TelemetryRegistry> {
        &self.registry
    }

    /// The flight recorder, when [`ServiceConfig::telemetry`] enabled one.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The scrape endpoint's bound address, when one is serving (use port
    /// 0 in [`TelemetryConfig::port`] to let the OS choose).
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(Exporter::addr)
    }

    /// Chaos hook: the scrub daemon panics at the start of its next tick
    /// (caught; scrubbing stops, demand traffic continues, and the report
    /// says [`ServiceReport::daemon_panicked`]).
    pub fn inject_daemon_panic(&self) {
        self.daemon_panic.store(true, Ordering::Relaxed);
    }

    /// Chaos hook: the scrub daemon sleeps through `stall` at the start
    /// of its next tick — alive but not scrubbing, the failure mode the
    /// watchdog's `daemon_stuck` / deadline-staleness alerts exist for.
    /// The stall honors shutdown (it sleeps in small slices).
    pub fn inject_daemon_stall(&self, stall: Duration) {
        self.daemon_stall_us
            .store(stall.as_micros() as u64, Ordering::Relaxed);
    }

    /// The reliability audit plane: deadline tracker, alert log, and live
    /// error-budget estimates.
    pub fn audit(&self) -> &Arc<AuditPlane> {
        &self.plane
    }

    /// Graceful drain and shutdown: stops the scrub daemon, closes
    /// acceptance, joins the worker pool (workers exit only once every
    /// queue is verifiably empty), then the telemetry plane (sampler last,
    /// so the flight recorder's final snapshot sees the quiesced system),
    /// and assembles the end-of-run report. Every op accepted before the
    /// call is fully served by live shards; ops stranded on dead shards
    /// produce error replies, never hangs.
    ///
    /// Never panics: dead shards and a dead daemon are reported in
    /// [`ServiceReport::worker_panics`] / [`ServiceReport::daemon_panicked`],
    /// with their surviving telemetry still harvested.
    pub fn shutdown(self) -> ServiceReport {
        // 1. Stop the daemon first so no new scrub work races the drain.
        self.stop.store(true, Ordering::Relaxed);
        let mut daemon_panicked = false;
        if let Some(handle) = self.daemon {
            match handle.join() {
                Ok(panicked) => daemon_panicked = panicked,
                // The per-tick catch_unwind makes this unreachable short of
                // a panic in the loop scaffolding itself; report it anyway.
                Err(_) => daemon_panicked = true,
            }
        }
        // 2. Drain: close acceptance, wake every parked worker and blocked
        //    producer, and join the pool. Workers only exit after seeing
        //    every queue empty with acceptance closed (checked under each
        //    queue's lock), so nothing accepted is left unserved.
        self.demand.accepting.store(false, Ordering::SeqCst);
        {
            let _guard = self.demand.idle.lock().unwrap_or_else(|e| e.into_inner());
            self.demand.wake.notify_all();
        }
        for q in &self.demand.queues {
            let _guard = q.ops.lock().unwrap_or_else(|e| e.into_inner());
            q.not_full.notify_all();
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        let worker_panics: Vec<usize> = self
            .demand
            .panicked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        // 3. Retire the telemetry plane: the sampler takes one final
        //    snapshot of the quiesced system on its way out (so the last
        //    flight-recorder entry / JSONL line is the end state), then
        //    the exporter stops serving.
        self.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(sampler) = self.sampler {
            let _ = sampler.join();
        }
        // The watchdog goes down with the sampler (it only observes; the
        // final alert-log flush happens on its way out).
        self.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(watchdog) = self.watchdog {
            let _ = watchdog.join();
        }
        drop(self.exporter);
        // 4. Harvest telemetry and counters from the quiesced engine —
        //    including from quarantined shards (poison-tolerant locks).
        let mut master = Recorder::unbounded();
        self.state.harvest_recorders(&mut master);
        let reg = &self.registry;
        ServiceReport {
            shards: self.state.n_shards(),
            stats: self.state.stats(),
            per_shard: self.state.shard_stats(),
            hists: reg.service_hists(),
            recovery_hists: master.hists,
            reads: reg.reads.get(),
            writes: reg.writes.get(),
            failed_writes: reg.failed_writes.get(),
            escalated_reads: reg.escalated_reads.get(),
            due_reads: reg.due_reads.get(),
            lockfree_reads: reg.clean_read_lockfree_hits.get(),
            scrub_ticks: reg.scrub_ticks.get(),
            skipped_ticks: reg.skipped_ticks.get(),
            injected_lines: reg.injected_lines.get(),
            escalations: reg.escalations.get(),
            escalated_lines: reg.escalated_lines.get(),
            unresolved_lines: reg.unresolved_lines.get(),
            worker_panics,
            daemon_panicked,
            quarantined: self.state.health().quarantined(),
            degraded: self.state.degraded_stats(),
            alerts: self.plane.alerts.total(),
            critical_alerts: self.plane.alerts.criticals(),
            scrub_deadline_misses: self.plane.tracker.total_misses(),
        }
    }
}

/// The sampler thread: one [`TelemetrySnapshot`] per interval into the
/// flight recorder (and the JSONL time series, flushed per line so a
/// crash loses at most the current interval), plus one final snapshot of
/// the quiesced system when the stop flag lands.
fn sampler_loop(
    state: &ShardedCache,
    registry: &TelemetryRegistry,
    recorder: &FlightRecorder,
    plane: &AuditPlane,
    mut jsonl: Option<std::io::BufWriter<std::fs::File>>,
    every: Duration,
    stop: &AtomicBool,
) {
    let mut seq = 0u64;
    loop {
        // Sleep in small slices so shutdown stays prompt.
        let deadline = Instant::now() + every;
        while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(every.min(Duration::from_millis(1)));
        }
        let snap = TelemetrySnapshot::capture_with_audit(seq, state, registry, Some(plane));
        seq += 1;
        if let Some(w) = jsonl.as_mut() {
            let _ = writeln!(w, "{}", snap.to_json());
            let _ = w.flush();
        }
        recorder.push(snap);
        if stop.load(Ordering::Relaxed) {
            break; // the snapshot above was the final, post-drain capture
        }
    }
}

/// Claims `shard` and drains its queue in whole work packets on the
/// *calling* thread, returning the number of ops served (0 when another
/// thread already owns the claim). This is the single drain primitive
/// shared by the pool workers and the flat-combining clients: whoever
/// wins the claim serves — repairs stay serialized per shard either way,
/// because the claim admits one drainer at a time and the shard session
/// mutex covers the state itself.
///
/// After releasing the claim, the queue length is re-checked and the
/// claim re-taken if a producer pushed in the release window — producers
/// that lost the claim race rely on the holder to serve what they pushed.
fn claim_and_drain(
    state: &ShardedCache,
    demand: &Demand,
    shard: usize,
    reg: &TelemetryRegistry,
) -> u64 {
    let q = &demand.queues[shard];
    if q.claimed.swap(true, Ordering::Acquire) {
        return 0; // another thread owns this shard right now
    }
    let served = drain_claimed(state, demand, shard, reg);
    served + release_claim(state, demand, shard, reg)
}

/// Drains `shard`'s queue in whole work packets until it is empty,
/// returning the number of ops served. The caller must hold the claim.
fn drain_claimed(
    state: &ShardedCache,
    demand: &Demand,
    shard: usize,
    reg: &TelemetryRegistry,
) -> u64 {
    let mut served = 0u64;
    loop {
        let batch = demand.pop_batch(shard);
        if batch.is_empty() {
            return served;
        }
        served += batch.len() as u64;
        if state.health().is_up(shard) {
            serve_packet(state, demand, shard, batch, reg);
        } else {
            // Quarantined: drain with error replies, never hangs.
            for op in batch {
                complete_shard_down(op, shard, state, reg);
            }
        }
    }
}

/// Releases the claim on `shard`, closing the push-after-empty-pop race:
/// an op pushed between the holder's last empty pop and the release saw
/// the shard claimed and counts on the holder to serve it. Reclaim and
/// drain again (or leave it to whoever beat us to the reclaim). Returns
/// the number of ops served by the recheck drains.
fn release_claim(
    state: &ShardedCache,
    demand: &Demand,
    shard: usize,
    reg: &TelemetryRegistry,
) -> u64 {
    let q = &demand.queues[shard];
    let mut served = 0u64;
    loop {
        q.claimed.store(false, Ordering::Release);
        if q.len.load(Ordering::SeqCst) == 0 || q.claimed.swap(true, Ordering::Acquire) {
            return served;
        }
        served += drain_claimed(state, demand, shard, reg);
    }
}

/// One pool worker: sweeps the shard queues starting from its home shard,
/// claims one shard at a time (keeping repairs serialized per shard), and
/// serves whole work packets until the service stops accepting and every
/// queue is verifiably empty. Under load the clients themselves drain the
/// queues they enqueue on (see [`claim_and_drain`] callers in
/// [`ServiceHandle`]); the pool is the backstop that guarantees progress
/// for ops nobody combines — panic injections, ops stranded by a client
/// that lost the claim race, and the shutdown drain.
fn worker_loop(state: &ShardedCache, demand: &Demand, home: usize, reg: &TelemetryRegistry) {
    let n = demand.queues.len();
    loop {
        let mut served_any = false;
        for i in 0..n {
            let shard = (home + i) % n;
            served_any |= claim_and_drain(state, demand, shard, reg) > 0;
        }
        if served_any {
            continue;
        }
        // Nothing anywhere: park until an enqueue lands on an *unclaimed*
        // shard, or exit once the service stops accepting AND every queue
        // is verifiably empty. The park is announced (`parked += 1`)
        // before the re-check, pairing with the producers' SeqCst
        // `len`-then-`parked` order: an op pushed before a producer saw
        // `parked == 0` is visible to `claimable()` below, and an op
        // pushed after it observes our announcement and notifies under
        // the same `idle` lock we hold until the wait begins. Work owned
        // by another worker's claim is deliberately NOT a wake condition:
        // the claim holder drains it, and parking here instead of
        // yield-spinning is what keeps surplus workers off the scheduler
        // on small machines.
        let guard = demand.idle.lock().unwrap_or_else(|e| e.into_inner());
        demand.parked.fetch_add(1, Ordering::SeqCst);
        if demand.claimable() {
            // An op landed mid-sweep on a shard nobody owns: re-sweep.
            demand.parked.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            continue;
        }
        if !demand.accepting.load(Ordering::Acquire) {
            demand.parked.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            // `accepting` was observed false before taking each queue lock
            // below, so any producer that locks a queue after this check
            // must also observe it false and bail: an empty sweep here is
            // conclusive — no op can arrive behind our back.
            let all_empty = demand
                .queues
                .iter()
                .all(|q| q.ops.lock().unwrap_or_else(|e| e.into_inner()).is_empty());
            if all_empty {
                return;
            }
            // Another worker's claim still covers the leftovers; give it
            // the core rather than re-sweeping hot.
            std::thread::yield_now();
        } else {
            let (guard, _) = demand
                .wake
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            demand.parked.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
        }
    }
}

/// Quarantines `shard` after a caught worker panic and records it for the
/// end-of-run report.
fn fail_shard(state: &ShardedCache, demand: &Demand, shard: usize) {
    state.health().quarantine(shard);
    demand
        .panicked
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(shard);
}

/// Error-completes a stranded op (queued behind a panic, or drained off a
/// dead shard's queue), undoing its depth accounting. The client gets
/// [`ServiceError::ShardDown`], never a hang.
fn complete_shard_down(op: Op, shard: usize, state: &ShardedCache, reg: &TelemetryRegistry) {
    match op {
        Op::Panic { .. } => {}
        Op::Read {
            line, trace, dest, ..
        } => {
            let d = reg.depth(shard).dec();
            reg.queue_depth_hist.record(d);
            state.note_reject();
            dest.complete(line, trace, Err(ServiceError::ShardDown(shard)));
        }
        Op::Write { line, .. } => {
            let d = reg.depth(shard).dec();
            reg.queue_depth_hist.record(d);
            state.note_reject();
            // The accepted write will never be applied: surface it in the
            // failed-write counter and re-arm the line's lock-free view.
            reg.failed_writes.inc();
            state.retire_write(line);
        }
    }
}

/// Reads `line` through the packet's shard session (opened lazily, so an
/// all-write packet after an escalation doesn't reacquire for nothing).
/// A local ladder failure drops the session *before* escalating — the
/// cross-shard coordinator acquires every shard mutex in ascending order.
fn serve_read<'a>(
    state: &'a ShardedCache,
    shard: usize,
    line: u64,
    trace: u64,
    session: &mut Option<ShardSession<'a>>,
    h2_ns: &mut u64,
    reg: &TelemetryRegistry,
) -> Result<LineData, ServiceError> {
    let live = match session {
        Some(live) => live,
        None => session.insert(state.session(shard)?),
    };
    // Any recovery the ladder runs for this read is stamped with the
    // request's trace ID — /traces.json ties a slow read to the exact
    // RecoveryEvents it caused.
    live.set_trace(trace);
    match live.read(line) {
        Err(ServiceError::Uncorrectable(_)) => {
            reg.escalated_reads.inc();
            *session = None;
            let h2_start = Instant::now();
            let fetched = state.escalate_fetch(line, trace);
            *h2_ns = h2_start.elapsed().as_nanos() as u64;
            reg.h2_gather_ns.record(*h2_ns);
            fetched
        }
        other => other,
    }
}

/// Writes `data` to `line` through the packet's shard session.
fn serve_write<'a>(
    state: &'a ShardedCache,
    shard: usize,
    line: u64,
    trace: u64,
    data: &LineData,
    session: &mut Option<ShardSession<'a>>,
) -> Result<(), ServiceError> {
    let live = match session {
        Some(live) => live,
        None => session.insert(state.session(shard)?),
    };
    // Consistency-triggered group recovery under the write carries the
    // write's trace, same as the read path.
    live.set_trace(trace);
    live.write(line, data);
    Ok(())
}

/// Serves one work packet against `shard`, holding one [`ShardSession`]
/// across the batch (one mutex acquire amortized over up to [`BATCH`]
/// ops).
///
/// Panic protocol: completion handles **never** enter the `catch_unwind`
/// closure — only the cache operation does — so a panic cannot strand or
/// double-complete a client. On a caught panic the shard is quarantined
/// first, then the current op and everything left in the packet complete
/// with [`ServiceError::ShardDown`]. The session `Option` lives outside
/// the closure, so the shard mutex is released (not poisoned) on the way
/// out; `hold_lock` chaos panics still poison it via their own acquire.
fn serve_packet(
    state: &ShardedCache,
    demand: &Demand,
    shard: usize,
    batch: Vec<Op>,
    reg: &TelemetryRegistry,
) {
    let mut session: Option<ShardSession<'_>> = None;
    let mut ops = batch.into_iter();
    while let Some(op) = ops.next() {
        match op {
            Op::Panic { hold_lock } => {
                // Release the session first: a hold_lock panic re-acquires
                // the shard mutex itself (and poisons it on unwind).
                drop(session.take());
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    state.chaos_panic(shard, hold_lock);
                }));
                fail_shard(state, demand, shard);
                for rest in ops {
                    complete_shard_down(rest, shard, state, reg);
                }
                return;
            }
            Op::Read {
                line,
                trace,
                enqueued,
                dest,
            } => {
                let d = reg.depth(shard).dec();
                reg.queue_depth_hist.record(d);
                let service_start = Instant::now();
                let queue_wait_ns = service_start.duration_since(enqueued).as_nanos() as u64;
                let mut h2_ns = 0u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve_read(state, shard, line, trace, &mut session, &mut h2_ns, reg)
                }));
                match outcome {
                    Ok(result) => {
                        reg.reads.inc();
                        if matches!(result, Err(ServiceError::Uncorrectable(_))) {
                            reg.due_reads.inc();
                        }
                        reg.note_request(TraceRecord {
                            trace,
                            shard: shard as u32,
                            write: false,
                            path: TracePath::Queued,
                            outcome: read_outcome(&result),
                            queue_wait_ns,
                            service_ns: service_start.elapsed().as_nanos() as u64,
                            h2_ns,
                        });
                        dest.complete(line, trace, result);
                    }
                    Err(_) => {
                        fail_shard(state, demand, shard);
                        dest.complete(line, trace, Err(ServiceError::ShardDown(shard)));
                        for rest in ops {
                            complete_shard_down(rest, shard, state, reg);
                        }
                        return;
                    }
                }
            }
            Op::Write {
                line,
                trace,
                data,
                enqueued,
            } => {
                let d = reg.depth(shard).dec();
                reg.queue_depth_hist.record(d);
                let service_start = Instant::now();
                let queue_wait_ns = service_start.duration_since(enqueued).as_nanos() as u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve_write(state, shard, line, trace, &data, &mut session)
                }));
                // Retire *after* the apply-and-republish (or on the way to
                // the teardown paths below): only then is the view
                // authoritative for the line again.
                state.retire_write(line);
                match outcome {
                    Ok(result) => {
                        match &result {
                            Ok(()) => reg.writes.inc(),
                            Err(_) => reg.failed_writes.inc(),
                        }
                        reg.note_request(TraceRecord {
                            trace,
                            shard: shard as u32,
                            write: true,
                            path: TracePath::Queued,
                            outcome: if result.is_ok() {
                                TraceOutcome::Ok
                            } else {
                                TraceOutcome::Error
                            },
                            queue_wait_ns,
                            service_ns: service_start.elapsed().as_nanos() as u64,
                            h2_ns: 0,
                        });
                    }
                    Err(_) => {
                        fail_shard(state, demand, shard);
                        reg.failed_writes.inc();
                        for rest in ops {
                            complete_shard_down(rest, shard, state, reg);
                        }
                        return;
                    }
                }
            }
        }
    }
}

/// One scrub tick over `shard`: inject, shard-local scrub, escalate the
/// leftovers. Split out so [`daemon_loop`] can wrap it in `catch_unwind`.
#[allow(clippy::too_many_arguments)]
fn daemon_tick(
    state: &ShardedCache,
    shard: usize,
    injector: &mut FaultInjector,
    inject: bool,
    reg: &TelemetryRegistry,
    plane: &AuditPlane,
    cursor: &mut usize,
    packets_per_tick: usize,
) {
    let started = Instant::now();
    let injected = if inject {
        state.inject_shard(shard, injector)
    } else {
        Vec::new()
    };
    reg.injected_lines.add(injected.len() as u64);
    // The bounded incremental sweep: advance this shard's packet cursor
    // far enough per tick that every owned line is revisited within the
    // scrub deadline (the golden-zero fast path makes clean lines nearly
    // free to rescan). Injection hints alone only cover lines the
    // simulator *knows* it faulted — the sweep is what makes the 20 ms
    // guarantee an audited property instead of an assumption.
    let tracker = &plane.tracker;
    let n_packets = tracker.n_packets(shard);
    let packet_lines = tracker.packet_lines();
    let owned = state.plan().owned_line_count(shard);
    let mut hints = injected;
    let mut swept = Vec::with_capacity(packets_per_tick);
    for _ in 0..packets_per_tick.min(n_packets) {
        let packet = *cursor % n_packets;
        *cursor = (*cursor + 1) % n_packets;
        let start = packet as u64 * packet_lines;
        let end = (start + packet_lines).min(owned);
        hints.extend((start..end).map(|idx| state.plan().owned_line_at(shard, idx)));
        swept.push(packet);
    }
    hints.sort_unstable();
    hints.dedup();
    let (_report, leftover) = state.scrub_shard_local(shard, &hints);
    for packet in swept {
        tracker.note_packet(shard, packet);
    }
    reg.scrub_tick_ns
        .record(started.elapsed().as_nanos() as u64);
    if !leftover.is_empty() {
        let escalation_start = Instant::now();
        let report = state.escalate(&leftover);
        reg.h2_gather_ns
            .record(escalation_start.elapsed().as_nanos() as u64);
        reg.escalations.inc();
        reg.escalated_lines.add(leftover.len() as u64);
        reg.unresolved_lines.add(report.unresolved.len() as u64);
    }
    reg.scrub_ticks.inc();
}

/// Maps a served read's result to its trace outcome.
fn read_outcome(result: &Result<LineData, ServiceError>) -> TraceOutcome {
    match result {
        Ok(_) => TraceOutcome::Ok,
        Err(e) if e.is_due() => TraceOutcome::Due,
        Err(_) => TraceOutcome::Error,
    }
}

#[allow(clippy::too_many_arguments)] // private; mirrors the service wiring
fn daemon_loop(
    state: &ShardedCache,
    tick: Duration,
    master: &FaultInjector,
    stop: &AtomicBool,
    panic_flag: &AtomicBool,
    reg: &TelemetryRegistry,
    plane: &AuditPlane,
    stall_us: &AtomicU64,
) -> bool {
    let mut panicked = false;
    // One decorrelated injector per shard: the fault streams are fixed by
    // (seed, shard) alone, independent of tick interleaving.
    let mut injectors: Vec<FaultInjector> = (0..state.n_shards())
        .map(|s| master.fork(s as u64))
        .collect();
    // Per-shard sweep cursors and per-tick packet quotas: a shard is
    // ticked every `tick × n_shards`, so covering all its packets within
    // the deadline needs `n_packets × period / deadline` packets per tick
    // — swept at 1.25× that rate so scheduling lag has headroom.
    let period_ns = (tick.as_nanos() as u64).saturating_mul(state.n_shards() as u64);
    let deadline_ns = plane.tracker.deadline_ns().max(1);
    let mut cursors = vec![0usize; state.n_shards()];
    let quotas: Vec<usize> = (0..state.n_shards())
        .map(|s| {
            let n_packets = plane.tracker.n_packets(s) as u64;
            let per_tick = (n_packets * period_ns * 5).div_ceil(4 * deadline_ns).max(1);
            per_tick.min(n_packets) as usize
        })
        .collect();
    let mut next_shard = 0usize;
    'daemon: loop {
        // Sleep in small slices so shutdown stays prompt.
        let deadline = Instant::now() + tick;
        while Instant::now() < deadline {
            if stop.load(Ordering::Relaxed) {
                break 'daemon;
            }
            std::thread::sleep(tick.min(Duration::from_millis(1)));
        }
        // Chaos hook: an injected stall — alive but not scrubbing. It
        // lands *after* the tick deadline so the whole stall shows up as
        // tick lag and growing packet staleness, exactly like a real
        // starvation would.
        let stall = stall_us.swap(0, Ordering::Relaxed);
        if stall > 0 {
            let until = Instant::now() + Duration::from_micros(stall);
            while Instant::now() < until {
                if stop.load(Ordering::Relaxed) {
                    break 'daemon;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // How late the tick started: scheduling + the previous tick's
        // overrun. The gauge holds the latest value; the histogram the
        // whole distribution.
        let lag_ns = Instant::now().duration_since(deadline).as_nanos() as u64;
        reg.tick_lag_ns.record(lag_ns);
        reg.last_tick_lag_ns.set(lag_ns);
        let shard = next_shard;
        next_shard = (next_shard + 1) % state.n_shards();
        reg.scrub_cursor.set(next_shard as u64);
        if !state.health().is_up(shard) {
            // A quarantined shard's state is frozen: no injection (physics
            // on a dead shard is unobservable anyway) and no scrub.
            reg.skipped_ticks.inc();
            continue;
        }
        let inject = master.ber() > 0.0;
        let injector = &mut injectors[shard];
        let result = catch_unwind(AssertUnwindSafe(|| {
            if panic_flag.swap(false, Ordering::Relaxed) {
                panic!("injected scrub daemon panic");
            }
            daemon_tick(
                state,
                shard,
                injector,
                inject,
                reg,
                plane,
                &mut cursors[shard],
                quotas[shard],
            );
        }));
        if result.is_err() {
            // Scrubbing stops (reported), demand traffic continues.
            panicked = true;
            reg.daemon_dead.set(1);
            break;
        }
    }
    panicked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with(bits: &[usize]) -> LineData {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let mut config = ServiceConfig::small(256, 4, 0.0, 1);
        config.scrub_every = None;
        config.queue_depth = 4; // small queue: the test exercises blocking
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        for line in 0..200u64 {
            handle
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        let report = service.shutdown();
        assert_eq!(report.writes, 200, "drain must serve every write");
        assert_eq!(report.stats.writes, 200);
        assert_eq!(report.due_reads, 0);
        assert!(report.fully_healthy());
    }

    #[test]
    fn concurrent_clients_roundtrip_against_separate_shards() {
        let mut config = ServiceConfig::small(512, 4, 0.0, 2);
        config.scrub_every = None;
        let service = Service::start(config).unwrap();
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let handle = service.handle();
                s.spawn(move || {
                    for i in 0..64u64 {
                        let line = worker * 128 + i;
                        let data = data_with(&[(line as usize * 3) % 512]);
                        handle.write(line, &data).unwrap();
                        assert_eq!(handle.read(line).unwrap(), data);
                    }
                });
            }
        });
        // The registry is live: inspect it before shutdown.
        let reg = Arc::clone(service.registry());
        assert_eq!(reg.reads.get(), 256);
        assert_eq!(reg.traces_issued(), 512);
        let report = service.shutdown();
        assert_eq!(report.reads, 256);
        assert_eq!(report.writes, 256);
        assert_eq!(report.due_reads, 0);
        assert!(report.hists.read_latency_ns.count() == 256);
        // Phase accounting covers every request: queue wait is recorded
        // for reads and writes alike (zero for lock-free reads).
        assert_eq!(reg.queue_wait_ns.snapshot().count(), 512);
    }

    #[test]
    fn scrub_daemon_heals_injected_faults() {
        let mut config = ServiceConfig::small(1024, 4, 2e-4, 3);
        config.scrub_every = Some(Duration::from_millis(1));
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        // Demand traffic concurrent with injection + scrub.
        for line in 0..256u64 {
            handle
                .write(line * 4, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(40));
        for line in 0..256u64 {
            assert_eq!(
                handle.read(line * 4).unwrap(),
                data_with(&[line as usize % 512]),
                "line {line} corrupted"
            );
        }
        let report = service.shutdown();
        assert!(report.scrub_ticks >= 4, "{report:?}");
        assert!(report.injected_lines > 0, "{report:?}");
        assert_eq!(report.due_reads, 0);
        assert!(report.fully_healthy());
    }

    #[test]
    fn depth_gauge_returns_to_zero_after_rejected_sends() {
        // Regression: a failed send used to leave the optimistic depth
        // increment behind, drifting the gauge upward forever.
        let mut config = ServiceConfig::small(256, 4, 0.0, 7);
        config.scrub_every = None;
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        let victim = handle.shard_of(0);
        handle.inject_worker_panic(victim, false).unwrap();
        // Wait for the quarantine to land.
        while !handle.quarantined().contains(&victim) {
            std::thread::sleep(Duration::from_micros(50));
        }
        for line in 0..64u64 {
            let s = handle.shard_of(line);
            let r = handle.write(line, &data_with(&[1]));
            if s == victim {
                assert_eq!(r, Err(ServiceError::ShardDown(victim)));
            } else {
                r.unwrap();
            }
        }
        let report = service.shutdown();
        assert_eq!(report.worker_panics, vec![victim]);
        // Every accepted request was served, every rejected one undone:
        // the gauge histogram never saw a depth above the queue bound.
        assert!(report.hists.queue_depth.max() <= 64);
        assert_eq!(report.writes, 48);
        assert_eq!(report.quarantined, vec![victim]);
    }

    #[test]
    fn daemon_panic_is_survivable() {
        let mut config = ServiceConfig::small(256, 4, 0.0, 9);
        config.scrub_every = Some(Duration::from_millis(1));
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        service.inject_daemon_panic();
        // The registry flags the dead daemon live (panic unwinding takes a
        // few ms, so poll rather than sleep a fixed interval).
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.registry().daemon_dead.get() == 0 {
            assert!(Instant::now() < deadline, "daemon_dead never flagged");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Demand traffic is unaffected by the daemon's death.
        handle.write(3, &data_with(&[3])).unwrap();
        assert_eq!(handle.read(3).unwrap(), data_with(&[3]));
        let report = service.shutdown();
        assert!(report.daemon_panicked);
        assert!(report.worker_panics.is_empty());
        assert_eq!(report.writes, 1);
    }

    #[test]
    fn clean_reads_are_served_lock_free() {
        let mut config = ServiceConfig::small(256, 4, 0.0, 11);
        config.scrub_every = None;
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        for line in 0..64u64 {
            handle.write(line, &data_with(&[line as usize])).unwrap();
        }
        // Writes complete at acceptance: the first read of each line may
        // queue behind its still-pending write (FIFO gives read-your-write),
        // after which the line is published and the second read MUST be
        // served straight from the seqlock view.
        for line in 0..64u64 {
            assert_eq!(handle.read(line).unwrap(), data_with(&[line as usize]));
        }
        for line in 0..64u64 {
            assert_eq!(handle.read(line).unwrap(), data_with(&[line as usize]));
        }
        let report = service.shutdown();
        assert_eq!(report.reads, 128);
        assert!(
            report.lockfree_reads >= 64,
            "clean reads must bypass the queue: {} lock-free of {}",
            report.lockfree_reads,
            report.reads
        );
        // The view's accounting matches the reference: each lock-free read
        // is one cache read + one CRC check in aggregate stats.
        assert_eq!(report.stats.reads, 128);
    }
}
