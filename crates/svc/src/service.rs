//! The live service front-end: per-shard worker threads behind bounded
//! request queues, a background scrub daemon with per-shard forked fault
//! injectors, a live telemetry plane, and graceful drain/shutdown.
//!
//! Queueing/backpressure semantics: each shard has one bounded MPSC queue
//! ([`std::sync::mpsc::sync_channel`]); producers block when a shard's
//! queue is full, so a hot shard throttles its own clients rather than
//! growing without bound. The queue is FIFO, which is also what makes
//! shutdown a *drain*: the shutdown marker is enqueued last, so every
//! request accepted before it is fully served first.
//!
//! The scrub daemon ticks shards round-robin on the configured interval:
//! inject (per-shard decorrelated [`FaultInjector::fork`] streams, so
//! concurrent injection is reproducible regardless of thread
//! interleaving), then a shard-local Hash-1 scrub, then cross-shard
//! escalation of whatever the shard could not resolve alone.
//!
//! # Telemetry
//!
//! Every worker and the daemon publish into a shared lock-free
//! [`TelemetryRegistry`] as they go — counters, queue-depth gauges, and
//! per-phase latency histograms (queue wait → shard service → cross-shard
//! H2 gather+repair), threaded by a per-request trace ID the handle
//! allocates at enqueue time. The end-of-run [`ServiceReport`] is now just
//! a final read of that registry; with [`ServiceConfig::telemetry`] set, a
//! sampler thread additionally records periodic [`TelemetrySnapshot`]s
//! into a bounded flight recorder (and optional JSONL time series), and a
//! std-only TCP exporter serves `GET /metrics`, `/healthz`, and
//! `/snapshot.json` while the service runs.
//!
//! # Failure semantics
//!
//! Nothing on the client path panics. Every handle operation returns
//! `Result<_, `[`ServiceError`]`>`:
//!
//! * A worker panic (real or injected via
//!   [`ServiceHandle::inject_worker_panic`]) is caught at the request
//!   boundary; the shard is **quarantined**, its queued requests are
//!   drained with an error reply, and subsequent requests to it fail fast
//!   with [`ServiceError::ShardDown`] while the other N−1 shards keep
//!   serving. The registry (shared, not worker-local) keeps everything the
//!   dead worker recorded.
//! * A scrub daemon panic is caught per tick; scrubbing stops but demand
//!   traffic continues, and [`ServiceReport::daemon_panicked`] says so.
//! * Shutdown never panics: dead workers are recorded in
//!   [`ServiceReport::worker_panics`], surviving telemetry is harvested
//!   (a poisoned shard mutex does not block counter collection), and the
//!   degraded-mode counters land in [`ServiceReport::degraded`].
//!
//! [`TelemetrySnapshot`]: crate::TelemetrySnapshot

use crate::degraded::{DegradedConfig, DegradedStats};
use crate::error::{ServiceError, StartError};
use crate::exporter::Exporter;
use crate::sharded::ShardedCache;
use crate::telemetry::{
    FlightRecorder, TelemetryConfig, TelemetryRegistry, TelemetrySnapshot, TraceRecord,
};
use std::io::Write as _;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sudoku_codes::LineData;
use sudoku_core::{CacheStats, Recorder, ShardPlan, SudokuConfig};
use sudoku_fault::{FaultInjector, StuckBitMap};
use sudoku_obs::{RecoveryHistograms, ServiceHistograms};

/// Configuration of a running [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The cache geometry and scheme (the service applies
    /// [`SudokuConfig::with_deferred_hash2`] internally per shard).
    pub cache: SudokuConfig,
    /// Number of shards = number of worker threads.
    pub n_shards: usize,
    /// Bound of each shard's request queue (producers block when full).
    pub queue_depth: usize,
    /// Scrub daemon tick period; `None` disables the daemon.
    pub scrub_every: Option<Duration>,
    /// Per-interval transient bit error rate injected by the daemon
    /// (0.0 = scrub without injection).
    pub ber: f64,
    /// Master seed; per-shard injectors fork decorrelated streams from it.
    pub seed: u64,
    /// Permanent (stuck-at) cells of the underlying array — physics, not
    /// controller state: they reassert after every write and repair.
    pub stuck: StuckBitMap,
    /// Quarantine/sparing policy for degraded operation.
    pub degraded: DegradedConfig,
    /// Live telemetry plane (sampler, flight recorder, scrape endpoint);
    /// `None` runs the lock-free registry only, with zero extra threads.
    pub telemetry: Option<TelemetryConfig>,
}

impl ServiceConfig {
    /// A small functional-test configuration: SuDoku-Z, `lines` lines in
    /// groups of 16, 4 shards, a 2 ms scrub tick, a pristine array.
    pub fn small(lines: u64, n_shards: usize, ber: f64, seed: u64) -> Self {
        ServiceConfig {
            cache: SudokuConfig::small(sudoku_core::Scheme::Z, lines, 16),
            n_shards,
            queue_depth: 64,
            scrub_every: Some(Duration::from_millis(2)),
            ber,
            seed,
            stuck: StuckBitMap::new(),
            degraded: DegradedConfig::default(),
            telemetry: None,
        }
    }
}

/// One demand request to a shard worker.
enum Request {
    Read {
        line: u64,
        trace: u64,
        enqueued: Instant,
        reply: Sender<ReadReply>,
    },
    Write {
        line: u64,
        trace: u64,
        data: LineData,
        enqueued: Instant,
    },
    /// Chaos injection: the worker panics on purpose when it dequeues
    /// this, optionally while holding its shard's state mutex (which
    /// poisons it, like a real mid-repair panic would).
    Panic { hold_lock: bool },
    /// Drain marker: the worker exits after serving everything before it.
    Shutdown,
}

/// The answer to a [`ServiceHandle`] read.
#[derive(Clone, Copy, Debug)]
pub struct ReadReply {
    /// The line that was read.
    pub line: u64,
    /// The request's trace ID (allocated at enqueue; the same ID keys the
    /// sampled per-phase [`TraceRecord`]s in `/snapshot.json`).
    pub trace: u64,
    /// The recovered data, a DUE, or an availability error.
    pub result: Result<LineData, ServiceError>,
}

/// End-of-run summary assembled by [`Service::shutdown`].
#[derive(Debug)]
pub struct ServiceReport {
    /// Shard count the service ran with.
    pub shards: usize,
    /// Aggregate cache counters (all shards + coordinator).
    pub stats: CacheStats,
    /// Per-shard cache counters.
    pub per_shard: Vec<CacheStats>,
    /// Service-level latency/queue-depth histograms (workers + daemon).
    pub hists: ServiceHistograms,
    /// Recovery-ladder histograms harvested from every shard recorder.
    pub recovery_hists: RecoveryHistograms,
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// Demand writes rejected (owning shard down).
    pub failed_writes: u64,
    /// Demand reads that needed cross-shard escalation.
    pub escalated_reads: u64,
    /// Demand reads that remained uncorrectable (DUE).
    pub due_reads: u64,
    /// Scrub daemon ticks completed (one tick = one shard).
    pub scrub_ticks: u64,
    /// Daemon ticks skipped because the shard was quarantined.
    pub skipped_ticks: u64,
    /// Lines faulted by the daemon's injectors.
    pub injected_lines: u64,
    /// Cross-shard escalations triggered by scrub leftovers.
    pub escalations: u64,
    /// Lines handed to those escalations.
    pub escalated_lines: u64,
    /// Lines still unresolved after escalation (scrub-detected DUEs).
    pub unresolved_lines: u64,
    /// Shards whose worker panicked (caught; shard quarantined).
    pub worker_panics: Vec<usize>,
    /// Whether the scrub daemon died to a caught panic.
    pub daemon_panicked: bool,
    /// Shards quarantined at shutdown (worker panics + poisoned locks).
    pub quarantined: Vec<usize>,
    /// Degraded-mode counters: sparing, stuck-cell physics, fail-fasts.
    pub degraded: DegradedStats,
}

impl ServiceReport {
    /// Uncorrected lines from any path (demand DUEs + scrub DUEs).
    pub fn total_due(&self) -> u64 {
        self.due_reads + self.unresolved_lines
    }

    /// Whether the run ended with every shard up and no caught panics.
    pub fn fully_healthy(&self) -> bool {
        self.worker_panics.is_empty() && !self.daemon_panicked && self.quarantined.is_empty()
    }

    /// JSON object with the headline counters and latency quantiles.
    pub fn to_json(&self) -> String {
        let mut obj = sudoku_obs::json::JsonObject::new();
        obj.field_u64("shards", self.shards as u64)
            .field_u64("reads", self.reads)
            .field_u64("writes", self.writes)
            .field_u64("failed_writes", self.failed_writes)
            .field_u64("escalated_reads", self.escalated_reads)
            .field_u64("due_reads", self.due_reads)
            .field_u64("scrub_ticks", self.scrub_ticks)
            .field_u64("skipped_ticks", self.skipped_ticks)
            .field_u64("injected_lines", self.injected_lines)
            .field_u64("escalations", self.escalations)
            .field_u64("escalated_lines", self.escalated_lines)
            .field_u64("unresolved_lines", self.unresolved_lines)
            .field_array_u64(
                "worker_panics",
                self.worker_panics.iter().map(|&s| s as u64),
            )
            .field_bool("daemon_panicked", self.daemon_panicked)
            .field_array_u64("quarantined", self.quarantined.iter().map(|&s| s as u64))
            .field_raw("degraded", &self.degraded.to_json())
            .field_raw("stats", &self.stats.to_json())
            .field_raw("service_hists", &self.hists.to_json());
        obj.finish()
    }
}

/// A cloneable client of a running [`Service`]: routes each request to the
/// owning shard's queue, blocking when that queue is full (backpressure).
#[derive(Clone)]
pub struct ServiceHandle {
    plan: ShardPlan,
    senders: Vec<SyncSender<Request>>,
    registry: Arc<TelemetryRegistry>,
    state: Arc<ShardedCache>,
}

impl ServiceHandle {
    /// The shard that owns `line` (useful for interpreting
    /// [`ServiceError::ShardDown`]).
    pub fn shard_of(&self, line: u64) -> usize {
        self.plan.shard_of_line(line)
    }

    /// Shards currently quarantined, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        self.state.health().quarantined()
    }

    /// Why a send to shard `s` failed: the shard died, or the whole
    /// service is shutting down.
    fn disconnect_error(&self, s: usize) -> ServiceError {
        if self.state.health().is_up(s) {
            ServiceError::ShuttingDown
        } else {
            self.state.note_reject();
            ServiceError::ShardDown(s)
        }
    }

    /// Enqueues a write for `line`'s shard, blocking on a full queue.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShardDown`] when the owning shard is quarantined,
    /// [`ServiceError::ShuttingDown`] when the service no longer accepts
    /// requests. Either way the write was **not** accepted.
    pub fn write(&self, line: u64, data: &LineData) -> Result<(), ServiceError> {
        let s = self.plan.shard_of_line(line);
        if !self.state.health().is_up(s) {
            self.state.note_reject();
            return Err(ServiceError::ShardDown(s));
        }
        let trace = self.registry.next_trace_id();
        self.registry.depth(s).inc();
        self.senders[s]
            .send(Request::Write {
                line,
                trace,
                data: *data,
                enqueued: Instant::now(),
            })
            .map_err(|_| {
                // Not accepted: undo the depth accounting.
                self.registry.depth(s).dec();
                self.disconnect_error(s)
            })
    }

    /// Enqueues a read whose reply goes to `reply` (a caller-owned
    /// channel, so a worker thread can keep several reads in flight).
    ///
    /// # Errors
    ///
    /// Same acceptance errors as [`ServiceHandle::write`]; on `Err` no
    /// reply will arrive for this request.
    pub fn read_to(&self, line: u64, reply: &Sender<ReadReply>) -> Result<(), ServiceError> {
        let s = self.plan.shard_of_line(line);
        if !self.state.health().is_up(s) {
            self.state.note_reject();
            return Err(ServiceError::ShardDown(s));
        }
        let trace = self.registry.next_trace_id();
        self.registry.depth(s).inc();
        self.senders[s]
            .send(Request::Read {
                line,
                trace,
                enqueued: Instant::now(),
                reply: reply.clone(),
            })
            .map_err(|_| {
                self.registry.depth(s).dec();
                self.disconnect_error(s)
            })
    }

    /// Blocking read convenience: enqueue, wait for the reply.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Uncorrectable`] when even cross-shard recovery
    /// failed (DUE), [`ServiceError::ShardDown`] when the owning shard is
    /// quarantined (including mid-flight: a request that dies with its
    /// worker reports the shard, never a panic), and
    /// [`ServiceError::ShuttingDown`] when the service is gone.
    pub fn read(&self, line: u64) -> Result<LineData, ServiceError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.read_to(line, &tx)?;
        // Drop our sender so a worker that dies holding the only other
        // clone disconnects the channel instead of leaving us waiting.
        drop(tx);
        match rx.recv() {
            Ok(reply) => reply.result,
            // The worker dropped our reply sender without answering: it
            // panicked (or the service is tearing down) after accepting.
            Err(_) => Err(self.disconnect_error(self.plan.shard_of_line(line))),
        }
    }

    /// Chaos hook: makes `shard`'s worker panic when it dequeues this
    /// request — with `hold_lock`, while holding the shard's state mutex,
    /// poisoning it exactly like an organic mid-repair panic.
    ///
    /// # Errors
    ///
    /// The same acceptance errors as any other request.
    pub fn inject_worker_panic(&self, shard: usize, hold_lock: bool) -> Result<(), ServiceError> {
        self.senders[shard]
            .send(Request::Panic { hold_lock })
            .map_err(|_| self.disconnect_error(shard))
    }

    /// Current depth of each shard's request queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.registry
            .queue_depths()
            .into_iter()
            .map(|d| d as usize)
            .collect()
    }

    /// The live metrics registry this handle feeds.
    pub fn registry(&self) -> &Arc<TelemetryRegistry> {
        &self.registry
    }
}

/// The running concurrent sharded cache service.
///
/// # Examples
///
/// ```
/// use sudoku_svc::{Service, ServiceConfig};
/// use sudoku_codes::LineData;
///
/// let service = Service::start(ServiceConfig::small(256, 4, 0.0, 42))?;
/// let handle = service.handle();
/// let mut data = LineData::zero();
/// data.set_bit(9, true);
/// handle.write(17, &data)?;
/// assert_eq!(handle.read(17)?, data);
/// let report = service.shutdown();
/// assert_eq!(report.writes, 1);
/// assert!(report.fully_healthy());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Service {
    state: Arc<ShardedCache>,
    senders: Vec<SyncSender<Request>>,
    registry: Arc<TelemetryRegistry>,
    workers: Vec<JoinHandle<bool>>,
    daemon: Option<JoinHandle<bool>>,
    stop: Arc<AtomicBool>,
    daemon_panic: Arc<AtomicBool>,
    recorder: Option<Arc<FlightRecorder>>,
    sampler: Option<JoinHandle<()>>,
    sampler_stop: Arc<AtomicBool>,
    exporter: Option<Exporter>,
}

impl Service {
    /// Starts the shard workers (and the scrub daemon, when configured).
    ///
    /// # Errors
    ///
    /// [`StartError::Config`] for cache/shard validation failures,
    /// [`StartError::Telemetry`] when the scrape endpoint cannot bind or
    /// the flight-recorder JSONL file cannot be created.
    pub fn start(config: ServiceConfig) -> Result<Self, StartError> {
        let state = Arc::new(ShardedCache::with_faults(
            config.cache,
            config.n_shards,
            config.stuck,
            config.degraded,
        )?);
        let registry = Arc::new(TelemetryRegistry::new(config.n_shards));
        let mut senders = Vec::with_capacity(config.n_shards);
        let mut workers = Vec::with_capacity(config.n_shards);
        for shard in 0..config.n_shards {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            senders.push(tx);
            let state = Arc::clone(&state);
            let registry = Arc::clone(&registry);
            workers.push(std::thread::spawn(move || {
                worker_loop(&state, shard, &rx, &registry)
            }));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let daemon_panic = Arc::new(AtomicBool::new(false));
        let daemon = config.scrub_every.map(|tick| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let panic_flag = Arc::clone(&daemon_panic);
            let registry = Arc::clone(&registry);
            let master = FaultInjector::new(config.ber, config.seed);
            std::thread::spawn(move || {
                daemon_loop(&state, tick, &master, &stop, &panic_flag, &registry)
            })
        });
        // The optional plane: sampler + flight recorder + scrape endpoint.
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let (recorder, sampler, exporter) = match &config.telemetry {
            None => (None, None, None),
            Some(tcfg) => {
                let recorder = Arc::new(FlightRecorder::new(tcfg.flight_recorder_cap));
                let jsonl = match &tcfg.jsonl_path {
                    None => None,
                    Some(path) => Some(std::io::BufWriter::new(std::fs::File::create(path)?)),
                };
                let exporter = match tcfg.port {
                    None => None,
                    Some(port) => Some(Exporter::start(
                        port,
                        Arc::clone(&state),
                        Arc::clone(&registry),
                        Arc::clone(&recorder),
                    )?),
                };
                let sampler = {
                    let state = Arc::clone(&state);
                    let registry = Arc::clone(&registry);
                    let recorder = Arc::clone(&recorder);
                    let stop = Arc::clone(&sampler_stop);
                    let every = tcfg.sample_every.max(Duration::from_millis(1));
                    std::thread::spawn(move || {
                        sampler_loop(&state, &registry, &recorder, jsonl, every, &stop)
                    })
                };
                (Some(recorder), Some(sampler), exporter)
            }
        };
        Ok(Service {
            state,
            senders,
            registry,
            workers,
            daemon,
            stop,
            daemon_panic,
            recorder,
            sampler,
            sampler_stop,
            exporter,
        })
    }

    /// A new client handle (cheap to clone, safe to share across threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            plan: *self.state.plan(),
            senders: self.senders.clone(),
            registry: Arc::clone(&self.registry),
            state: Arc::clone(&self.state),
        }
    }

    /// The sharded storage engine behind the service (for direct
    /// inspection in tests; demand traffic should go through handles).
    pub fn state(&self) -> &Arc<ShardedCache> {
        &self.state
    }

    /// The live metrics registry every worker and the daemon publish into.
    pub fn registry(&self) -> &Arc<TelemetryRegistry> {
        &self.registry
    }

    /// The flight recorder, when [`ServiceConfig::telemetry`] enabled one.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The scrape endpoint's bound address, when one is serving (use port
    /// 0 in [`TelemetryConfig::port`] to let the OS choose).
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(Exporter::addr)
    }

    /// Chaos hook: the scrub daemon panics at the start of its next tick
    /// (caught; scrubbing stops, demand traffic continues, and the report
    /// says [`ServiceReport::daemon_panicked`]).
    pub fn inject_daemon_panic(&self) {
        self.daemon_panic.store(true, Ordering::Relaxed);
    }

    /// Graceful drain and shutdown: stops the scrub daemon, enqueues a
    /// drain marker behind every already-accepted request, joins all
    /// threads (sampler last, so the flight recorder's final snapshot sees
    /// the quiesced system), and assembles the end-of-run report. Every
    /// request accepted before the call is fully served by live shards;
    /// requests stranded on dead shards produce error replies, never
    /// hangs.
    ///
    /// Never panics: dead workers and a dead daemon are reported in
    /// [`ServiceReport::worker_panics`] / [`ServiceReport::daemon_panicked`],
    /// with their surviving telemetry still harvested.
    pub fn shutdown(self) -> ServiceReport {
        // 1. Stop the daemon first so no new scrub work races the drain.
        self.stop.store(true, Ordering::Relaxed);
        let mut daemon_panicked = false;
        if let Some(handle) = self.daemon {
            match handle.join() {
                Ok(panicked) => daemon_panicked = panicked,
                // The per-tick catch_unwind makes this unreachable short of
                // a panic in the loop scaffolding itself; report it anyway.
                Err(_) => daemon_panicked = true,
            }
        }
        // 2. Drain the shards: the FIFO queue serves everything enqueued
        //    before the marker. A dead worker's channel just errors.
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        drop(self.senders);
        let mut worker_panics = Vec::new();
        for (shard, worker) in self.workers.into_iter().enumerate() {
            match worker.join() {
                Ok(panicked) => {
                    if panicked {
                        worker_panics.push(shard);
                    }
                }
                Err(_) => {
                    // Panic escaped the catch (scaffolding bug): still no
                    // propagation — quarantine and report.
                    self.state.health().quarantine(shard);
                    worker_panics.push(shard);
                }
            }
        }
        // 3. Retire the telemetry plane: the sampler takes one final
        //    snapshot of the quiesced system on its way out (so the last
        //    flight-recorder entry / JSONL line is the end state), then
        //    the exporter stops serving.
        self.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(sampler) = self.sampler {
            let _ = sampler.join();
        }
        drop(self.exporter);
        // 4. Harvest telemetry and counters from the quiesced engine —
        //    including from quarantined shards (poison-tolerant locks).
        let mut master = Recorder::unbounded();
        self.state.harvest_recorders(&mut master);
        let reg = &self.registry;
        ServiceReport {
            shards: self.state.n_shards(),
            stats: self.state.stats(),
            per_shard: self.state.shard_stats(),
            hists: reg.service_hists(),
            recovery_hists: master.hists,
            reads: reg.reads.get(),
            writes: reg.writes.get(),
            failed_writes: reg.failed_writes.get(),
            escalated_reads: reg.escalated_reads.get(),
            due_reads: reg.due_reads.get(),
            scrub_ticks: reg.scrub_ticks.get(),
            skipped_ticks: reg.skipped_ticks.get(),
            injected_lines: reg.injected_lines.get(),
            escalations: reg.escalations.get(),
            escalated_lines: reg.escalated_lines.get(),
            unresolved_lines: reg.unresolved_lines.get(),
            worker_panics,
            daemon_panicked,
            quarantined: self.state.health().quarantined(),
            degraded: self.state.degraded_stats(),
        }
    }
}

/// The sampler thread: one [`TelemetrySnapshot`] per interval into the
/// flight recorder (and the JSONL time series, flushed per line so a
/// crash loses at most the current interval), plus one final snapshot of
/// the quiesced system when the stop flag lands.
fn sampler_loop(
    state: &ShardedCache,
    registry: &TelemetryRegistry,
    recorder: &FlightRecorder,
    mut jsonl: Option<std::io::BufWriter<std::fs::File>>,
    every: Duration,
    stop: &AtomicBool,
) {
    let mut seq = 0u64;
    loop {
        // Sleep in small slices so shutdown stays prompt.
        let deadline = Instant::now() + every;
        while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(every.min(Duration::from_millis(1)));
        }
        let snap = TelemetrySnapshot::capture(seq, state, registry);
        seq += 1;
        if let Some(w) = jsonl.as_mut() {
            let _ = writeln!(w, "{}", snap.to_json());
            let _ = w.flush();
        }
        recorder.push(snap);
        if stop.load(Ordering::Relaxed) {
            break; // the snapshot above was the final, post-drain capture
        }
    }
}

/// Serves one dequeued request. Split out of [`worker_loop`] so the loop
/// can wrap each request in `catch_unwind` — a panic mid-request (organic
/// or injected) must kill the *shard*, not the process. All telemetry
/// goes straight into the shared registry, so nothing is lost with a
/// dying worker.
fn serve_request(state: &ShardedCache, shard: usize, request: Request, reg: &TelemetryRegistry) {
    match request {
        Request::Shutdown => unreachable!("drain marker is handled by the loop"),
        Request::Panic { hold_lock } => state.chaos_panic(shard, hold_lock),
        Request::Read {
            line,
            trace,
            enqueued,
            reply,
        } => {
            let d = reg.depth(shard).dec();
            reg.queue_depth_hist.record(d);
            reg.reads.inc();
            let service_start = Instant::now();
            let queue_wait_ns = service_start.duration_since(enqueued).as_nanos() as u64;
            let mut h2_ns = 0u64;
            let result = match state.read_local(line) {
                Ok(data) => Ok(data),
                Err(ServiceError::Uncorrectable(_)) => {
                    // Shard-local (Hash-1) ladder exhausted: cross-shard
                    // Hash-2 escalation, fetching the repaired value.
                    reg.escalated_reads.inc();
                    let h2_start = Instant::now();
                    let fetched = state.escalate_fetch(line);
                    h2_ns = h2_start.elapsed().as_nanos() as u64;
                    reg.h2_gather_ns.record(h2_ns);
                    fetched
                }
                // Availability errors (the shard died under us) reply
                // as-is — escalation cannot help a quarantined owner.
                Err(e) => Err(e),
            };
            if matches!(result, Err(ServiceError::Uncorrectable(_))) {
                reg.due_reads.inc();
            }
            reg.note_request(TraceRecord {
                trace,
                shard: shard as u32,
                write: false,
                queue_wait_ns,
                service_ns: service_start.elapsed().as_nanos() as u64,
                h2_ns,
            });
            let _ = reply.send(ReadReply {
                line,
                trace,
                result,
            });
        }
        Request::Write {
            line,
            trace,
            data,
            enqueued,
        } => {
            let d = reg.depth(shard).dec();
            reg.queue_depth_hist.record(d);
            let service_start = Instant::now();
            let queue_wait_ns = service_start.duration_since(enqueued).as_nanos() as u64;
            match state.write(line, &data) {
                Ok(()) => reg.writes.inc(),
                Err(_) => reg.failed_writes.inc(),
            }
            reg.note_request(TraceRecord {
                trace,
                shard: shard as u32,
                write: true,
                queue_wait_ns,
                service_ns: service_start.elapsed().as_nanos() as u64,
                h2_ns: 0,
            });
        }
    }
}

fn worker_loop(
    state: &ShardedCache,
    shard: usize,
    rx: &Receiver<Request>,
    reg: &TelemetryRegistry,
) -> bool {
    let mut panicked = false;
    while let Ok(request) = rx.recv() {
        if matches!(request, Request::Shutdown) {
            // Serve-nothing drain of post-marker stragglers keeps the
            // depth gauges honest; their reply senders drop, so blocked
            // readers unblock with a disconnect error.
            drain_queue(rx, reg, shard);
            break;
        }
        let served = catch_unwind(AssertUnwindSafe(|| {
            serve_request(state, shard, request, reg);
        }));
        if served.is_err() {
            // The shard is now suspect (its mutex may be poisoned, its
            // in-flight request is lost): quarantine, drain, retire. The
            // registry is shared, so everything recorded so far survives.
            panicked = true;
            state.health().quarantine(shard);
            drain_queue(rx, reg, shard);
            break;
        }
    }
    panicked
}

/// Discards everything queued on `rx`, undoing the depth accounting.
/// Dropping the requests drops their reply senders, so blocked readers
/// get a disconnect (mapped to [`ServiceError`]) instead of a hang.
fn drain_queue(rx: &Receiver<Request>, reg: &TelemetryRegistry, shard: usize) {
    while let Ok(request) = rx.try_recv() {
        if matches!(request, Request::Read { .. } | Request::Write { .. }) {
            reg.depth(shard).dec();
        }
    }
}

/// One scrub tick over `shard`: inject, shard-local scrub, escalate the
/// leftovers. Split out so [`daemon_loop`] can wrap it in `catch_unwind`.
fn daemon_tick(
    state: &ShardedCache,
    shard: usize,
    injector: &mut FaultInjector,
    inject: bool,
    reg: &TelemetryRegistry,
) {
    let started = Instant::now();
    let injected = if inject {
        state.inject_shard(shard, injector)
    } else {
        Vec::new()
    };
    reg.injected_lines.add(injected.len() as u64);
    let (_report, leftover) = state.scrub_shard_local(shard, &injected);
    reg.scrub_tick_ns
        .record(started.elapsed().as_nanos() as u64);
    if !leftover.is_empty() {
        let escalation_start = Instant::now();
        let report = state.escalate(&leftover);
        reg.h2_gather_ns
            .record(escalation_start.elapsed().as_nanos() as u64);
        reg.escalations.inc();
        reg.escalated_lines.add(leftover.len() as u64);
        reg.unresolved_lines.add(report.unresolved.len() as u64);
    }
    reg.scrub_ticks.inc();
}

fn daemon_loop(
    state: &ShardedCache,
    tick: Duration,
    master: &FaultInjector,
    stop: &AtomicBool,
    panic_flag: &AtomicBool,
    reg: &TelemetryRegistry,
) -> bool {
    let mut panicked = false;
    // One decorrelated injector per shard: the fault streams are fixed by
    // (seed, shard) alone, independent of tick interleaving.
    let mut injectors: Vec<FaultInjector> = (0..state.n_shards())
        .map(|s| master.fork(s as u64))
        .collect();
    let mut next_shard = 0usize;
    'daemon: loop {
        // Sleep in small slices so shutdown stays prompt.
        let deadline = Instant::now() + tick;
        while Instant::now() < deadline {
            if stop.load(Ordering::Relaxed) {
                break 'daemon;
            }
            std::thread::sleep(tick.min(Duration::from_millis(1)));
        }
        // How late the tick started: scheduling + the previous tick's
        // overrun. The gauge holds the latest value; the histogram the
        // whole distribution.
        let lag_ns = Instant::now().duration_since(deadline).as_nanos() as u64;
        reg.tick_lag_ns.record(lag_ns);
        reg.last_tick_lag_ns.set(lag_ns);
        let shard = next_shard;
        next_shard = (next_shard + 1) % state.n_shards();
        reg.scrub_cursor.set(next_shard as u64);
        if !state.health().is_up(shard) {
            // A quarantined shard's state is frozen: no injection (physics
            // on a dead shard is unobservable anyway) and no scrub.
            reg.skipped_ticks.inc();
            continue;
        }
        let inject = master.ber() > 0.0;
        let injector = &mut injectors[shard];
        let result = catch_unwind(AssertUnwindSafe(|| {
            if panic_flag.swap(false, Ordering::Relaxed) {
                panic!("injected scrub daemon panic");
            }
            daemon_tick(state, shard, injector, inject, reg);
        }));
        if result.is_err() {
            // Scrubbing stops (reported), demand traffic continues.
            panicked = true;
            reg.daemon_dead.set(1);
            break;
        }
    }
    panicked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with(bits: &[usize]) -> LineData {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let mut config = ServiceConfig::small(256, 4, 0.0, 1);
        config.scrub_every = None;
        config.queue_depth = 4; // small queue: the test exercises blocking
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        for line in 0..200u64 {
            handle
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        let report = service.shutdown();
        assert_eq!(report.writes, 200, "drain must serve every write");
        assert_eq!(report.stats.writes, 200);
        assert_eq!(report.due_reads, 0);
        assert!(report.fully_healthy());
    }

    #[test]
    fn concurrent_clients_roundtrip_against_separate_shards() {
        let mut config = ServiceConfig::small(512, 4, 0.0, 2);
        config.scrub_every = None;
        let service = Service::start(config).unwrap();
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let handle = service.handle();
                s.spawn(move || {
                    for i in 0..64u64 {
                        let line = worker * 128 + i;
                        let data = data_with(&[(line as usize * 3) % 512]);
                        handle.write(line, &data).unwrap();
                        assert_eq!(handle.read(line).unwrap(), data);
                    }
                });
            }
        });
        // The registry is live: inspect it before shutdown.
        let reg = Arc::clone(service.registry());
        assert_eq!(reg.reads.get(), 256);
        assert_eq!(reg.traces_issued(), 512);
        let report = service.shutdown();
        assert_eq!(report.reads, 256);
        assert_eq!(report.writes, 256);
        assert_eq!(report.due_reads, 0);
        assert!(report.hists.read_latency_ns.count() == 256);
        // Phase accounting covers every request: queue wait is recorded
        // for reads and writes alike.
        assert_eq!(reg.queue_wait_ns.snapshot().count(), 512);
    }

    #[test]
    fn scrub_daemon_heals_injected_faults() {
        let mut config = ServiceConfig::small(1024, 4, 2e-4, 3);
        config.scrub_every = Some(Duration::from_millis(1));
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        // Demand traffic concurrent with injection + scrub.
        for line in 0..256u64 {
            handle
                .write(line * 4, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(40));
        for line in 0..256u64 {
            assert_eq!(
                handle.read(line * 4).unwrap(),
                data_with(&[line as usize % 512]),
                "line {line} corrupted"
            );
        }
        let report = service.shutdown();
        assert!(report.scrub_ticks >= 4, "{report:?}");
        assert!(report.injected_lines > 0, "{report:?}");
        assert_eq!(report.due_reads, 0);
        assert!(report.fully_healthy());
    }

    #[test]
    fn depth_gauge_returns_to_zero_after_rejected_sends() {
        // Regression: a failed send used to leave the optimistic depth
        // increment behind, drifting the gauge upward forever.
        let mut config = ServiceConfig::small(256, 4, 0.0, 7);
        config.scrub_every = None;
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        let victim = handle.shard_of(0);
        handle.inject_worker_panic(victim, false).unwrap();
        // Wait for the quarantine to land.
        while !handle.quarantined().contains(&victim) {
            std::thread::sleep(Duration::from_micros(50));
        }
        for line in 0..64u64 {
            let s = handle.shard_of(line);
            let r = handle.write(line, &data_with(&[1]));
            if s == victim {
                assert_eq!(r, Err(ServiceError::ShardDown(victim)));
            } else {
                r.unwrap();
            }
        }
        let report = service.shutdown();
        assert_eq!(report.worker_panics, vec![victim]);
        // Every accepted request was served, every rejected one undone:
        // the gauge histogram never saw a depth above the queue bound.
        assert!(report.hists.queue_depth.max() <= 64);
        assert_eq!(report.writes, 48);
        assert_eq!(report.quarantined, vec![victim]);
    }

    #[test]
    fn daemon_panic_is_survivable() {
        let mut config = ServiceConfig::small(256, 4, 0.0, 9);
        config.scrub_every = Some(Duration::from_millis(1));
        let service = Service::start(config).unwrap();
        let handle = service.handle();
        service.inject_daemon_panic();
        // The registry flags the dead daemon live (panic unwinding takes a
        // few ms, so poll rather than sleep a fixed interval).
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.registry().daemon_dead.get() == 0 {
            assert!(Instant::now() < deadline, "daemon_dead never flagged");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Demand traffic is unaffected by the daemon's death.
        handle.write(3, &data_with(&[3])).unwrap();
        assert_eq!(handle.read(3).unwrap(), data_with(&[3]));
        let report = service.shutdown();
        assert!(report.daemon_panicked);
        assert!(report.worker_panics.is_empty());
        assert_eq!(report.writes, 1);
    }
}
