//! The reliability audit plane: measures the assumptions the DUE/SDC math
//! rests on, instead of asserting them.
//!
//! The paper's reliability claim (§VII-B) is conditional: *if* every line
//! is scrubbed within the 20 ms interval and *if* the raw flip rate stays
//! at the budgeted BER, then the projected DUE/SDC rates hold. Until this
//! module, the service asserted both conditions; now it audits them live:
//!
//! * [`ScrubDeadlineTracker`] — per-shard **achieved scrub interval**
//!   histograms at line-range-packet granularity (a packet is a fixed
//!   span of a shard's owned lines, so the histogram measures what the
//!   BER math actually depends on — when each *line* was last swept, not
//!   when the daemon last ticked), a hard-floor violation counter for the
//!   deadline, and worst-packet staleness gauges.
//! * [`ReliabilityEstimator`] — sliding-window observed raw-flip rate fed
//!   through the paper's analytic BER→FIT model
//!   ([`sudoku_reliability::analytic`]) to produce a live projected DUE
//!   FIT and an **error-budget burn rate** (projected FIT over the
//!   configured envelope), on a fast and a slow window so a transient
//!   spike does not page but a sustained burn does.
//! * [`AuditPlane`] — the always-on bundle the daemon, watchdog, exporter
//!   and snapshot all share: tracker + [`AlertLog`] + live estimate
//!   gauges + the `/healthz` degradation-reason list.
//!
//! The watchdog thread (see [`crate::watchdog`]) turns these measurements
//! into [`Alert`]s.
//!
//! [`Alert`]: sudoku_obs::Alert

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use sudoku_core::ShardPlan;
use sudoku_obs::json::JsonObject;
use sudoku_obs::{AlertClass, AlertLog, AtomicHist, Counter, Gauge, Histogram};
use sudoku_reliability::analytic::{total_fit, Params};

/// Configuration of the audit plane. Constructed with
/// [`AuditConfig::default`] and overridden field-wise; every threshold has
/// a paper-anchored or SRE-conventional default.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// The hard scrub-interval guarantee the BER math assumes: every
    /// line-range packet must be re-scrubbed within this much wall time.
    /// The paper's operating point is 20 ms (§VI).
    pub scrub_deadline: Duration,
    /// Lines per deadline-tracking packet (the granularity of the
    /// achieved-interval histograms and of the daemon's bounded sweep).
    pub packet_lines: u64,
    /// Tick-start lag above this raises a [`TickLagBreach`] alert — the
    /// daemon is being starved and the deadline is next.
    ///
    /// [`TickLagBreach`]: sudoku_obs::AlertClass::TickLagBreach
    pub tick_lag_budget: Duration,
    /// A shard whose queue sits at its bound for this many *consecutive*
    /// watchdog scans raises [`QueueSaturation`] (one saturated instant is
    /// backpressure working; a streak is a stall).
    ///
    /// [`QueueSaturation`]: sudoku_obs::AlertClass::QueueSaturation
    pub queue_saturation_scans: u32,
    /// The daemon counts as stuck when its tick counter has not advanced
    /// for this many scrub periods while the thread is still alive.
    pub daemon_stall_ticks: u32,
    /// The DUE error budget: projected DUE FIT above this envelope counts
    /// as burning. The paper's SuDoku-Z point is ~5.4e-3 FIT at the
    /// default BER; 1.0 FIT (about one uncorrectable error per 114,000
    /// device-years) is a conservative production envelope.
    pub due_fit_budget: f64,
    /// Fast burn window (catches sharp regressions).
    pub fast_window: Duration,
    /// Slow burn window (confirms the burn is sustained, not a blip).
    pub slow_window: Duration,
    /// Burn-rate threshold: both windows above this raises
    /// [`BudgetBurn`].
    ///
    /// [`BudgetBurn`]: sudoku_obs::AlertClass::BudgetBurn
    pub burn_threshold: f64,
    /// Watchdog scan period.
    pub scan_every: Duration,
    /// In-memory alert ring capacity.
    pub alert_capacity: usize,
    /// Optional JSONL alert stream (one flushed line per alert).
    pub alerts_jsonl: Option<PathBuf>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            scrub_deadline: Duration::from_millis(20),
            packet_lines: 128,
            tick_lag_budget: Duration::from_millis(2),
            queue_saturation_scans: 3,
            daemon_stall_ticks: 8,
            due_fit_budget: 1.0,
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(10),
            burn_threshold: 1.0,
            scan_every: Duration::from_millis(5),
            alert_capacity: 256,
            alerts_jsonl: None,
        }
    }
}

/// A gauge holding an `f64` (stored as IEEE-754 bits in an `AtomicU64`),
/// for the live reliability estimates the hot path never touches.
#[derive(Debug, Default)]
pub struct F64Gauge(AtomicU64);

impl F64Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        F64Gauge(AtomicU64::new(0))
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One shard's deadline-tracking state.
#[derive(Debug)]
struct ShardTrack {
    /// Per-packet last-scrub timestamp, ns since the tracker epoch
    /// (0 = never scrubbed; the first sweep measures from the epoch, so a
    /// packet the daemon never reaches shows up as unbounded staleness,
    /// not as a silent gap).
    last_scrub_ns: Vec<AtomicU64>,
    /// Achieved packet scrub intervals, ns.
    achieved_ns: AtomicHist,
    /// Packets whose achieved interval exceeded the deadline.
    misses: Counter,
    /// The most recent missed interval, ns (alert context).
    last_miss_ns: Gauge,
}

/// Measures the **achieved** scrub interval per line-range packet — the
/// quantity the paper's BER math actually assumes a bound on.
///
/// The daemon calls [`ScrubDeadlineTracker::note_packet`] after sweeping a
/// packet; the tracker records the elapsed time since that same packet was
/// last swept into a per-shard [`AtomicHist`] and counts deadline misses.
/// Everything is lock-free: one `swap` + one histogram record per packet.
#[derive(Debug)]
pub struct ScrubDeadlineTracker {
    epoch: Instant,
    deadline_ns: u64,
    packet_lines: u64,
    shards: Vec<ShardTrack>,
}

impl ScrubDeadlineTracker {
    /// A tracker for `plan`'s shard layout with `packet_lines`-line
    /// packets and the given deadline. The epoch (the staleness zero
    /// point) is the moment of construction — service start.
    pub fn new(plan: &ShardPlan, packet_lines: u64, deadline: Duration) -> Self {
        let packet_lines = packet_lines.max(1);
        let shards = (0..plan.n_shards())
            .map(|s| {
                let n_packets = plan.owned_line_count(s).div_ceil(packet_lines).max(1);
                ShardTrack {
                    last_scrub_ns: (0..n_packets).map(|_| AtomicU64::new(0)).collect(),
                    achieved_ns: AtomicHist::pow2(40),
                    misses: Counter::new(),
                    last_miss_ns: Gauge::new(),
                }
            })
            .collect();
        ScrubDeadlineTracker {
            epoch: Instant::now(),
            deadline_ns: deadline.as_nanos() as u64,
            packet_lines,
            shards,
        }
    }

    /// The deadline in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// Lines per packet.
    pub fn packet_lines(&self) -> u64 {
        self.packet_lines
    }

    /// Number of packets tracked for `shard`.
    pub fn n_packets(&self, shard: usize) -> usize {
        self.shards[shard].last_scrub_ns.len()
    }

    /// Nanoseconds since the tracker epoch (service start).
    #[inline]
    fn now_ns(&self) -> u64 {
        // 1ns floor so a stored timestamp can never collide with the
        // "never scrubbed" sentinel 0.
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }

    /// Records that `packet` of `shard` has just been fully swept.
    /// Returns the achieved interval in ns. The first sweep of a packet
    /// measures from the epoch — the deadline clock starts at service
    /// start, not at first contact.
    pub fn note_packet(&self, shard: usize, packet: usize) -> u64 {
        let track = &self.shards[shard];
        let now = self.now_ns();
        let prev = track.last_scrub_ns[packet].swap(now, Ordering::Relaxed);
        let interval = now - prev;
        track.achieved_ns.record(interval);
        if interval > self.deadline_ns {
            track.misses.inc();
            track.last_miss_ns.set(interval);
        }
        interval
    }

    /// Deadline misses recorded for `shard` so far.
    pub fn misses(&self, shard: usize) -> u64 {
        self.shards[shard].misses.get()
    }

    /// Deadline misses across all shards.
    pub fn total_misses(&self) -> u64 {
        self.shards.iter().map(|t| t.misses.get()).sum()
    }

    /// The most recent missed interval on `shard`, ns (0 = none yet).
    pub fn last_miss_ns(&self, shard: usize) -> u64 {
        self.shards[shard].last_miss_ns.get()
    }

    /// How stale `shard`'s worst packet is right now, ns: the age of the
    /// least recently swept packet (for a never-swept packet, the time
    /// since service start).
    pub fn worst_staleness_ns(&self, shard: usize) -> u64 {
        let now = self.now_ns();
        self.shards[shard]
            .last_scrub_ns
            .iter()
            .map(|t| now.saturating_sub(t.load(Ordering::Relaxed)))
            .max()
            .unwrap_or(0)
    }

    /// Snapshot of `shard`'s achieved-interval histogram.
    pub fn achieved_hist(&self, shard: usize) -> sudoku_obs::Histogram {
        self.shards[shard].achieved_ns.snapshot()
    }

    /// Snapshot of the achieved-interval histogram merged across shards.
    pub fn achieved_hist_all(&self) -> sudoku_obs::Histogram {
        let mut all = sudoku_obs::Histogram::pow2(40);
        for track in &self.shards {
            all.merge(&track.achieved_ns.snapshot());
        }
        all
    }

    /// Number of shards tracked.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

/// One flip-count sample in the estimator's sliding window.
#[derive(Clone, Copy, Debug)]
struct FlipSample {
    at: Instant,
    flips: u64,
}

/// Projects live DUE FIT from the *observed* raw-flip rate, through the
/// same analytic model the paper uses offline
/// ([`sudoku_reliability::analytic::total_fit`]).
///
/// Feed it cumulative observed-flip counts (see
/// [`ReliabilityEstimator::observed_flips`] for the accounting); it keeps
/// a sliding window of samples, converts the windowed flip rate to a
/// per-interval BER, and evaluates the model at that BER. The output is a
/// burn rate: projected FIT over the configured budget. Values above 1.0
/// mean the error budget is being consumed faster than provisioned.
#[derive(Debug)]
pub struct ReliabilityEstimator {
    params: Params,
    scheme: sudoku_core::Scheme,
    budget_fit: f64,
    total_bits: f64,
    interval_s: f64,
    fast: Duration,
    slow: Duration,
    samples: Vec<FlipSample>,
}

impl ReliabilityEstimator {
    /// An estimator for a cache of `config`'s geometry and scheme, with
    /// the audit deadline as the scrub interval of the model.
    pub fn new(config: &sudoku_core::SudokuConfig, audit: &AuditConfig) -> Self {
        let lines = config.geometry.lines();
        let interval_s = audit.scrub_deadline.as_secs_f64();
        let params = Params {
            lines,
            group: config.group_lines,
            scrub: sudoku_fault::ScrubSchedule::new(interval_s),
            ..Params::paper_default()
        };
        let total_bits = lines as f64 * f64::from(params.data_bits + params.meta_bits);
        ReliabilityEstimator {
            params,
            scheme: config.scheme,
            budget_fit: audit.due_fit_budget.max(f64::MIN_POSITIVE),
            total_bits,
            interval_s,
            fast: audit.fast_window,
            slow: audit.slow_window,
            samples: Vec::new(),
        }
    }

    /// The observed-flip accounting convention: every per-line single-bit
    /// repair (payload or metadata) is one raw flip; every CRC multibit
    /// detection is at least two. This undercounts ≥3-fault lines — the
    /// estimate is a *floor*, which is the right bias for an alert that
    /// fires on exceeding a budget.
    pub fn observed_flips(stats: &sudoku_core::CacheStats) -> u64 {
        stats.ecc1_repairs + stats.meta_repairs + 2 * stats.multibit_detections
    }

    /// Records a cumulative flip count at `now` and drops samples older
    /// than the slow window.
    pub fn push_sample(&mut self, now: Instant, flips: u64) {
        self.samples.push(FlipSample { at: now, flips });
        let horizon = self.slow;
        // Keep one sample beyond the horizon so the slow window always has
        // a left edge to difference against.
        while self.samples.len() > 2 && now.duration_since(self.samples[1].at) >= horizon {
            self.samples.remove(0);
        }
    }

    /// Observed BER per scrub interval over the trailing `window`, or
    /// `None` before two samples span any time.
    pub fn observed_ber(&self, window: Duration) -> Option<f64> {
        let newest = self.samples.last()?;
        // The oldest sample still inside (or at the edge of) the window.
        let left = self
            .samples
            .iter()
            .find(|s| newest.at.duration_since(s.at) <= window)?;
        let dt = newest.at.duration_since(left.at).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        let flips = newest.flips.saturating_sub(left.flips) as f64;
        // flips per interval per bit = observed per-interval BER.
        let intervals = dt / self.interval_s;
        Some(flips / (self.total_bits * intervals))
    }

    /// Projected DUE FIT at the BER observed over `window`. The model
    /// input is clamped to 0.1 per bit per interval: anything above that
    /// is not a BER estimate, it is an outage, and the clamped projection
    /// is already astronomically over any sane budget.
    pub fn projected_fit(&self, window: Duration) -> Option<f64> {
        let ber = self.observed_ber(window)?;
        if ber <= 0.0 {
            return Some(0.0);
        }
        let params = self.params.with_ber(ber.min(0.1));
        Some(total_fit(&params, self.scheme))
    }

    /// Burn rates over the (fast, slow) windows: projected FIT over the
    /// budget. `None` entries mean the window has no data yet.
    pub fn burn_rates(&self) -> (Option<f64>, Option<f64>) {
        (
            self.projected_fit(self.fast).map(|f| f / self.budget_fit),
            self.projected_fit(self.slow).map(|f| f / self.budget_fit),
        )
    }

    /// The model parameters in use (for exposition/tests).
    pub fn params(&self) -> &Params {
        &self.params
    }
}

/// The always-on audit bundle shared by the scrub daemon (packet sweep
/// accounting), the watchdog (alert generation + live estimates), the
/// exporter (`/metrics`, `/alerts.json`, `/healthz` reasons) and the
/// snapshot path.
#[derive(Debug)]
pub struct AuditPlane {
    /// The audit configuration the plane was built with.
    pub config: AuditConfig,
    /// Per-packet scrub-deadline accounting.
    pub tracker: ScrubDeadlineTracker,
    /// The structured alert stream.
    pub alerts: AlertLog,
    /// Live observed per-interval BER (slow window).
    pub observed_ber: F64Gauge,
    /// Live projected DUE FIT (slow window).
    pub projected_fit: F64Gauge,
    /// Fast-window error-budget burn rate.
    pub burn_fast: F64Gauge,
    /// Slow-window error-budget burn rate.
    pub burn_slow: F64Gauge,
    /// Active degradation reasons, rendered into the `/healthz` body (the
    /// 200/503 status itself stays a pure function of quarantine +
    /// daemon death — probes must not flap on soft conditions).
    degraded_reasons: Mutex<Vec<String>>,
}

impl AuditPlane {
    /// Builds the plane for `plan`'s shard layout.
    ///
    /// # Errors
    ///
    /// The I/O error from creating the alerts JSONL file, when one is
    /// configured.
    pub fn new(plan: &ShardPlan, config: AuditConfig) -> std::io::Result<Self> {
        let tracker = ScrubDeadlineTracker::new(plan, config.packet_lines, config.scrub_deadline);
        let alerts = match &config.alerts_jsonl {
            Some(path) => AlertLog::with_jsonl(config.alert_capacity, path)?,
            None => AlertLog::ring(config.alert_capacity),
        };
        Ok(AuditPlane {
            config,
            tracker,
            alerts,
            observed_ber: F64Gauge::new(),
            projected_fit: F64Gauge::new(),
            burn_fast: F64Gauge::new(),
            burn_slow: F64Gauge::new(),
            degraded_reasons: Mutex::new(Vec::new()),
        })
    }

    /// Replaces the active degradation-reason list (watchdog only).
    pub fn set_degraded_reasons(&self, reasons: Vec<String>) {
        if let Ok(mut current) = self.degraded_reasons.lock() {
            *current = reasons;
        }
    }

    /// The active degradation reasons, for the `/healthz` body.
    pub fn degraded_reasons(&self) -> Vec<String> {
        self.degraded_reasons
            .lock()
            .map(|r| r.clone())
            .unwrap_or_default()
    }

    /// One coherent picture of the audit plane for `/metrics`,
    /// `/snapshot.json`, and the end-of-run bench reports.
    pub fn snapshot(&self) -> AuditSnapshot {
        let n_shards = self.tracker.n_shards();
        AuditSnapshot {
            scrub_deadline_ns: self.tracker.deadline_ns(),
            packet_lines: self.tracker.packet_lines(),
            scrub_deadline_misses: self.tracker.total_misses(),
            per_shard_misses: (0..n_shards).map(|s| self.tracker.misses(s)).collect(),
            per_shard_worst_staleness_ns: (0..n_shards)
                .map(|s| self.tracker.worst_staleness_ns(s))
                .collect(),
            achieved_scrub_interval_ns: self.tracker.achieved_hist_all(),
            observed_ber: self.observed_ber.get(),
            projected_fit: self.projected_fit.get(),
            burn_fast: self.burn_fast.get(),
            burn_slow: self.burn_slow.get(),
            alerts_total: self.alerts.total(),
            alerts_critical: self.alerts.criticals(),
            alerts_dropped: self.alerts.dropped(),
            alerts_by_class: AlertClass::ALL
                .iter()
                .map(|&(class, name)| (name, self.alerts.count(class)))
                .collect(),
            degraded_reasons: self.degraded_reasons(),
        }
    }
}

/// A point-in-time copy of everything the audit plane measures — the
/// audit section of [`TelemetrySnapshot`] and of the bench reports.
///
/// [`TelemetrySnapshot`]: crate::telemetry::TelemetrySnapshot
#[derive(Clone, Debug)]
pub struct AuditSnapshot {
    /// The configured hard scrub deadline, ns.
    pub scrub_deadline_ns: u64,
    /// Lines per deadline-tracking packet.
    pub packet_lines: u64,
    /// Completed packet sweeps whose achieved interval exceeded the
    /// deadline, all shards.
    pub scrub_deadline_misses: u64,
    /// Same, per shard.
    pub per_shard_misses: Vec<u64>,
    /// Worst live packet staleness per shard, ns (how long the most
    /// neglected packet has gone unswept as of this snapshot).
    pub per_shard_worst_staleness_ns: Vec<u64>,
    /// Achieved scrub interval across all shards' packets.
    pub achieved_scrub_interval_ns: Histogram,
    /// Observed per-interval raw BER (slow window; 0 until first estimate).
    pub observed_ber: f64,
    /// Projected DUE FIT at the observed BER (slow window).
    pub projected_fit: f64,
    /// Fast-window error-budget burn rate.
    pub burn_fast: f64,
    /// Slow-window error-budget burn rate.
    pub burn_slow: f64,
    /// Alerts ever raised.
    pub alerts_total: u64,
    /// Critical alerts ever raised.
    pub alerts_critical: u64,
    /// Alerts evicted from the ring before being scraped.
    pub alerts_dropped: u64,
    /// Per-class alert counts, in [`AlertClass::ALL`] order.
    pub alerts_by_class: Vec<(&'static str, u64)>,
    /// Active degradation reasons at snapshot time.
    pub degraded_reasons: Vec<String>,
}

impl AuditSnapshot {
    /// One JSON object (the `"audit"` section of `/snapshot.json` and of
    /// the bench reports).
    pub fn to_json(&self) -> String {
        let by_class: Vec<String> = self
            .alerts_by_class
            .iter()
            .map(|(name, n)| format!("\"{name}\":{n}"))
            .collect();
        let reasons: Vec<String> = self
            .degraded_reasons
            .iter()
            .map(|r| format!("{:?}", r))
            .collect();
        let mut obj = JsonObject::new();
        obj.field_u64("scrub_deadline_ns", self.scrub_deadline_ns)
            .field_u64("packet_lines", self.packet_lines)
            .field_u64("scrub_deadline_misses", self.scrub_deadline_misses)
            .field_array_u64("per_shard_misses", self.per_shard_misses.iter().copied())
            .field_array_u64(
                "per_shard_worst_staleness_ns",
                self.per_shard_worst_staleness_ns.iter().copied(),
            )
            .field_raw(
                "achieved_scrub_interval_ns",
                &self.achieved_scrub_interval_ns.to_json(),
            )
            .field_f64("observed_ber", self.observed_ber)
            .field_f64("projected_fit", self.projected_fit)
            .field_f64("burn_fast", self.burn_fast)
            .field_f64("burn_slow", self.burn_slow)
            .field_u64("alerts_total", self.alerts_total)
            .field_u64("alerts_critical", self.alerts_critical)
            .field_u64("alerts_dropped", self.alerts_dropped)
            .field_raw("alerts_by_class", &format!("{{{}}}", by_class.join(",")))
            .field_raw("degraded_reasons", &format!("[{}]", reasons.join(",")));
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_core::{Scheme, SudokuConfig};

    fn plan4() -> ShardPlan {
        let config = SudokuConfig::small(Scheme::Z, 1024, 16);
        ShardPlan::new(&config, 4).unwrap()
    }

    #[test]
    fn tracker_records_intervals_and_misses() {
        let tracker = ScrubDeadlineTracker::new(&plan4(), 64, Duration::from_millis(20));
        assert_eq!(tracker.n_shards(), 4);
        // 1024 lines / 4 shards = 256 owned lines; 64-line packets → 4.
        assert_eq!(tracker.n_packets(0), 4);
        let first = tracker.note_packet(0, 0);
        assert!(first >= 1);
        let second = tracker.note_packet(0, 0);
        assert!(second < Duration::from_millis(20).as_nanos() as u64);
        assert_eq!(tracker.misses(0), 0, "sub-ms resweep is not a miss");
        assert_eq!(tracker.achieved_hist(0).count(), 2);
        assert_eq!(tracker.achieved_hist_all().count(), 2);
        // Packets never swept dominate worst staleness.
        assert!(tracker.worst_staleness_ns(0) >= second);
    }

    #[test]
    fn tracker_flags_deadline_miss() {
        let tracker = ScrubDeadlineTracker::new(&plan4(), 64, Duration::from_nanos(1));
        // First sweep measures from the epoch — already over a 1 ns
        // deadline, by design (a packet the daemon is late to *first*
        // reach is late, full stop).
        tracker.note_packet(1, 0);
        assert_eq!(tracker.misses(1), 1);
        std::thread::sleep(Duration::from_millis(1));
        let interval = tracker.note_packet(1, 0);
        assert!(interval > 1);
        assert_eq!(tracker.misses(1), 2);
        assert_eq!(tracker.total_misses(), 2);
        assert_eq!(tracker.last_miss_ns(1), interval);
    }

    #[test]
    fn estimator_burns_budget_at_elevated_ber() {
        let config = SudokuConfig::small(Scheme::Z, 65536, 512);
        let audit = AuditConfig {
            due_fit_budget: 1.0,
            ..AuditConfig::default()
        };
        let mut est = ReliabilityEstimator::new(&config, &audit);
        let t0 = Instant::now();
        est.push_sample(t0, 0);
        // One slow window later, a flip count implying a catastophic BER
        // (~1e-3/interval: far beyond the paper's 5.3e-6 design point).
        let bits = 65536.0 * 553.0;
        let intervals = audit.slow_window.as_secs_f64() / 20e-3;
        let flips = (1e-3 * bits * intervals) as u64;
        est.push_sample(t0 + audit.slow_window, flips);
        let ber = est.observed_ber(audit.slow_window).unwrap();
        assert!((5e-4..2e-3).contains(&ber), "observed {ber}");
        let (fast, slow) = est.burn_rates();
        let slow = slow.unwrap();
        assert!(slow > 1.0, "burn {slow} must exceed budget at BER {ber}");
        // The fast window only has the latest sample pair, which spans the
        // whole slow window — still a valid (identical) estimate or None.
        if let Some(fast) = fast {
            assert!(fast > 0.0);
        }
    }

    #[test]
    fn estimator_quiet_system_burns_nothing() {
        let config = SudokuConfig::small(Scheme::Z, 4096, 16);
        let audit = AuditConfig::default();
        let mut est = ReliabilityEstimator::new(&config, &audit);
        let t0 = Instant::now();
        est.push_sample(t0, 10);
        est.push_sample(t0 + Duration::from_secs(1), 10);
        assert_eq!(est.projected_fit(Duration::from_secs(2)), Some(0.0));
        let (_, slow) = est.burn_rates();
        // Slow window spans one second of data: observed BER 0.
        assert_eq!(slow, Some(0.0));
    }

    #[test]
    fn observed_flip_accounting() {
        let stats = sudoku_core::CacheStats {
            ecc1_repairs: 3,
            meta_repairs: 2,
            multibit_detections: 4,
            ..Default::default()
        };
        assert_eq!(ReliabilityEstimator::observed_flips(&stats), 13);
    }

    #[test]
    fn plane_reasons_roundtrip() {
        let plane = AuditPlane::new(&plan4(), AuditConfig::default()).unwrap();
        assert!(plane.degraded_reasons().is_empty());
        plane.set_degraded_reasons(vec!["tick_lag_breach shard=1".into()]);
        assert_eq!(plane.degraded_reasons().len(), 1);
        plane.burn_fast.set(2.5);
        assert_eq!(plane.burn_fast.get(), 2.5);
    }
}
