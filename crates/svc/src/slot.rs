//! Preallocated **completion slots**: the reply half of the batched demand
//! path. Instead of allocating a fresh `mpsc` channel per request, a
//! client parks one reusable slot per thread; the worker writes the result
//! and flips a single atomic flag, and the client spins briefly before
//! falling back to a condvar park.
//!
//! Lifecycle: `reset` → enqueue a [`SlotSender`] with the request → the
//! worker either [`SlotSender::complete`]s it with a result or drops it
//! (abandonment — only on teardown paths), and [`CompletionSlot::wait`]
//! returns `Some(result)` or `None` respectively. A slot is strictly
//! single-producer single-consumer per flight; reuse across flights is the
//! whole point.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};

const EMPTY: u32 = 0;
const FULL: u32 = 1;
const ABANDONED: u32 = 2;

/// Spin iterations on the state flag before parking on the condvar.
const SPIN: u32 = 200;

/// One reusable request-completion cell.
#[derive(Debug)]
pub(crate) struct CompletionSlot<T> {
    state: AtomicU32,
    value: Mutex<Option<T>>,
    wake: Condvar,
}

impl<T> CompletionSlot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(CompletionSlot {
            state: AtomicU32::new(EMPTY),
            value: Mutex::new(None),
            wake: Condvar::new(),
        })
    }

    /// Arms the slot for a new flight and hands out the producer side.
    pub(crate) fn arm(self: &Arc<Self>) -> SlotSender<T> {
        self.state.store(EMPTY, Ordering::Relaxed);
        *self.value.lock().unwrap_or_else(|e| e.into_inner()) = None;
        SlotSender {
            slot: Arc::clone(self),
            done: false,
        }
    }

    fn fill(&self, state: u32, value: Option<T>) {
        let mut guard = self.value.lock().unwrap_or_else(|e| e.into_inner());
        *guard = value;
        // Release-publish the flag while holding the lock so a parked
        // waiter cannot miss the notify between its check and its wait.
        self.state.store(state, Ordering::Release);
        self.wake.notify_one();
    }

    /// Blocks until the producer completes or abandons the flight:
    /// `Some(result)` on completion, `None` on abandonment. Spins briefly
    /// (the worker usually answers in microseconds) before parking.
    pub(crate) fn wait(&self) -> Option<T> {
        for _ in 0..SPIN {
            if self.state.load(Ordering::Acquire) != EMPTY {
                return self.take();
            }
            std::hint::spin_loop();
        }
        let mut guard = self.value.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.state.load(Ordering::Acquire) != EMPTY {
                return guard.take();
            }
            let (g, _) = self
                .wake
                .wait_timeout(guard, std::time::Duration::from_micros(100))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    fn take(&self) -> Option<T> {
        self.value.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// The producer side of one slot flight. Dropping it without calling
/// [`SlotSender::complete`] abandons the flight (the waiter gets `None`).
#[derive(Debug)]
pub(crate) struct SlotSender<T> {
    slot: Arc<CompletionSlot<T>>,
    done: bool,
}

impl<T> SlotSender<T> {
    /// Delivers the result and wakes the waiter.
    pub(crate) fn complete(mut self, value: T) {
        self.done = true;
        self.slot.fill(FULL, Some(value));
    }
}

impl<T> Drop for SlotSender<T> {
    fn drop(&mut self) {
        if !self.done {
            self.slot.fill(ABANDONED, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_wait_roundtrips() {
        let slot: Arc<CompletionSlot<u64>> = CompletionSlot::new();
        let tx = slot.arm();
        tx.complete(42);
        assert_eq!(slot.wait(), Some(42));
    }

    #[test]
    fn abandoned_flight_yields_none() {
        let slot: Arc<CompletionSlot<u64>> = CompletionSlot::new();
        let tx = slot.arm();
        drop(tx);
        assert_eq!(slot.wait(), None);
    }

    #[test]
    fn slot_is_reusable_across_flights() {
        let slot: Arc<CompletionSlot<u64>> = CompletionSlot::new();
        for i in 0..100 {
            let tx = slot.arm();
            tx.complete(i);
            assert_eq!(slot.wait(), Some(i));
        }
        // Abandon, then complete again: the reset clears the tombstone.
        drop(slot.arm());
        assert_eq!(slot.wait(), None);
        let tx = slot.arm();
        tx.complete(7);
        assert_eq!(slot.wait(), Some(7));
    }

    #[test]
    fn cross_thread_completion_after_park() {
        let slot: Arc<CompletionSlot<u64>> = CompletionSlot::new();
        let tx = slot.arm();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Outlast the waiter's spin phase so it parks.
                std::thread::sleep(std::time::Duration::from_millis(5));
                tx.complete(99);
            });
            assert_eq!(slot.wait(), Some(99));
        });
    }
}
