//! The sharded storage engine: `N` per-shard [`SudokuCache`]s plus a
//! cross-shard Hash-2 coordinator.
//!
//! Sharding follows [`ShardPlan`]: Hash-1 RAID-Groups round-robin over
//! shards, so every Hash-1 repair (ECC-1, CRC detect, RAID-4, SDR) touches
//! exactly one shard, while every Hash-2 group spans several shards — the
//! SuDoku-Z dimension is inherently a cross-shard protocol. Each shard is
//! a full-geometry sparse [`SudokuCache`] with
//! [`SudokuConfig::with_deferred_hash2`] set: the shard still maintains
//! its slice of the Hash-2 PLT on writes (parity is linear, so the global
//! Hash-2 parity of a group is the XOR of the per-shard slices), but its
//! *own* recovery ladder stops after Hash-1. Whatever a shard cannot
//! resolve locally escalates to the coordinator, which gathers the Hash-2
//! group's members from their owning shards and drives the exact same
//! [`RepairEngine`] the single-threaded cache uses.
//!
//! The deterministic whole-cache scrub ([`ShardedCache::scrub_lines`])
//! replicates the reference fixpoint schedule — alternating a parallel
//! shard-local Hash-1 pass with a coordinator-sequential Hash-2 pass until
//! no progress — so recovery outcomes, [`ScrubReport`]s, and `CacheStats`
//! totals are invariant in the shard count (property-tested for
//! N ∈ {1, 2, 4, 8}).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard};
use sudoku_codes::{LineCodec, LineData, ProtectedLine};
use sudoku_core::{
    CacheStats, ConfigError, GroupScratch, GroupView, HashDim, LineStore, MemberState, Recorder,
    RepairEngine, RepairParams, ScrubReport, ShardPlan, SparseStore, SudokuCache, SudokuConfig,
    UncorrectableError,
};
use sudoku_fault::FaultInjector;

/// Cross-shard recovery state owned by the coordinator: its own counter
/// pool, recorder, and scratch buffers, so Hash-2 accounting is attributed
/// to the coordinator rather than to any one shard.
struct Coordinator {
    stats: CacheStats,
    recorder: Recorder,
    scratch: GroupScratch,
}

/// Per-call recovery state of one shard during a scrub or escalation.
#[derive(Default)]
struct ScrubState {
    hints: Vec<u64>,
    faulty: BTreeSet<u64>,
    recovered: BTreeMap<u64, ProtectedLine>,
    report: ScrubReport,
}

/// One shard's cache plus its in-flight recovery state, borrowed out of
/// the shard mutexes for the duration of a scrub.
struct Working<'a> {
    cache: &'a mut SudokuCache<SparseStore>,
    st: ScrubState,
}

/// A Hash-2 group's members gathered from their owning shards — the
/// [`GroupView`] the coordinator drives the shared repair engine over.
/// Parity is the XOR of the per-shard Hash-2 PLT slices (linearity);
/// reconstructions commit into the owning shard's store and recovered map.
struct GatherView<'a, 'b> {
    plan: &'a ShardPlan,
    work: &'a mut [Working<'b>],
    members: &'a [u64],
    parity: ProtectedLine,
}

impl GroupView for GatherView<'_, '_> {
    fn len(&self) -> usize {
        self.members.len()
    }

    fn line_id(&self, i: usize) -> u64 {
        self.members[i]
    }

    fn state(&self, i: usize) -> MemberState {
        let m = self.members[i];
        let w = &self.work[self.plan.shard_of_line(m)];
        if let Some(&r) = w.st.recovered.get(&m) {
            MemberState::Recovered(r)
        } else if !w.cache.store().is_materialized(m) {
            MemberState::Zero
        } else {
            MemberState::Stored(w.cache.stored_line(m))
        }
    }

    fn commit_repair(&mut self, i: usize, line: ProtectedLine) {
        let m = self.members[i];
        let w = &mut self.work[self.plan.shard_of_line(m)];
        w.cache.set_stored_line(m, line);
    }

    fn commit_reconstruction(&mut self, i: usize, line: ProtectedLine) {
        let m = self.members[i];
        let w = &mut self.work[self.plan.shard_of_line(m)];
        w.cache.set_stored_line(m, line);
        w.st.recovered.insert(m, line);
    }

    fn parity(&self) -> ProtectedLine {
        self.parity
    }
}

/// Merges per-shard and coordinator [`ScrubReport`]s into the global view
/// a single-threaded scrub would have produced: counters sum, unresolved
/// lines concatenate and sort ascending.
pub fn merge_reports<'a>(reports: impl IntoIterator<Item = &'a ScrubReport>) -> ScrubReport {
    let mut out = ScrubReport::default();
    for r in reports {
        out.lines_checked += r.lines_checked;
        out.ecc1_repairs += r.ecc1_repairs;
        out.meta_repairs += r.meta_repairs;
        out.multibit_lines += r.multibit_lines;
        out.raid4_repairs += r.raid4_repairs;
        out.sdr_repairs += r.sdr_repairs;
        out.hash2_repairs += r.hash2_repairs;
        out.unresolved.extend_from_slice(&r.unresolved);
    }
    out.unresolved.sort_unstable();
    out
}

/// A SuDoku cache partitioned into `N` concurrent shards.
///
/// Thread-safe by construction: shards sit behind their own mutexes
/// (demand traffic on different shards never contends), and cross-shard
/// work acquires shard locks in ascending index order, then the
/// coordinator — a total order, so concurrent escalations cannot deadlock.
///
/// # Examples
///
/// ```
/// use sudoku_core::{Scheme, SudokuConfig};
/// use sudoku_svc::ShardedCache;
///
/// let config = SudokuConfig::small(Scheme::Z, 256, 16);
/// let cache = ShardedCache::new(config, 4)?;
/// // Fully overlapping double faults defeat Hash-1 SDR; the cross-shard
/// // Hash-2 coordinator resolves them.
/// for line in [4u64, 5] {
///     cache.inject_fault(line, 100);
///     cache.inject_fault(line, 200);
/// }
/// let report = cache.scrub_lines(&[4, 5]);
/// assert!(report.fully_repaired());
/// assert!(report.hash2_repairs >= 1);
/// # Ok::<(), sudoku_core::ConfigError>(())
/// ```
pub struct ShardedCache {
    plan: ShardPlan,
    config: SudokuConfig,
    shards: Vec<Mutex<SudokuCache<SparseStore>>>,
    coord: Mutex<Coordinator>,
}

impl ShardedCache {
    /// Builds an `n_shards`-way sharded cache over `config`'s geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from validation, including
    /// [`ConfigError::BadShardCount`] when the Hash-1 groups cannot be
    /// divided among `n_shards`.
    pub fn new(config: SudokuConfig, n_shards: usize) -> Result<Self, ConfigError> {
        let plan = ShardPlan::new(&config, n_shards)?;
        let shard_config = config.with_deferred_hash2();
        let shards = (0..n_shards)
            .map(|_| SudokuCache::new_sparse(shard_config).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedCache {
            plan,
            config,
            shards,
            coord: Mutex::new(Coordinator {
                stats: CacheStats::default(),
                recorder: Recorder::ring(4096),
                scratch: GroupScratch::default(),
            }),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.plan.n_shards()
    }

    /// The shard partitioning in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The (non-deferred) cache configuration the shards were built from.
    pub fn config(&self) -> &SudokuConfig {
        &self.config
    }

    /// Writes `data` to `line` on its owning shard.
    pub fn write(&self, line: u64, data: &LineData) {
        self.shard(line).write(line, data);
    }

    /// Reads `line` from its owning shard, escalating to cross-shard
    /// Hash-2 recovery when the shard-local (Hash-1-only) ladder fails.
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] when even cross-shard recovery fails — a DUE.
    pub fn read(&self, line: u64) -> Result<LineData, UncorrectableError> {
        match self.read_local(line) {
            Ok(data) => Ok(data),
            Err(_) => {
                // The owner gave up after Hash-1; gather the Hash-2 groups.
                self.escalate(&[line]);
                self.read_local(line)
            }
        }
    }

    /// Reads `line` using only the owning shard's (Hash-1) ladder, without
    /// cross-shard escalation. The service worker uses this to count
    /// escalations explicitly; most callers want [`ShardedCache::read`].
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] when the shard-local ladder fails.
    pub fn read_local(&self, line: u64) -> Result<LineData, UncorrectableError> {
        self.shard(line).read(line)
    }

    /// Flips one stored bit of `line` — a transient fault.
    pub fn inject_fault(&self, line: u64, bit: usize) {
        self.shard(line).inject_fault(line, bit);
    }

    /// Applies a resolved fault plan (line, fault positions) as produced by
    /// [`FaultInjector::resolved_plan`], routing each line to its shard.
    pub fn apply_resolved_plan(&self, plan: &[(u64, Vec<usize>)]) {
        for (line, positions) in plan {
            let mut shard = self.shard(*line);
            for &pos in positions {
                shard.inject_fault(*line, pos);
            }
        }
    }

    /// Injects one scrub interval's worth of transient faults into the
    /// lines owned by `shard`, using the caller's (typically per-shard
    /// forked) injector. Returns the faulted lines — the scan hints for the
    /// following scrub tick.
    pub fn inject_shard(&self, shard: usize, injector: &mut FaultInjector) -> Vec<u64> {
        let plan = injector.resolved_plan(self.plan.owned_line_count(shard));
        let mut cache = self.shards[shard].lock().unwrap();
        let mut lines = Vec::with_capacity(plan.len());
        for (idx, positions) in plan {
            let line = self.plan.owned_line_at(shard, idx);
            for pos in positions {
                cache.inject_fault(line, pos);
            }
            lines.push(line);
        }
        lines
    }

    /// The stored (possibly faulty) line at `line`.
    pub fn stored_line(&self, line: u64) -> ProtectedLine {
        self.shard(line).stored_line(line)
    }

    /// Aggregate counters: the sum over all shards plus the coordinator —
    /// the pool a single-threaded cache would have accumulated alone.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(shard.lock().unwrap().stats());
        }
        total.merge(&self.coord.lock().unwrap().stats);
        total
    }

    /// Per-shard counters (index = shard id), excluding the coordinator.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| *s.lock().unwrap().stats())
            .collect()
    }

    /// The coordinator's own counters (cross-shard Hash-2 work).
    pub fn coordinator_stats(&self) -> CacheStats {
        self.coord.lock().unwrap().stats
    }

    /// Harvests every shard's telemetry recorder (and the coordinator's)
    /// into `master`, leaving fresh ring recorders behind.
    pub fn harvest_recorders(&self, master: &mut Recorder) {
        for shard in &self.shards {
            let old = shard.lock().unwrap().set_recorder(Recorder::ring(4096));
            master.absorb(old);
        }
        let mut coord = self.coord.lock().unwrap();
        let old = std::mem::replace(&mut coord.recorder, Recorder::ring(4096));
        master.absorb(old);
    }

    /// Deterministic whole-service scrub of the listed lines (plus
    /// whatever group recovery pulls in), replicating the single-threaded
    /// [`SudokuCache::scrub_lines`] schedule exactly: scan, then alternate
    /// a parallel shard-local Hash-1 pass with a coordinator-sequential
    /// cross-shard Hash-2 pass until a fixpoint. Holds every shard lock
    /// for the duration — the stop-the-world reference path.
    pub fn scrub_lines(&self, hints: &[u64]) -> ScrubReport {
        let mut guards = self.lock_all();
        let mut work = Self::borrow_working(&mut guards);
        for &line in hints {
            work[self.plan.shard_of_line(line)].st.hints.push(line);
        }
        // Scan phase: per-line checks are line-local, so shards scan their
        // own hinted lines concurrently.
        std::thread::scope(|s| {
            for w in work.iter_mut() {
                s.spawn(move || {
                    w.st.faulty = w
                        .cache
                        .scrub_scan(w.st.hints.drain(..), true, &mut w.st.report);
                });
            }
        });
        let coord_report = self.fixpoint(&mut work, true);
        for w in work.iter_mut() {
            w.st.report.unresolved = w.st.faulty.iter().copied().collect();
            let mut report = std::mem::take(&mut w.st.report);
            w.cache.finish_scrub(&mut report);
            w.st.report = report;
        }
        merge_reports(work.iter().map(|w| &w.st.report).chain([&coord_report]))
    }

    /// Scrubs every line of the cache. Equivalent to
    /// [`ShardedCache::scrub_lines`] over `0..n_lines`.
    pub fn scrub(&self) -> ScrubReport {
        let all: Vec<u64> = (0..self.config.geometry.lines()).collect();
        self.scrub_lines(&all)
    }

    /// Shard-local scrub tick: scans the hinted lines owned by `shard` and
    /// runs the Hash-1-only recovery fixpoint inside that shard, without
    /// touching any other shard. Returns the tick's report and the lines
    /// the shard could **not** resolve locally — the caller escalates
    /// those via [`ShardedCache::escalate`]. No DUE accounting happens
    /// here; a line is only a DUE once escalation also fails.
    pub fn scrub_shard_local(&self, shard: usize, hints: &[u64]) -> (ScrubReport, Vec<u64>) {
        let mut cache = self.shards[shard].lock().unwrap();
        let mut report = ScrubReport::default();
        let owned = hints
            .iter()
            .copied()
            .filter(|&l| self.plan.shard_of_line(l) == shard);
        let mut faulty = cache.scrub_scan(owned, true, &mut report);
        let mut recovered = BTreeMap::new();
        loop {
            if faulty.is_empty() {
                break;
            }
            let before = faulty.len();
            cache.recovery_pass(HashDim::H1, &mut faulty, &mut recovered, &mut report, true);
            if faulty.len() >= before {
                break;
            }
        }
        let leftover: Vec<u64> = faulty.into_iter().collect();
        report.unresolved = leftover.clone();
        (report, leftover)
    }

    /// Cross-shard escalation: re-verifies the given lines and drives the
    /// full Hash-1 + Hash-2 fixpoint over all shards, with DUE accounting
    /// for whatever still cannot be repaired. This is the recovery of last
    /// resort behind failed demand reads and failed shard-local scrubs.
    pub fn escalate(&self, lines: &[u64]) -> ScrubReport {
        let mut guards = self.lock_all();
        let mut work = Self::borrow_working(&mut guards);
        for &line in lines {
            work[self.plan.shard_of_line(line)].st.faulty.insert(line);
        }
        // Seeds may have been healed (or cleanly overwritten) since the
        // caller saw them fail; keep only the still-multibit ones.
        let empty = BTreeMap::new();
        for w in work.iter_mut() {
            let mut faulty = std::mem::take(&mut w.st.faulty);
            w.cache.retain_multibit(&mut faulty, &empty);
            w.st.faulty = faulty;
        }
        let coord_report = self.fixpoint(&mut work, true);
        for w in work.iter_mut() {
            w.st.report.unresolved = w.st.faulty.iter().copied().collect();
            let mut report = std::mem::take(&mut w.st.report);
            w.cache.finish_scrub(&mut report);
            w.st.report = report;
        }
        merge_reports(work.iter().map(|w| &w.st.report).chain([&coord_report]))
    }

    fn shard(&self, line: u64) -> MutexGuard<'_, SudokuCache<SparseStore>> {
        self.shards[self.plan.shard_of_line(line)].lock().unwrap()
    }

    /// Acquires every shard lock in ascending index order (the global lock
    /// order, followed by the coordinator — see [`ShardedCache`]).
    fn lock_all(&self) -> Vec<MutexGuard<'_, SudokuCache<SparseStore>>> {
        self.shards.iter().map(|s| s.lock().unwrap()).collect()
    }

    fn borrow_working<'a, 'g>(
        guards: &'a mut [MutexGuard<'g, SudokuCache<SparseStore>>],
    ) -> Vec<Working<'a>> {
        guards
            .iter_mut()
            .map(|g| Working {
                cache: &mut *g,
                st: ScrubState::default(),
            })
            .collect()
    }

    /// The recovery fixpoint over pre-seeded per-shard faulty sets: each
    /// round runs the shard-local Hash-1 pass on every shard in parallel,
    /// then (for schemes with a second hash) the coordinator's sequential
    /// Hash-2 pass over gathered cross-shard groups, stopping when a round
    /// makes no progress — the exact schedule of the single-threaded
    /// ladder, which is what makes recovery shard-count-invariant.
    fn fixpoint(&self, work: &mut [Working<'_>], fast: bool) -> ScrubReport {
        let mut coord = self.coord.lock().unwrap();
        let mut coord_report = ScrubReport::default();
        let use_h2 = self.config.scheme.second_hash_enabled();
        loop {
            let before: usize = work.iter().map(|w| w.st.faulty.len()).sum();
            if before == 0 {
                break;
            }
            std::thread::scope(|s| {
                for w in work.iter_mut() {
                    s.spawn(move || {
                        let mut faulty = std::mem::take(&mut w.st.faulty);
                        w.cache.recovery_pass(
                            HashDim::H1,
                            &mut faulty,
                            &mut w.st.recovered,
                            &mut w.st.report,
                            fast,
                        );
                        w.st.faulty = faulty;
                    });
                }
            });
            if use_h2 && work.iter().any(|w| !w.st.faulty.is_empty()) {
                self.h2_pass(&mut coord, work, &mut coord_report, fast);
                for w in work.iter_mut() {
                    let mut faulty = std::mem::take(&mut w.st.faulty);
                    w.cache.retain_multibit(&mut faulty, &w.st.recovered);
                    w.st.faulty = faulty;
                }
            }
            let after: usize = work.iter().map(|w| w.st.faulty.len()).sum();
            if after >= before {
                break;
            }
        }
        coord_report
    }

    /// One coordinator Hash-2 pass: repair every implicated cross-shard
    /// group in ascending group order, gathering members and parity slices
    /// from the owning shards.
    fn h2_pass(
        &self,
        coord: &mut Coordinator,
        work: &mut [Working<'_>],
        report: &mut ScrubReport,
        fast: bool,
    ) {
        let hashes = self.plan.hashes();
        let groups: BTreeSet<u64> = work
            .iter()
            .flat_map(|w| w.st.faulty.iter())
            .map(|&l| hashes.group_of(HashDim::H2, l))
            .collect();
        for group in groups {
            let members: Vec<u64> = hashes.members(HashDim::H2, group).collect();
            let mut parity = ProtectedLine::zero();
            for w in work.iter() {
                parity.xor_assign(&w.cache.group_parity(HashDim::H2, group));
            }
            let mut view = GatherView {
                plan: &self.plan,
                work,
                members: &members,
                parity,
            };
            let mut engine = RepairEngine {
                codec: LineCodec::shared(),
                params: RepairParams::from_config(&self.config),
                stats: &mut coord.stats,
                recorder: &mut coord.recorder,
            };
            engine.repair_group(
                HashDim::H2,
                group,
                &mut view,
                &mut coord.scratch,
                report,
                fast,
            );
        }
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.n_shards())
            .field("scheme", &self.config.scheme)
            .field("lines", &self.config.geometry.lines())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_core::Scheme;

    fn data_with(bits: &[usize]) -> LineData {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn write_read_roundtrip_across_shards() {
        let cache = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 4).unwrap();
        for line in 0..256u64 {
            cache.write(line, &data_with(&[(line as usize * 7) % 512]));
        }
        for line in 0..256u64 {
            assert_eq!(
                cache.read(line).unwrap(),
                data_with(&[(line as usize * 7) % 512])
            );
        }
        assert_eq!(cache.stats().writes, 256);
        assert_eq!(cache.stats().reads, 256);
    }

    #[test]
    fn demand_read_escalates_across_shards() {
        // Fig. 3(c) pattern: two lines of one Hash-1 group with identical
        // fault positions — zero parity mismatch defeats shard-local SDR,
        // and with defer_hash2 the shard's own read ladder stops there.
        let cache = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap();
        let d4 = data_with(&[40, 41]);
        let d5 = data_with(&[50, 51]);
        cache.write(4, &d4);
        cache.write(5, &d5);
        for line in [4u64, 5] {
            cache.inject_fault(line, 100);
            cache.inject_fault(line, 200);
        }
        assert_eq!(cache.read(4).unwrap(), d4);
        assert_eq!(cache.read(5).unwrap(), d5);
        assert!(cache.coordinator_stats().raid4_repairs >= 1);
    }

    #[test]
    fn bad_shard_count_is_rejected() {
        let config = SudokuConfig::small(Scheme::Z, 256, 16);
        assert!(matches!(
            ShardedCache::new(config, 0),
            Err(ConfigError::BadShardCount { .. })
        ));
        assert!(matches!(
            ShardedCache::new(config, 17),
            Err(ConfigError::BadShardCount { .. })
        ));
    }

    #[test]
    fn full_scrub_equals_hinted_scrub() {
        let build = || {
            let c = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 4).unwrap();
            c.inject_fault(7, 1);
            c.inject_fault(7, 2);
            c.inject_fault(40, 3);
            c.inject_fault(40, 4);
            c
        };
        let full = build();
        let hinted = build();
        let r1 = full.scrub();
        let r2 = hinted.scrub_lines(&[7, 40]);
        assert_eq!(r1.unresolved, r2.unresolved);
        assert_eq!(r1.sdr_repairs, r2.sdr_repairs);
        for line in 0..256 {
            assert_eq!(full.stored_line(line), hinted.stored_line(line));
        }
    }

    #[test]
    fn merge_reports_sums_and_sorts() {
        let a = ScrubReport {
            lines_checked: 3,
            unresolved: vec![9, 2],
            ..ScrubReport::default()
        };
        let b = ScrubReport {
            lines_checked: 4,
            sdr_repairs: 1,
            unresolved: vec![5],
            ..ScrubReport::default()
        };
        let m = merge_reports([&a, &b]);
        assert_eq!(m.lines_checked, 7);
        assert_eq!(m.sdr_repairs, 1);
        assert_eq!(m.unresolved, vec![2, 5, 9]);
    }
}
